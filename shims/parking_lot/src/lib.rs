//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the `parking_lot` API shape this workspace uses: `lock()` /
//! `read()` / `write()` return guards directly (no poisoning `Result`).
//! A poisoned std lock is recovered transparently — panicking while
//! holding a lock is already a bug the tests would surface.

use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
