//! Offline stand-in for `rand_distr`, providing the Zipf distribution
//! used by the Wordcount workload generator.
//!
//! Sampling is by inverse transform over a precomputed cumulative table:
//! exact (no rejection-sampling approximation), deterministic given the
//! RNG stream, and O(log n) per sample. Vocabulary sizes in this repo are
//! tens of thousands, so the table is a few hundred KB at most.

use rand::distr::Distribution;
use rand::{Rng, RngCore};
use std::fmt;

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// `n` must be a positive integer-valued float.
    InvalidN,
    /// The exponent must be finite and non-negative.
    InvalidExponent,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidN => f.write_str("zipf: n must be a positive integer"),
            Error::InvalidExponent => f.write_str("zipf: exponent must be finite and >= 0"),
        }
    }
}

impl std::error::Error for Error {}

/// The Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ 1 / k^s`. Samples are returned as `f64` ranks, matching the
/// real crate's `Zipf` (callers cast to integer ranks).
#[derive(Debug, Clone)]
pub struct Zipf {
    /// `cdf[k-1]` = P(rank <= k), normalised; strictly increasing.
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: f64, s: f64) -> Result<Zipf, Error> {
        if !(n.is_finite() && n >= 1.0 && n.fract() == 0.0 && n <= 10_000_000.0) {
            return Err(Error::InvalidN);
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(Error::InvalidExponent);
        }
        let n = n as usize;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        // First rank whose cumulative probability covers u.
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        (idx + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Zipf::new(0.0, 1.0).is_err());
        assert!(Zipf::new(10.5, 1.0).is_err());
        assert!(Zipf::new(10.0, f64::NAN).is_err());
        assert!(Zipf::new(10.0, -1.0).is_err());
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = Zipf::new(1000.0, 1.1).unwrap();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut ones = 0u32;
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=1000.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
            if v == 1.0 {
                ones += 1;
            }
        }
        // Rank 1 carries far more mass than uniform (10/10_000).
        assert!(ones > 500, "zipf head too light: {ones}");
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50_000.0, 1.1).unwrap();
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
