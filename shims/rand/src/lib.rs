//! Offline stand-in for the `rand` crate.
//!
//! Deterministic, seedable randomness for the simulator, workload
//! generators and tests. The API mirrors the subset of `rand` 0.9 this
//! workspace uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`random`, `random_range`, `random_bool`), `rngs::SmallRng`
//! (xoshiro256++ seeded via SplitMix64, like the real crate on 64-bit),
//! and `distr::Distribution`.
//!
//! Streams are stable across releases of this repository — experiment
//! seeds recorded in EXPERIMENTS.md stay reproducible.

/// Core random-number generation: raw integer output and byte filling.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let n = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&n[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from system entropy — this offline shim derives it from the
    /// current time instead; prefer `seed_from_u64` for reproducibility.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(t)
    }
}

/// Types samplable from a generator's raw output ("standard" distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),+ $(,)?) => {
        $(impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        })+
    };
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (argument of [`Rng::random_range`]).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),+ $(,)?) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    // Unbiased rejection sampling (Lemire-style threshold).
                    let zone = u64::MAX - u64::MAX % span;
                    loop {
                        let v = rng.next_u64();
                        if v < zone {
                            return self.start + (v % span) as $t;
                        }
                    }
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    if lo == 0 && hi == <$t>::MAX {
                        return <$t as StandardSample>::sample_standard(rng);
                    }
                    let span = (hi - lo) as u64 + 1;
                    let zone = u64::MAX - u64::MAX % span;
                    loop {
                        let v = rng.next_u64();
                        if v < zone {
                            return lo + (v % span) as $t;
                        }
                    }
                }
            }
        )+
    };
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty as $u:ty),+ $(,)?) => {
        $(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    let zone = u64::MAX - u64::MAX % span;
                    loop {
                        let v = rng.next_u64();
                        if v < zone {
                            return ((self.start as i64).wrapping_add((v % span) as i64)) as $t;
                        }
                    }
                }
            }

            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                    let zone = u64::MAX - u64::MAX % span;
                    loop {
                        let v = rng.next_u64();
                        if v < zone {
                            return ((lo as i64).wrapping_add((v % span) as i64)) as $t;
                        }
                    }
                }
            }
        )+
    };
}

impl_range_sint!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions (`rand::distr`).
pub mod distr {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "standard" distribution of each primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct StandardUniform;

    impl<T: super::StandardSample> Distribution<T> for StandardUniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }
}

/// Concrete generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same algorithm the real crate's 64-bit
    /// `SmallRng` uses; seeded from SplitMix64 like `seed_from_u64`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [splitmix64(&mut st), splitmix64(&mut st), splitmix64(&mut st), splitmix64(&mut st)];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    /// The "standard" RNG: same engine, distinct type, as the workspace
    /// never relies on StdRng/SmallRng producing different streams.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u32 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_samplable() {
        let mut r = SmallRng::seed_from_u64(5);
        let _: u64 = r.random_range(0..=u64::MAX);
    }
}
