//! Offline stand-in for `serde_json`, paired with the in-repo `serde`
//! shim: serialisation renders the shim's [`Value`] tree as JSON text,
//! deserialisation parses JSON into a [`Value`] tree and rebuilds the
//! target type from it.
//!
//! JSON compatibility notes: non-finite floats serialise as `null`
//! (deserialised back to NaN by the `f64` impl), integers round-trip
//! exactly through `i64`/`u64`, and floats use Rust's shortest
//! round-trip `Display` form.

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ----------------------------------------------------------------- encode

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` is Rust's shortest round-trip form; ensure a `.0`
                // so the value re-parses as a float-compatible number
                // (integral floats re-parse as integers, which the f64
                // deserialiser accepts).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- decode

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Parse a complete JSON document into a [`Value`].
pub fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => {
                Err(Error::new(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)))
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair support for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new(format!("invalid codepoint {cp:#x}")))?
                            };
                            out.push(c);
                        }
                        other => return Err(Error::new(format!("invalid escape '\\{}'", other as char))),
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self.bytes.get(self.pos..end).ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        let big = u64::MAX;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn integral_floats_round_trip() {
        // 3.0 renders as "3"; the f64 deserialiser accepts integers back.
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), 3.0);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}é😀";
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aé😀""#).unwrap(), "Aé😀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "one".to_string()), (2, "two".to_string())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, String)>>(&json).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), vec![1u64, 2, 3]);
        let json = to_string_pretty(&m).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<std::collections::BTreeMap<String, Vec<u64>>>(&json).unwrap(), m);
    }

    #[test]
    fn bytes_round_trip() {
        let v = vec![1u8, 2, 3];
        let bytes = to_vec(&v).unwrap();
        assert_eq!(from_slice::<Vec<u8>>(&bytes).unwrap(), v);
    }

    #[test]
    fn whitespace_and_errors() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
