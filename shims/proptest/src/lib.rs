//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`proptest!`] test macro,
//! `prop_assert*` macros, `prop_oneof!`, `Just`, range / tuple / collection
//! / string-pattern strategies with `prop_map` / `prop_flat_map`, and
//! `ProptestConfig { cases }`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * no shrinking — a failing case reports its seed and values, but is not
//!   minimised;
//! * cases are seeded deterministically from the test's module path and
//!   case index, so failures reproduce without a persistence file
//!   (`.proptest-regressions` files are ignored);
//! * string patterns support exactly the `[class]{m,n}` shape used here,
//!   not full regex.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A generator of values of type `Value`. Unlike the real crate there
    /// is no value tree: `sample` draws a concrete value directly.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            self.0.sample(rng)
        }
    }

    /// `prop_oneof!` support: pick one of the options uniformly.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// A constant strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut SmallRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );

    /// String-pattern strategy: `"[class]{m,n}"` (char class with `a-z`
    /// ranges and literal members) or a plain literal string.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut SmallRng) -> String {
            let (alphabet, lo, hi) = parse_pattern(self);
            let len = if lo == hi { lo } else { rng.random_range(lo..=hi) };
            (0..len).map(|_| alphabet[rng.random_range(0..alphabet.len())]).collect()
        }
    }

    fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        let bytes: Vec<char> = pat.chars().collect();
        assert!(
            bytes.first() == Some(&'['),
            "the proptest shim only supports \"[class]{{m,n}}\" string patterns, got {pat:?}"
        );
        let close = bytes
            .iter()
            .position(|&c| c == ']')
            .unwrap_or_else(|| panic!("unterminated char class in pattern {pat:?}"));
        let mut alphabet = Vec::new();
        let class = &bytes[1..close];
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty char class in pattern {pat:?}");
        let rest: String = bytes[close + 1..].iter().collect();
        let counts = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("pattern {pat:?} must end with {{m,n}} or {{m}}"));
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.parse().unwrap(), hi.parse().unwrap()),
            None => {
                let n = counts.parse().unwrap();
                (n, n)
            }
        };
        (alphabet, lo, hi)
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut SmallRng) -> bool {
            rng.random()
        }
    }
}

pub mod num {
    // Inside `mod u8` etc. the module name shadows the primitive, so the
    // generated code spells types via `::core::primitive`.
    macro_rules! int_any {
        ($($m:ident),+ $(,)?) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use rand::rngs::SmallRng;
                use rand::RngCore;

                #[derive(Clone, Copy, Debug)]
                pub struct Any;
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = ::core::primitive::$m;
                    fn sample(&self, rng: &mut SmallRng) -> ::core::primitive::$m {
                        rng.next_u64() as ::core::primitive::$m
                    }
                }
            }
        )+};
    }
    int_any!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub mod f64 {
        use crate::strategy::Strategy;
        use core::primitive::f64 as F64;
        use rand::rngs::SmallRng;
        use rand::{Rng, RngCore};

        #[derive(Clone, Copy, Debug)]
        pub struct Any;
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = F64;
            fn sample(&self, rng: &mut SmallRng) -> F64 {
                // Cover all float classes: raw bit patterns reach NaN,
                // infinities and subnormals; the other arms keep ordinary
                // magnitudes well represented.
                match rng.random_range(0u32..4) {
                    0 => F64::from_bits(rng.next_u64()),
                    1 => rng.random_range(-1e12..1e12),
                    2 => rng.random_range(-2.0..2.0),
                    _ => {
                        const SPECIALS: [F64; 7] =
                            [0.0, -0.0, 1.0, -1.0, F64::INFINITY, F64::NEG_INFINITY, F64::NAN];
                        SPECIALS[rng.random_range(0..SPECIALS.len())]
                    }
                }
            }
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Element-count specification: an exact size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut SmallRng) -> usize {
            if self.lo + 1 >= self.hi_exclusive {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi_exclusive)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi_exclusive: r.end.max(r.start + 1) }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_exclusive: r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            // Duplicates collapse, so the set may come out smaller than the
            // drawn size — same as the real crate's behaviour.
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Runner configuration. Only `cases` matters to this shim; the
    /// remaining field keeps `..ProptestConfig::default()` struct-update
    /// syntax meaningful.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    /// FNV-1a over a test's path: a stable per-test base seed.
    pub fn fnv(s: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Deterministic per-case RNG: reruns of the same test reproduce the
    /// same case sequence, so failures are replayable by case index.
    pub fn case_rng(base: u64, case: u32) -> SmallRng {
        SmallRng::seed_from_u64(base.wrapping_add((case as u64).wrapping_mul(0x9e3779b97f4a7c15)))
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let base = $crate::test_runner::fnv(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::case_rng(base, case);
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (base seed {:#x}): {}",
                        stringify!($name), case + 1, config.cases, base, msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(a in 3u32..10, b in 0.5f64..=1.5, c in 0u8..=255) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.5..=1.5).contains(&b));
            let _ = c;
        }

        #[test]
        fn tuples_and_map(v in (0u32..5, 10u32..20).prop_map(|(x, y)| x + y)) {
            prop_assert!((10..25).contains(&v));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), Just(2), 5u32..8]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }

        #[test]
        fn collections(v in crate::collection::vec(0u8..4, 2..6),
                       s in crate::collection::btree_set(0u32..100, 0..10)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn string_pattern(s in "[a-c0-1._-]{1,5}") {
            prop_assert!((1..=5).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| "abc01._-".contains(c)), "bad char in {s:?}");
        }

        #[test]
        fn flat_map(pair in (1u32..5).prop_flat_map(|n| (Just(n), 0u32..n))) {
            prop_assert!(pair.1 < pair.0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::case_rng(7, 3);
        let b = crate::test_runner::case_rng(7, 3);
        let mut a = a;
        let mut b = b;
        use rand::RngCore;
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
