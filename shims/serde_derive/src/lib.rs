//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable (no registry), so these derives parse the
//! item declaration directly from the `proc_macro` token stream and emit
//! generated code as text. Supported shapes — which cover every derived
//! type in this workspace:
//!
//! * structs with named fields,
//! * tuple structs (single-field = transparent newtype, multi-field =
//!   JSON array),
//! * unit structs,
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like real serde's default).
//!
//! Generic types and `#[serde(...)]` attributes are intentionally
//! unsupported and produce a compile error naming this file.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]` group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse `name: Type` fields from the body of a braced field list.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            return Err(format!("expected field name, found {:?}", tokens.get(i).map(|t| t.to_string())));
        };
        fields.push(name.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected ':' after field name, found {:?}",
                    other.map(|t| t.to_string())
                ))
            }
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
    }
    Ok(fields)
}

/// Count the fields of a parenthesised tuple field list.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // A trailing comma does not add a field.
    if let Some(TokenTree::Punct(p)) = tokens.last() {
        if p.as_char() == ',' {
            count -= 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            return Err(format!("expected variant name, found {:?}", tokens.get(i).map(|t| t.to_string())));
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip a discriminant (`= expr`) if present, then the comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!("expected 'struct' or 'enum', found {:?}", other.map(|t| t.to_string())))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {:?}", other.map(|t| t.to_string()))),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the in-repo serde_derive shim does not support generic type `{name}` — \
                 implement Serialize/Deserialize by hand"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => return Err(format!("unsupported struct body: {:?}", other.map(|t| t.to_string()))),
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => parse_variants(g.stream())?,
                other => return Err(format!("unsupported enum body: {:?}", other.map(|t| t.to_string()))),
            };
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for '{other}' items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

// ------------------------------------------------------------- Serialize

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                        ),
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                  ::serde::Value::Object(::std::vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vn:?}), ::serde::Serialize::to_value(x0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> =
                                binds.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                  ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

// ----------------------------------------------------------- Deserialize

fn named_fields_ctor(path: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({source}.field({f:?}))\
                 .map_err(|e| ::serde::DeError::new(::std::format!(\"{path}.{f}: {{e}}\")))?"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    format!("::std::result::Result::Ok({})", named_fields_ctor(name, fs, "v"))
                }
                Fields::Tuple(1) => {
                    format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> =
                        (0..*n).map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?")).collect();
                    format!(
                        "match v {{\n\
                            ::serde::Value::Array(items) if items.len() == {n} => \
                              ::std::result::Result::Ok({name}({})),\n\
                            other => ::std::result::Result::Err(::serde::DeError::new(\
                              ::std::format!(\"{name}: expected {n}-element array, got {{}}\", other.kind()))),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                        {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!("{vn:?} => ::std::result::Result::Ok({name}::{vn})"),
                        Fields::Named(fs) => format!(
                            "{vn:?} => ::std::result::Result::Ok({})",
                            named_fields_ctor(&format!("{name}::{vn}"), fs, "inner")
                        ),
                        Fields::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?))"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "{vn:?} => match inner {{\n\
                                    ::serde::Value::Array(items) if items.len() == {n} => \
                                      ::std::result::Result::Ok({name}::{vn}({})),\n\
                                    other => ::std::result::Result::Err(::serde::DeError::new(\
                                      ::std::format!(\"{name}::{vn}: expected {n}-element array, got {{}}\", other.kind()))),\n\
                                 }}",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                        let (tag, inner) = v.enum_parts()?;\n\
                        let _ = inner;\n\
                        match tag {{\n\
                            {},\n\
                            other => ::std::result::Result::Err(::serde::DeError::new(\
                                ::std::format!(\"unknown {name} variant: {{other:?}}\"))),\n\
                        }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Serialize): {e}")),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&format!("derive(Deserialize): {e}")),
    }
}
