//! Offline stand-in for `crossbeam`, providing the `channel` module this
//! workspace uses: multi-producer multi-consumer channels, bounded and
//! unbounded, with crossbeam's disconnect semantics — `recv` fails once
//! all senders are gone and the queue is drained, `send` fails once all
//! receivers are gone (the FCM pipeline relies on both for teardown).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or the side counts change.
        recv_cv: Condvar,
        /// Signalled when space frees up in a bounded channel.
        send_cv: Condvar,
        cap: Option<usize>,
    }

    /// The sending half; cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The message could not be delivered because all receivers are gone.
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}

    fn chan<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let c = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            cap,
        });
        (Sender(c.clone()), Receiver(c))
    }

    /// A channel of unbounded capacity: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        chan(None)
    }

    /// A channel holding at most `cap` in-flight messages; `send` blocks
    /// while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        chan(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.0.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.0.send_cv.wait(st).unwrap();
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.0.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.recv_cv.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.send_cv.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.0.send_cv.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self.0.recv_cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
            }
        }

        /// Drain the channel as an iterator, ending at disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.0.send_cv.notify_all();
            }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert!(rx.recv().is_err());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = bounded(2);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_blocks_until_consumed() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        }
    }
}
