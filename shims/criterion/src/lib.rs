//! Offline stand-in for `criterion`.
//!
//! Keeps the bench-definition API (`criterion_group!`, `criterion_main!`,
//! `benchmark_group`, `bench_with_input`, `Bencher::iter`, `Throughput`,
//! `BenchmarkId`) so `cargo bench` runs the workspace benches unmodified,
//! but measures with a simple fixed-budget wall-clock loop and prints one
//! line per bench instead of doing statistical analysis.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export kept API-compatible; routes to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

#[derive(Default)]
pub struct Criterion {
    /// Total measurement budget per bench.
    measurement: Option<Duration>,
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = Some(d);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            budget: self.measurement.unwrap_or(Duration::from_millis(200)),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.measurement.unwrap_or(Duration::from_millis(200));
        run_one(name, budget, None, |b| f(b));
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.budget, self.throughput, |b| f(b, input));
    }

    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{id}", self.name);
        run_one(&label, self.budget, self.throughput, |b| f(b));
    }

    pub fn finish(self) {}
}

fn run_one(label: &str, budget: Duration, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { total: Duration::ZERO, iters: 0, budget };
    f(&mut b);
    if b.iters == 0 {
        println!("  {label}: no iterations recorded");
        return;
    }
    let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| {
        let per_sec = 1e9 / per_iter;
        match t {
            Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 * per_sec / (1024.0 * 1024.0)),
            Throughput::Elements(n) => format!(", {:.0} elem/s", n as f64 * per_sec),
        }
    });
    println!("  {label}: {} ({} iters{})", format_ns(per_iter), b.iters, rate.unwrap_or_default());
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.0} ns/iter")
    }
}

pub struct Bencher {
    total: Duration,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Run the routine until the measurement budget is spent (at least
    /// once), accumulating total time and iteration count.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up iteration, not measured.
        std_black_box(routine());
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            std_black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if started.elapsed() >= self.budget || self.iters >= 10_000 {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_demo(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| b.iter(|| (0..n).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, bench_demo);

    #[test]
    fn group_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        bench_demo(&mut c);
        let _ = benches as fn();
    }
}
