//! Offline stand-in for `serde`.
//!
//! The build environment has no crate registry, so the workspace vendors
//! a minimal serialisation framework with the same *spelling* as serde —
//! `#[derive(Serialize, Deserialize)]`, `use serde::{Serialize,
//! Deserialize}` — over a much simpler data model: every value serialises
//! to a JSON-shaped [`Value`] tree, and deserialises from one. The
//! companion `serde_json` shim renders and parses the tree as real JSON.
//!
//! Differences from real serde, none of which this workspace relies on:
//! no zero-copy deserialisation, no serializer polymorphism, no
//! `#[serde(...)]` attributes, enums always externally tagged.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-shaped value tree: the single data model of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also produced by the JSON parser for any integer
    /// literal that fits).
    I64(i64),
    /// Unsigned integers above `i64::MAX`.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (derive emits declaration order).
    Object(Vec<(String, Value)>),
}

/// A static `Null` to hand out references to absent fields.
pub static NULL: Value = Value::Null;

impl Value {
    /// Member of an object, or `Null` when absent / not an object —
    /// letting `Option` fields treat "missing" as `None`.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(entries) => {
                entries.iter().find(|(k, _)| k == name).map(|(_, v)| v).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }

    /// Split an externally-tagged enum value into `(tag, inner)`.
    /// A bare string is a unit variant: `("Tag", Null)`.
    pub fn enum_parts(&self) -> Result<(&str, &Value), DeError> {
        match self {
            Value::Str(s) => Ok((s, &NULL)),
            Value::Object(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(DeError::new(format!("expected enum, got {}", other.kind()))),
        }
    }

    /// Human name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialisation error: a message plus nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can render itself into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A value that can rebuild itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    let v = *self as u64;
                    if v <= i64::MAX as u64 { Value::I64(v as i64) } else { Value::U64(v) }
                }
            }

            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<$t, DeError> {
                    let raw: u64 = match v {
                        Value::I64(i) if *i >= 0 => *i as u64,
                        Value::U64(u) => *u,
                        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => *f as u64,
                        other => return Err(DeError::new(format!(
                            "expected unsigned integer, got {}", other.kind()))),
                    };
                    <$t>::try_from(raw).map_err(|_| DeError::new(
                        format!("integer {raw} out of range for {}", stringify!($t))))
                }
            }
        )+
    };
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_sint {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::I64(*self as i64)
                }
            }

            impl Deserialize for $t {
                fn from_value(v: &Value) -> Result<$t, DeError> {
                    let raw: i64 = match v {
                        Value::I64(i) => *i,
                        Value::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                        Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => *f as i64,
                        other => return Err(DeError::new(format!(
                            "expected integer, got {}", other.kind()))),
                    };
                    <$t>::try_from(raw).map_err(|_| DeError::new(
                        format!("integer {raw} out of range for {}", stringify!($t))))
                }
            }
        )+
    };
}

impl_serde_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(i) => Ok(*i as f64),
            Value::U64(u) => Ok(*u as f64),
            // JSON cannot express non-finite floats; we encode them as null.
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::new(format!("expected number, got {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

/// Real serde borrows `&str` from the deserializer input; this shim's
/// `Value` model has no lifetime to borrow from, so `&'static str` fields
/// (used by workload model names) deserialise by leaking. Interning keeps
/// the leak bounded by the number of *distinct* strings seen.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<&'static str, DeError> {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());

        let s = String::from_value(v)?;
        let mut set = INTERNED.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = set.get(s.as_str()) {
            return Ok(existing);
        }
        let leaked: &'static str = Box::leak(s.into_boxed_str());
        set.insert(leaked);
        Ok(leaked)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected array, got {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {
        $(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn to_value(&self) -> Value {
                    Value::Array(vec![$(self.$n.to_value()),+])
                }
            }

            impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
                fn from_value(v: &Value) -> Result<Self, DeError> {
                    match v {
                        Value::Array(items) => {
                            const LEN: usize = 0 $(+ {let _ = $n; 1})+;
                            if items.len() != LEN {
                                return Err(DeError::new(format!(
                                    "expected {LEN}-tuple, got array of {}", items.len())));
                            }
                            Ok(($($t::from_value(&items[$n])?,)+))
                        }
                        other => Err(DeError::new(format!("expected array, got {}", other.kind()))),
                    }
                }
            }
        )+
    };
}

impl_serde_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

/// Map keys must render as JSON object keys (strings).
pub trait JsonKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<String, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),+ $(,)?) => {
        $(impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<$t, DeError> {
                s.parse().map_err(|_| DeError::new(format!(
                    "invalid {} object key: {s:?}", stringify!($t))))
            }
        })+
    };
}

impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic key order so serialisation is reproducible.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<HashMap<K, V>, DeError> {
        match v {
            Value::Object(entries) => {
                entries.iter().map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::new(format!("expected object, got {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&(42u64.to_value())).unwrap(), 42);
        assert_eq!(i32::from_value(&((-7i32).to_value())).unwrap(), -7);
        assert_eq!(f64::from_value(&(0.5f64.to_value())).unwrap(), 0.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn big_u64_round_trips() {
        let v = u64::MAX.to_value();
        assert_eq!(v, Value::U64(u64::MAX));
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&xs.to_value()).unwrap(), xs);
        let mut m = BTreeMap::new();
        m.insert(3u32, vec![1u64, 2]);
        assert_eq!(BTreeMap::<u32, Vec<u64>>::from_value(&m.to_value()).unwrap(), m);
        let opt: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::I64(1))]);
        assert_eq!(obj.field("a"), &Value::I64(1));
        assert_eq!(obj.field("b"), &Value::Null);
        assert_eq!(Option::<u8>::from_value(obj.field("b")).unwrap(), None);
        assert!(u8::from_value(obj.field("b")).is_err());
    }

    #[test]
    fn enum_parts_shapes() {
        assert_eq!(Value::Str("Map".into()).enum_parts().unwrap(), ("Map", &Value::Null));
        let tagged = Value::Object(vec![("Kill".into(), Value::I64(3))]);
        let (tag, inner) = tagged.enum_parts().unwrap();
        assert_eq!((tag, inner), ("Kill", &Value::I64(3)));
        assert!(Value::I64(1).enum_parts().is_err());
    }
}
