//! Offline stand-in for the `bytes` crate.
//!
//! The workspace vendors its own minimal implementation because the build
//! environment has no registry access. Only the surface this repository
//! uses is provided: [`Bytes`] as a cheaply cloneable, sliceable,
//! immutable byte buffer backed by an `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation beyond a shared static).
    pub fn new() -> Bytes {
        Bytes::from_static(b"")
    }

    /// Wrap a static slice. This implementation copies (the real crate
    /// borrows), which preserves semantics at a small constant cost.
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end, "range start must not be greater than end: {begin} > {end}");
        assert!(end <= len, "range end out of bounds: {end} > {len}");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v), start: 0, end: len }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_backing() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let ss = s.slice(1..);
        assert_eq!(&ss[..], &[3, 4]);
    }

    #[test]
    fn equality_and_emptiness() {
        assert_eq!(Bytes::new(), Bytes::from(Vec::new()));
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }
}
