//! Cross-crate integration tests: the two engines (threaded runtime and
//! discrete-event simulator) driven through the facade crate, checked
//! against each other and against the paper's qualitative claims.

use std::sync::Arc;

use alm_mapreduce::prelude::*;
use alm_mapreduce::runtime::am::run_job;
use alm_mapreduce::sim::experiment::{node_of_reduce, run_one};
use alm_mapreduce::types::FailureKind;
use alm_mapreduce::workloads::reference::{canonicalize, reference_output};

fn committed(cluster: &MiniCluster, job: &JobDef) -> Vec<Record> {
    let mut all = Vec::new();
    for r in 0..job.num_reduces {
        let data = cluster.dfs.read(&job.output_path(r)).expect("output committed");
        let mut off = 0;
        while let Some((k, v, next)) = alm_mapreduce::shuffle::codec::decode_at(&data, off).unwrap() {
            all.push(Record::new(k.to_vec(), v.to_vec()));
            off = next;
        }
    }
    all.sort();
    all
}

/// Every recovery mode, same injected fault, byte-identical output.
#[test]
fn all_modes_agree_on_output_under_failure() {
    let mut outputs = Vec::new();
    for mode in [RecoveryMode::Baseline, RecoveryMode::Alg, RecoveryMode::Sfm, RecoveryMode::SfmAlg] {
        let cluster = Arc::new(MiniCluster::for_tests(4));
        let mut alm = AlmConfig::with_mode(mode);
        alm.logging_interval_ms = 1;
        let job = JobDef::new(JobId(3), Arc::new(SecondarySort::new(800)), 3, 2, 11, alm);
        let faults = FaultPlan::kill_task(TaskId::reduce(JobId(3), 1), 0.7);
        let report = run_job(cluster.clone(), job.clone(), faults);
        assert!(report.succeeded, "{mode:?}: {report:?}");
        outputs.push((mode, committed(&cluster, &job)));
    }
    let expected = canonicalize(&reference_output(&SecondarySort::new(800), 3, 2, 11));
    for (mode, out) in &outputs {
        assert_eq!(out, &expected, "{mode:?} output deviates from the oracle");
    }
}

/// The headline claim, end to end on the simulator: under a node failure,
/// baseline YARN amplifies; the full ALM framework does not, and recovers
/// faster.
#[test]
fn alm_framework_cracks_down_amplification_at_paper_scale() {
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, 9);
    let baseline_env = ExperimentEnv::paper(RecoveryMode::Baseline);
    let alm_env = ExperimentEnv::paper(RecoveryMode::SfmAlg);
    let victim = node_of_reduce(&spec, &baseline_env, 0);
    let fault = vec![SimFault::CrashNodeAtReduceProgress { node: victim, reduce_index: 0, at_progress: 0.5 }];

    let yarn = run_one(&spec, &baseline_env, fault.clone());
    let alm = run_one(&spec, &alm_env, fault);
    assert!(yarn.succeeded && alm.succeeded);

    let fetch_fails = |r: &alm_mapreduce::sim::SimReport| {
        r.failures.iter().filter(|f| f.kind == FailureKind::FetchFailureLimit).count()
    };
    assert!(fetch_fails(&yarn) > 0, "baseline must amplify: {:?}", yarn.failures);
    assert_eq!(fetch_fails(&alm), 0, "ALM must not amplify: {:?}", alm.failures);
    assert!(alm.job_secs < yarn.job_secs, "ALM {:.1}s vs YARN {:.1}s", alm.job_secs, yarn.job_secs);
}

/// The threaded engine and the simulator agree qualitatively: a late
/// ReduceTask failure is far more expensive than a MapTask failure, in
/// both engines (Fig. 1 / Fig. 2 cross-validation).
#[test]
fn engines_agree_reduce_failures_dominate() {
    // Simulator, paper scale.
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, 5);
    let e = ExperimentEnv::paper(RecoveryMode::Baseline);
    let clean = run_one(&spec, &e, vec![]).job_secs;
    let map_f =
        run_one(&spec, &e, vec![SimFault::KillMapAtProgress { map_index: 0, at_progress: 0.5 }]).job_secs;
    let red_f =
        run_one(&spec, &e, vec![SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: 0.9 }])
            .job_secs;
    assert!(red_f - clean > (map_f - clean).max(1.0) * 2.0, "sim: {clean:.0}/{map_f:.0}/{red_f:.0}");

    // Threaded engine, test scale. Wall-clock deltas at this scale are
    // noise-dominated, so assert the *structural* form of the asymmetry:
    // a late reduce failure forces a full reduce re-execution (an extra
    // reduce attempt that redoes its shuffle), while a map failure costs
    // one extra map attempt and no reduce attempts.
    let run = |fault: FaultPlan| {
        let cluster = Arc::new(MiniCluster::for_tests(4));
        let job = JobDef::new(
            JobId(5),
            Arc::new(Terasort::new(8_000)),
            4,
            2,
            1,
            AlmConfig::with_mode(RecoveryMode::Baseline),
        );
        let r = run_job(cluster, job, fault);
        assert!(r.succeeded);
        r
    };
    let map_run = run(FaultPlan::kill_task(TaskId::map(JobId(5), 0), 0.5));
    assert_eq!(map_run.map_attempts, 5, "one extra map attempt");
    assert_eq!(map_run.reduce_attempts, 2, "no reduce recovery needed");
    let red_run = run(FaultPlan::kill_task(TaskId::reduce(JobId(5), 0), 0.9));
    assert!(red_run.reduce_attempts >= 3, "the failed reduce re-executes from scratch");
}

/// ALG's logged analytics survive a node crash end to end: log records on
/// the DFS outlive the writer and a migrated attempt restores them.
#[test]
fn alg_logs_survive_node_loss_and_resume() {
    use alm_mapreduce::core::{recover_state, LogPaths, RecoveredState};
    use alm_mapreduce::dfs::{DfsCluster, Topology};
    use alm_mapreduce::shuffle::MemFs;

    let dfs = DfsCluster::new(Topology::even(6, 2), 1 << 20, 2);
    let task = TaskId::reduce(JobId(1), 0);
    let attempt = task.attempt(0);
    let paths = LogPaths::for_task(task);
    let mut config = AlmConfig::with_mode(RecoveryMode::SfmAlg);
    config.logging_interval_ms = 1;
    let mut logger = alm_mapreduce::core::AnalyticsLogger::new(&config, attempt);
    let mut output = alm_mapreduce::core::PartialOutput::new(&paths);
    output.append(b"key", b"value");
    logger.maybe_log_reduce(10, &dfs, NodeId(2), &[], 1, &mut output).unwrap().expect("due");

    // The writer's node dies; rack replication keeps the log readable.
    dfs.set_node_alive(NodeId(2), false);
    let node_fs = MemFs::new(); // the new node's (empty) local store
    match recover_state(Some(&node_fs), &dfs, &paths) {
        RecoveredState::ReduceStage { records_processed, output_records, .. } => {
            assert_eq!(records_processed, 1);
            assert_eq!(output_records, 1);
        }
        other => panic!("expected reduce-stage state, got {other:?}"),
    }
    // And the flushed partial output is reloadable.
    let restored = alm_mapreduce::core::PartialOutput::restore(&paths, &dfs).unwrap();
    assert_eq!(restored.records(), 1);
}

/// Determinism: identical seeds give identical simulated runs through the
/// public API.
#[test]
fn simulator_is_deterministic_through_facade() {
    let spec = SimJobSpec::new(WorkloadKind::Wordcount, 5 * alm_mapreduce::types::units::GB, 1, 77);
    let env = ExperimentEnv::paper(RecoveryMode::SfmAlg);
    let fault = vec![SimFault::CrashNodeAtSecs { node: 3, at_secs: 40.0 }];
    let a = Simulation::new(spec.clone(), env.clone(), fault.clone()).run();
    let b = Simulation::new(spec, env, fault).run();
    assert_eq!(a, b);
}
