//! Cross-crate integration of the chaos subsystem through the facade:
//! a seeded campaign on the simulator, a real-bytes campaign on the
//! threaded runtime, and a differential validation tying them together.

use std::sync::Arc;

use alm_mapreduce::chaos::{
    validate_scenario, ChaosFault, ChaosScenario, EngineKind, FaultSpace, SimCampaign,
};
use alm_mapreduce::prelude::*;
use alm_mapreduce::types::units::GB;

/// A seeded sim campaign is reproducible end-to-end and preserves the
/// paper's headline contrast on the pinned Table II scenario.
#[test]
fn seeded_sim_campaign_reproduces_and_contrasts() {
    let spec = SimJobSpec::new(WorkloadKind::Terasort, 4 * GB, 8, 13);
    let campaign = SimCampaign::paper(spec, vec![RecoveryMode::Baseline, RecoveryMode::SfmAlg]);
    let mut scenarios = FaultSpace::paper_like(20, 2, 32, 8).sample(4, 13);
    let victim = alm_mapreduce::sim::experiment::node_of_reduce(
        &campaign.spec,
        &ExperimentEnv::paper(RecoveryMode::Baseline),
        2,
    );
    scenarios.push(ChaosScenario::new("pinned").with(ChaosFault::CrashNodeAtReduceProgress {
        node: victim,
        reduce_index: 2,
        at_progress: 0.1,
    }));

    let a = campaign.run(&scenarios);
    let b = campaign.run(&scenarios);
    assert_eq!(a, b, "campaigns are pure functions of (spec, scenarios, modes)");

    let mut report = CampaignReport::new("it", 13);
    report.extend(a);
    let contrast =
        report.spatial_contrast(EngineKind::Simulator, RecoveryMode::Baseline, RecoveryMode::SfmAlg);
    assert!(
        contrast.iter().any(|(name, yarn, _)| name == "pinned" && *yarn >= 1),
        "the pinned Table II scenario must amplify under baseline YARN: {contrast:?}"
    );
    assert!(
        contrast.iter().all(|(_, _, alm)| *alm == 0),
        "SFM+ALG must never amplify spatially: {contrast:?}"
    );
}

/// The runtime campaign executes real bytes and verifies every committed
/// output against the reference oracle, under every recovery mode.
#[test]
fn runtime_campaign_all_modes_oracle_clean() {
    let campaign = RuntimeCampaign {
        workload: Arc::new(Terasort::new(700)),
        num_maps: 3,
        num_reduces: 2,
        seed: 42,
        nodes: 4,
        ms_per_scenario_sec: 5.0,
        modes: vec![RecoveryMode::Baseline, RecoveryMode::Alg, RecoveryMode::Sfm, RecoveryMode::SfmAlg],
    };
    let scenarios = vec![
        ChaosScenario::new("kill-late").with(ChaosFault::KillReduce { index: 0, at_progress: 0.8 }),
        ChaosScenario::new("slow-straggler")
            .with(ChaosFault::SlowNode { node: 1, at_secs: 0.0, factor: 4.0 })
            .with(ChaosFault::KillReduce { index: 1, at_progress: 0.4 }),
    ];
    for o in campaign.run(&scenarios) {
        assert!(o.succeeded, "{o:?}");
        assert_eq!(o.output_verified, Some(true), "oracle mismatch: {o:?}");
        assert_eq!(o.partitions_committed, Some(2), "{o:?}");
    }
}

/// One scenario differentially validated in both engines.
#[test]
fn differential_validation_through_facade() {
    let scenario =
        ChaosScenario::new("facade-diff").with(ChaosFault::KillReduce { index: 0, at_progress: 0.6 });
    let verdict = validate_scenario(&scenario, &[RecoveryMode::Baseline, RecoveryMode::SfmAlg]);
    assert!(verdict.ok(), "{}", verdict.render_text());
}
