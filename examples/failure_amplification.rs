//! Reproduce the paper's headline phenomenon at paper scale: a single node
//! crash amplifying into repeated ReduceTask failures under stock YARN,
//! and the ALM framework cracking the amplification down.
//!
//! Runs the discrete-event simulator (21 nodes, Table I configuration,
//! 10 GB Wordcount with one long-running reducer — the Fig. 3 / Fig. 10
//! scenario) and prints both progress timelines side by side.
//!
//! ```text
//! cargo run --release --example failure_amplification
//! ```

use alm_mapreduce::prelude::*;
use alm_mapreduce::sim::experiment::{node_of_reduce, run_one};
use alm_mapreduce::types::FailureKind;

fn main() {
    let spec = SimJobSpec::paper(WorkloadKind::Wordcount, 42);

    for mode in [RecoveryMode::Baseline, RecoveryMode::Sfm] {
        let env = ExperimentEnv::paper(mode);
        // Crash the node hosting the single reducer (and some of the MOFs
        // it still needs) at 40% of its progress.
        let victim = node_of_reduce(&spec, &env, 0);
        let report = run_one(
            &spec,
            &env,
            vec![SimFault::CrashNodeAtReduceProgress { node: victim, reduce_index: 0, at_progress: 0.4 }],
        );

        println!("===== {mode:?} =====");
        println!(
            "job time: {:.1}s   reduce attempts: {}   failures: {}",
            report.job_secs,
            report.reduce_attempts,
            report.failures.len()
        );
        for f in &report.failures {
            println!("  {:6.1}s  {} attempt {} failed: {}", f.at_secs, f.task, f.attempt_number, f.kind);
        }
        let repeats = report
            .failures
            .iter()
            .filter(|f| f.task.is_reduce() && f.kind == FailureKind::FetchFailureLimit)
            .count();
        match mode {
            RecoveryMode::Baseline => println!(
                "  -> the recovered reducer was preempted {repeats} more time(s) hunting lost MOFs: temporal amplification"
            ),
            _ => println!("  -> zero fetch-failure preemptions: amplification cracked down"),
        }
        println!("{}", report.timeline_of(0, "reduce progress").render_text());
    }
}
