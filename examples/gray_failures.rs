//! Gray failures: asymmetric partitions, flapping links, degraded links.
//!
//! ```text
//! cargo run --release --example gray_failures [seed]
//! ```
//!
//! Real clusters rarely fail clean. This example walks the gray-failure
//! vocabulary at paper scale on the simulator — a link severed in one
//! direction only (heartbeats healthy, fetches dead), a link flapping
//! through seeded sever/heal cycles, and a link that is merely *bad*
//! (slow, lossy) — and asserts each is absorbed: no node-loss
//! declarations, no retry-budget burn, no re-execution cascade. The
//! scenarios are then validated differentially on both engines through
//! the `asymmetric-partition-no-node-loss` and `flap-backoff-budget`
//! invariants, and a randomized gray sweep is reduced to the ranked
//! root-cause triage report CI publishes as an artifact.

use alm_mapreduce::chaos::{self, ChaosFlap, FaultWeights};
use alm_mapreduce::prelude::*;
use alm_mapreduce::sim::experiment::run_one;
use alm_mapreduce::types::{FaultPlan as TypesFaultPlan, FlapSchedule, LinkDirection};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, seed);
    let env = ExperimentEnv::paper(RecoveryMode::Baseline);
    let clean = run_one(&spec, &env, vec![]);
    let red_node = clean.reduce_nodes[&0][0];
    let partner = (red_node + 1) % env.cluster.worker_nodes();

    // 1. Asymmetric partition: sever only the fetch direction
    //    (reducer-node -> source). The reverse path stays healthy, so
    //    heartbeats flow and nobody is declared dead. (Durations are not
    //    ordered between the cut shapes: severing a link also removes its
    //    flows from the shared-bandwidth pools, which can shift the whole
    //    schedule either way. The invariant is the failure accounting.)
    let window = (clean.map_phase_secs, clean.map_phase_secs + 30.0);
    let dir_run = |direction: LinkDirection| {
        run_one(
            &spec,
            &env,
            vec![alm_mapreduce::sim::SimFault::PartitionLinkAtSecs {
                a: red_node,
                b: partner,
                direction,
                from_secs: window.0,
                heal_secs: window.1,
            }],
        )
    };
    let sym = dir_run(LinkDirection::Both);
    let asym = dir_run(LinkDirection::AToB);
    for (label, rep) in [("symmetric", &sym), ("asymmetric", &asym)] {
        assert!(rep.succeeded && rep.failures.is_empty(), "{label} partition must be absorbed");
        assert_eq!(rep.map_attempts, clean.map_attempts, "{label}: no map re-execution");
    }
    println!(
        "asymmetric partition ({red_node}->{partner}, 30s window): clean {:.0}s, sym {:.0}s, asym {:.0}s — zero failures in all three",
        clean.job_secs, sym.job_secs, asym.job_secs
    );

    // 2. Flapping link: a seeded schedule of sever/heal cycles, expanded
    //    deterministically by the shared FaultPlan lowering. Every heal
    //    re-pumps parked fetches; exponential backoff (capped at half the
    //    liveness window) keeps the retry budget intact across cycles.
    let plan = TypesFaultPlan::flapping_link(
        NodeId(red_node),
        NodeId(partner),
        LinkDirection::Both,
        1_000, // start ms (scenario clock)
        FlapSchedule { seed, cycles: 3, period_ms: 12_000, down_ms: 6_000 },
    );
    let windows = plan.partition_windows();
    assert_eq!(windows.len(), 3, "one severed window per cycle");
    let flap = run_one(&spec, &env, alm_mapreduce::sim::SimFault::lower_plan(&plan));
    assert!(flap.succeeded && flap.failures.is_empty(), "flapping link must be absorbed");
    println!(
        "flapping link (3 seeded cycles): windows {:?} -> {:.0}s, zero failures, budget intact",
        windows.iter().map(|w| (w.from_ms / 1000, w.heal_ms / 1000)).collect::<Vec<_>>(),
        flap.job_secs
    );

    // 3. Degraded link: the canonical gray failure — the link is *up* but
    //    slow (4x) and lossy (30%). Dropped transfers are re-fetched
    //    without ever charging the FetchFailureLimit budget.
    let degrade: Vec<alm_mapreduce::sim::SimFault> = (0..env.cluster.worker_nodes())
        .filter(|n| *n != red_node)
        .map(|n| alm_mapreduce::sim::SimFault::DegradedLinkAtSecs {
            a: red_node,
            b: n,
            direction: LinkDirection::AToB,
            from_secs: 0.0,
            heal_secs: clean.job_secs * 3.0,
            factor: 4.0,
            loss: 0.3,
        })
        .collect();
    let gray = run_one(&spec, &env, degrade);
    assert!(gray.succeeded && gray.failures.is_empty(), "degraded links must be absorbed");
    assert!(gray.degraded_drops >= 1, "a 30% lossy link must drop at least one transfer");
    println!(
        "degraded links from node {red_node} (4x slow, 30% loss): {:.0}s vs clean {:.0}s, {} transparent drop(s), zero failures\n",
        gray.job_secs, clean.job_secs, gray.degraded_drops
    );

    // 4. Differential validation on BOTH engines: the gray invariants.
    let modes = [RecoveryMode::Baseline, RecoveryMode::SfmAlg];
    let asym_scenario = ChaosScenario::new("gray-asymmetric").with(ChaosFault::PartitionLink {
        a: 2,
        b: 0,
        direction: LinkDirection::AToB,
        from_secs: 0.0,
        heal_secs: 40.0,
        flap: None,
    });
    let flap_scenario = ChaosScenario::new("gray-flap").with(ChaosFault::PartitionLink {
        a: 0,
        b: 2,
        direction: LinkDirection::Both,
        from_secs: 1.0,
        heal_secs: 0.0,
        flap: Some(ChaosFlap { seed, cycles: 3, period_secs: 10.0, down_secs: 4.0 }),
    });
    for (scenario, invariant) in
        [(&asym_scenario, "asymmetric-partition-no-node-loss"), (&flap_scenario, "flap-backoff-budget")]
    {
        let report = chaos::validate_scenario(scenario, &modes);
        print!("{}", report.render_text());
        assert!(report.ok(), "differential invariants must hold for {}", scenario.name);
        assert!(
            report.invariants.iter().any(|i| i.name == invariant && i.passed),
            "{} must be checked for {}",
            invariant,
            scenario.name
        );
    }

    // 5. Randomized gray sweep -> ranked root-cause triage. The gray
    //    space adds direction/flap draws and degraded-link weight on top
    //    of the paper-shaped distribution.
    let profile = chaos::LoweringProfile::simulator(&env.cluster);
    let num_maps = spec.input_bytes.div_ceil(env.yarn.dfs_block_size).max(1) as u32;
    let space = FaultSpace {
        weights: FaultWeights { degraded_link: 3, ..FaultWeights::default() },
        ..FaultSpace::gray_like(profile.workers, profile.racks, num_maps, spec.num_reduces)
    };
    let campaign = SimCampaign::paper(
        spec.clone(),
        vec![RecoveryMode::Baseline, RecoveryMode::Alg, RecoveryMode::Sfm, RecoveryMode::SfmAlg],
    );
    let scenarios = space.sample(20, seed);
    let mut report = CampaignReport::new("gray-sweep", seed);
    report.extend(campaign.run(&scenarios));
    let triage = report.triage();
    assert!(triage.groups.iter().all(|g| !g.remediation.is_empty()));
    println!("\n{}", triage.render_markdown());

    println!(
        "gray failures absorbed: no node loss, no budget burn, triage ranked by severity x blast radius"
    );
}
