//! Transient faults: healed partitions and checksummed corruption.
//!
//! ```text
//! cargo run --release --example transient_faults [seed]
//! ```
//!
//! The paper's amplification cascade (§II-C) starts with an *ambiguous*
//! fault: a reducer that cannot fetch presumes its sources dead, burns its
//! retry budget and gets preempted. This example injects the two transient
//! fault kinds — a network partition that heals inside the liveness
//! window, and data corruption caught by arrival checksums — at paper
//! scale on the simulator, and asserts the "resume, don't restart" story:
//! no node-lost declarations, no map re-execution, no retry-budget burn.
//! The same scenarios are then validated differentially on both engines
//! through the `transient-no-node-loss` and `corruption-bounded-recovery`
//! invariants.

use alm_mapreduce::chaos::{self, ChaosFault, ChaosScenario};
use alm_mapreduce::prelude::*;
use alm_mapreduce::sim::experiment::run_one;
use alm_mapreduce::types::{CorruptTarget, LinkDirection};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42);
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, seed);

    // 1. A partition severing reducer 0 from a shuffle source for 30
    //    virtual seconds — well inside the liveness window — must cost
    //    only time, in every recovery mode including baseline YARN.
    println!("healed partition at paper scale ({:?}, seed {seed}):", spec.workload);
    for mode in [RecoveryMode::Baseline, RecoveryMode::SfmAlg] {
        let env = ExperimentEnv::paper(mode);
        let clean = run_one(&spec, &env, vec![]);
        let red_node = clean.reduce_nodes[&0][0];
        let partner = (red_node + 1) % env.cluster.worker_nodes();
        let rep = run_one(
            &spec,
            &env,
            vec![SimFault::PartitionLinkAtSecs {
                a: red_node,
                b: partner,
                direction: LinkDirection::Both,
                from_secs: clean.map_phase_secs,
                heal_secs: clean.map_phase_secs + 30.0,
            }],
        );
        assert!(rep.succeeded, "{mode:?}: job must complete through a healed partition");
        assert!(rep.failures.is_empty(), "{mode:?}: a healed partition must not record failures");
        assert_eq!(rep.map_attempts, clean.map_attempts, "{mode:?}: no map re-execution");
        println!(
            "  {mode:?}: clean {:.0}s -> partitioned {:.0}s ({:+.0}s), {} failures, {} map attempts",
            clean.job_secs,
            rep.job_secs,
            rep.job_secs - clean.job_secs,
            rep.failures.len(),
            rep.map_attempts,
        );
    }

    // 2. A corrupted MOF partition chunk: the arrival checksum catches it,
    //    the map regenerates, the reducer transparently re-fetches — the
    //    retry budget (and so FetchFailureLimit) is never touched.
    let env = ExperimentEnv::paper(RecoveryMode::Baseline);
    let clean = run_one(&spec, &env, vec![]);
    let rep = run_one(
        &spec,
        &env,
        vec![SimFault::CorruptDataAtSecs {
            node: 0,
            target: CorruptTarget::MofPartition { map_index: 1, partition: 0 },
            at_secs: 0.0,
        }],
    );
    assert!(rep.succeeded && rep.failures.is_empty());
    assert!(rep.corruption_refetches >= 1, "the corrupted chunk must be detected and re-fetched");
    assert_eq!(rep.map_attempts, clean.map_attempts + 1, "exactly the corrupted map regenerates");
    println!(
        "\ncorrupted MOF chunk: {} transparent re-fetch(es), {} failures, FetchFailureLimit untouched",
        rep.corruption_refetches,
        rep.failures.len()
    );

    // 3. A rotted ALG log record under analytics logging: recovery
    //    truncates at the bad record and falls back one snapshot — at most
    //    one logging interval of redone work, not a restart from zero.
    let env = ExperimentEnv::paper(RecoveryMode::Alg);
    let rep = run_one(
        &spec,
        &env,
        vec![
            SimFault::CorruptDataAtSecs {
                node: 0,
                target: CorruptTarget::AlgRecord { reduce_index: 0, seq: 0 },
                at_secs: 0.0,
            },
            SimFault::KillReduceAtProgress { reduce_index: 0, at_progress: 0.9 },
        ],
    );
    assert!(rep.succeeded);
    assert_eq!(rep.log_truncations, 1, "exactly one snapshot lost to the bad record");
    assert!(rep.alg_snapshots > 0, "recovery still resumed from analytics logs");
    println!(
        "corrupted ALG record: {} truncation(s), recovery resumed from the previous snapshot",
        rep.log_truncations
    );

    // 4. Differentially validate both transient kinds on both engines at
    //    matched scale: the invariants assert zero node-lost declarations
    //    / map re-executions for the healed partition and bounded,
    //    budget-free recovery for corruption.
    println!();
    let modes = [RecoveryMode::Baseline, RecoveryMode::SfmAlg];
    for scenario in [
        ChaosScenario::new("healing-partition").with(ChaosFault::PartitionLink {
            a: 0,
            b: 2,
            direction: LinkDirection::Both,
            from_secs: 0.0,
            heal_secs: 40.0,
            flap: None,
        }),
        ChaosScenario::new("corrupt-mof").with(ChaosFault::CorruptData {
            node: 1,
            target: CorruptTarget::MofPartition { map_index: 1, partition: 2 },
            at_secs: 1.0,
        }),
    ] {
        let report = chaos::validate_scenario(&scenario, &modes);
        print!("{}", report.render_text());
        assert!(report.ok(), "differential invariants must hold for {}", scenario.name);
    }

    println!("\ntransient faults absorbed: no node loss, no re-execution cascade, bounded recovery");
}
