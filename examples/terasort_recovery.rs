//! Terasort under a node crash: baseline YARN re-execution vs the ALM
//! framework, on the real threaded engine.
//!
//! A node hosting committed map output files (MOFs) is crashed while the
//! reduce phase runs. Baseline recovery rediscoveres the loss through
//! reducers' fetch failures (slow, amplifying); ALM regenerates the MOFs
//! proactively and migrates the affected reducer with fast collective
//! merging. Both runs must produce byte-identical sorted output.
//!
//! ```text
//! cargo run --example terasort_recovery
//! ```

use std::sync::Arc;

use alm_mapreduce::prelude::*;
use alm_mapreduce::runtime::am::run_job;
use alm_mapreduce::workloads::reference::{canonicalize, reference_output};

fn run_mode(mode: RecoveryMode) -> (JobReport, Vec<Record>) {
    let cluster = Arc::new(MiniCluster::for_tests(5));
    let mut alm = AlmConfig::with_mode(mode);
    alm.logging_interval_ms = 1;
    let job = JobDef::new(JobId(7), Arc::new(Terasort::new(30_000)), 6, 3, 42, alm);
    // Crash node 1 once reducer 0 reaches 10% of its work: node 1's MOFs
    // vanish mid-shuffle.
    let faults = FaultPlan::crash_node_at_reduce_progress(NodeId(1), 0, 0.05);
    let report = run_job(cluster.clone(), job.clone(), faults);
    assert!(report.succeeded, "{mode:?} run failed: {report:?}");

    // Collect the committed output for comparison.
    let mut all = Vec::new();
    for r in 0..job.num_reduces {
        let data = cluster.dfs.read(&job.output_path(r)).expect("output committed");
        let mut off = 0;
        while let Some((k, v, next)) = alm_mapreduce::shuffle::codec::decode_at(&data, off).unwrap() {
            all.push(Record::new(k.to_vec(), v.to_vec()));
            off = next;
        }
    }
    all.sort();
    (report, all)
}

fn main() {
    println!("crashing a MOF-hosting node mid-reduce, under two recovery regimes...\n");
    let (yarn, yarn_out) = run_mode(RecoveryMode::Baseline);
    let (alm, alm_out) = run_mode(RecoveryMode::SfmAlg);

    let describe = |name: &str, r: &JobReport| {
        println!(
            "{name:8}  time {:5} ms  failures {:2}  reduce attempts {}  fcm attempts {}",
            r.job_time_ms,
            r.failures.len(),
            r.reduce_attempts,
            r.fcm_attempts
        );
        for f in &r.failures {
            println!(
                "          failure at {:4} ms: {} attempt {} — {}",
                f.at_ms, f.task, f.attempt_number, f.kind
            );
        }
    };
    describe("baseline", &yarn);
    describe("alm", &alm);

    // Safety: identical output regardless of the recovery path taken.
    assert_eq!(yarn_out, alm_out, "recovery regime must not change the result");
    let expected = canonicalize(&reference_output(&Terasort::new(30_000), 6, 3, 42));
    assert_eq!(yarn_out, expected, "output must match the reference oracle");
    println!(
        "\nboth regimes produced byte-identical, oracle-verified sorted output ({} records)",
        alm_out.len()
    );
}
