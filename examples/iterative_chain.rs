//! In-memory iterative chains crashed mid-flight: lineage replay vs ALG+FCM.
//!
//! ```text
//! cargo run --release --example iterative_chain
//! ```
//!
//! A pagerank job chain keeps its MOF partitions and reduce state
//! memory-resident (M3R-style) with a partition-stable partition→node
//! mapping, so each iteration reads its predecessor's state at memory
//! speed. Node 1 — home to a state stripe — crashes while iteration 2's
//! job is in flight. The chain then runs to its 4-iteration budget under
//! both failure semantics, on both engines (discrete-event simulator at
//! paper scale, threaded mini-YARN with real bytes):
//!
//! * **lineage-replay** (pure in-memory, M3R): nothing durable survives,
//!   so every completed generation whose stripes lived on the dead node is
//!   recomputed by re-running the chain from its seed input — the paper's
//!   failure amplification, sharpened by RAM residency.
//! * **alg-fcm**: each generation is also ALG-logged durably; the crash
//!   restores state from the logs and only the in-flight iteration
//!   re-runs under SFM+ALG.
//!
//! Three claims are asserted, exit nonzero on regression:
//!
//! 1. **Amplification is bounded**: ALG+FCM loses zero completed
//!    iterations while lineage replay loses strictly more, on *both*
//!    engines (`mem-amplification-bounded`).
//! 2. **Recovery is semantically invisible**: all four chains — two
//!    engines x two modes — converge to byte-identical final state.
//! 3. **Determinism**: the campaign reproduces exactly on a second run
//!    (simulator byte-identical; runtime by recovery protocol).

use alm_mapreduce::prelude::*;

fn main() {
    let campaign = ChainCampaign::default();
    println!(
        "pagerank chain: {} iterations x {} reduce stripes, node {} crashes during iteration {}\n",
        campaign.iterations, campaign.num_reduces, campaign.crash_node, campaign.crash_iteration
    );

    let report = campaign.run();
    println!("{}", report.render_markdown());

    for inv in &report.invariants {
        println!("invariant {:<28} {}", inv.name, if inv.passed { "PASS" } else { "FAIL" });
    }
    assert!(report.ok(), "chain invariants must hold:\n{}", report.to_json());

    // Claim 1, spelled out from the rows: per engine, ALG+FCM strictly
    // beats lineage replay on iterations lost.
    let row = |report: &ChainDifferentialReport, mode: MemMode, engine_name: &str| {
        report
            .rows
            .iter()
            .find(|r| r.mode == mode && r.engine.to_string() == engine_name)
            .cloned()
            .expect("campaign emits every (engine, mode) row")
    };
    for engine_name in ["sim", "runtime"] {
        let lineage = row(&report, MemMode::LineageReplay, engine_name);
        let alg = row(&report, MemMode::AlgFcm, engine_name);
        assert_eq!(alg.iterations_lost, 0, "{engine_name}: ALG+FCM must lose nothing");
        assert!(
            lineage.iterations_lost > 0 && lineage.replay_runs > 0,
            "{engine_name}: lineage replay must pay for the crash in recomputed iterations"
        );
        assert!(alg.durable_restores > 0, "{engine_name}: ALG+FCM must restore from the log");
        println!(
            "{engine_name}: lineage replay recomputed {} completed iteration(s) ({} replay runs); \
             ALG+FCM restored {} stripe generation(s) from durable logs and lost none",
            lineage.iterations_lost, lineage.replay_runs, alg.durable_restores
        );
    }

    // Claim 3: a second run reproduces the protocol of every row. The
    // simulator's rows repeat exactly (virtual time); the threaded
    // runtime's wall seconds and cache traffic vary with thread timing,
    // so runtime rows are compared by recovery protocol.
    let again = campaign.run();
    for (a, b) in report.rows.iter().zip(again.rows.iter()) {
        if a.engine.to_string() == "sim" {
            assert_eq!(a, b, "simulator rows must repeat exactly");
        } else {
            assert_eq!(
                (a.mode, a.iterations_completed, a.iterations_lost, a.durable_restores, a.replay_runs),
                (b.mode, b.iterations_completed, b.iterations_lost, b.durable_restores, b.replay_runs),
                "runtime recovery protocol must repeat exactly"
            );
        }
    }

    println!("\nok: RAM-resident chains keep memory speed without inheriting M3R's blast radius");
}
