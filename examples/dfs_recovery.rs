//! DFS replica management: verified reads, failover, re-replication.
//!
//! ```text
//! cargo run --release --example dfs_recovery
//! ```
//!
//! The DFS stores a CRC32-framed copy of every block *per replica*, so
//! corruption is a per-replica event rather than a file-wide one. This
//! example walks the whole recovery story on real bytes:
//!
//! 1. rot one replica of a committed file — a verified read serves clean
//!    bytes from a healthy copy, charges the failover, and queues the
//!    block for re-replication; `repair()` then restores the replication
//!    level rack-aware;
//! 2. rot *every* replica — the read surfaces the distinct
//!    `AllReplicasCorrupt` error (the bytes are present but rotten
//!    everywhere; retrying against liveness cannot help);
//! 3. the Fig. 13 trade-off: per [`ReplicationLevel`], kill a replica
//!    holder and measure the re-replication bytes against the estimated
//!    recovery latency on the §V-A testbed hardware — node-level writes
//!    are free to repair only because the data is simply gone.

use alm_mapreduce::dfs::{DfsCluster, DfsError, Topology};
use alm_mapreduce::prelude::*;
use bytes::Bytes;

const MB: u64 = 1024 * 1024;
const BLOCK: u64 = 4 * MB;
const REPLICATION: u16 = 2; // dfs.replication (Table I)
const REPAIR_CONCURRENCY: u32 = 2;

/// Deterministic payload so reads can be checked byte-for-byte.
fn payload(len: usize) -> Bytes {
    Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<u8>>())
}

fn main() {
    let hw = ClusterSpec::default();

    // ---- 1. One rotten replica: failover + repair -----------------------
    let dfs = DfsCluster::with_policy(Topology::even(6, 2), BLOCK, REPLICATION, true, REPAIR_CONCURRENCY);
    let data = payload((3 * BLOCK) as usize + 517);
    let meta = dfs
        .write("/out/part-00000", data.clone(), NodeId(0), ReplicationLevel::Rack)
        .expect("write must place replicas");
    println!("wrote {} bytes as {} blocks x {} replicas", meta.len, meta.num_blocks, REPLICATION);

    assert!(dfs.corrupt_replica("/out/part-00000", 1, Some(meta.replicas[1][0])));
    let read = dfs.read("/out/part-00000").expect("verified read must fail over");
    assert_eq!(read, data, "the reader must never see rotten bytes");
    let stats = dfs.stats();
    assert_eq!(stats.read_failovers, 1);
    assert_eq!(dfs.repair_queue_len(), 1, "detected rot must queue re-replication");
    println!(
        "rotted 1 replica of block 1: read served clean bytes, {} failover charged",
        stats.read_failovers
    );

    let repaired = dfs.repair();
    assert!(repaired > 0, "repair must copy bytes");
    assert_eq!(dfs.corrupt_replica_count(), 0, "repair must evict the rotten replica");
    println!("repair copied {repaired} bytes; corrupt replicas now {}", dfs.corrupt_replica_count());

    // ---- 2. Every replica rotten: a distinct, diagnosable error ---------
    for node in &meta.replicas[0] {
        assert!(dfs.corrupt_replica("/out/part-00000", 0, Some(*node)));
    }
    match dfs.read("/out/part-00000") {
        Err(DfsError::AllReplicasCorrupt { block, .. }) => {
            println!("rotted all replicas of block {block}: read failed with AllReplicasCorrupt (not BlockUnavailable)");
        }
        other => panic!("expected AllReplicasCorrupt, got {other:?}"),
    }

    // ---- 3. Fig. 13: re-replication bytes vs recovery latency -----------
    // Kill one replica holder per level and let repair restore the
    // replication level. Copy pipeline: source disk read -> NIC -> dest
    // disk write; cluster-level repairs also cross the oversubscribed
    // rack uplink, shared by the concurrent repair streams.
    let file_bytes = 24 * BLOCK;
    let intra_bw = hw.nic_bandwidth.min(hw.disk_read_bandwidth).min(hw.disk_write_bandwidth);
    let cross_bw = intra_bw.min(hw.rack_uplink_bandwidth / u64::from(REPAIR_CONCURRENCY));
    println!("\nreplica management after losing one holder node ({} MB file, {} racks):", file_bytes / MB, 2);
    println!(
        "  {:<8} {:>9} {:>18} {:>17}  outcome",
        "level", "replicas", "re-replication", "recovery latency"
    );
    for level in [ReplicationLevel::Node, ReplicationLevel::Rack, ReplicationLevel::Cluster] {
        let dfs =
            DfsCluster::with_policy(Topology::even(20, 2), BLOCK, REPLICATION, true, REPAIR_CONCURRENCY);
        let meta = dfs
            .write("/out/part-00000", payload(file_bytes as usize), NodeId(0), level)
            .expect("write must place replicas");
        dfs.set_node_alive(meta.replicas[0][0], false);
        let copied = dfs.repair();
        let bw = if level == ReplicationLevel::Cluster { cross_bw } else { intra_bw };
        let (latency, outcome) = if dfs.lost_block_count() > 0 {
            assert_eq!(level, ReplicationLevel::Node, "replicated levels must survive one node loss");
            ("-".to_string(), "data lost (no surviving replica)")
        } else {
            assert_eq!(copied, file_bytes, "repair must re-replicate the whole lost holder");
            assert!(dfs.is_available("/out/part-00000"));
            (format!("{:.3} s", copied as f64 / bw as f64), "replication level restored")
        };
        println!(
            "  {:<8} {:>9} {:>15} MB {:>17}  {outcome}",
            format!("{level:?}"),
            level.replica_count(REPLICATION),
            copied / MB,
            latency,
        );
    }
    println!("\ndfs_recovery: OK");
}
