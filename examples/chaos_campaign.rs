//! A seeded randomized chaos campaign at paper scale, plus one scenario
//! differentially validated on both engines.
//!
//! ```text
//! cargo run --release --example chaos_campaign [seed]
//! ```
//!
//! Samples a dozen scenarios from a fault space shaped like the paper's §V
//! experiments (task kills, timed/progress-triggered node crashes, slow
//! nodes, correlated rack failures), runs each under baseline YARN and
//! SFM+ALG on the discrete-event simulator, and reports temporal/spatial
//! amplification per mode — the Table II claim: wherever baseline YARN
//! suffers spatial amplification, SFM+ALG suffers none. One scenario is
//! then re-run on *both* engines at matched small scale and checked for
//! invariant agreement.

use alm_mapreduce::chaos::{self, ChaosFault, ChaosScenario, EngineKind, FaultSpace, FaultWeights};
use alm_mapreduce::prelude::*;
use alm_mapreduce::sim::experiment::node_of_reduce;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let spec = SimJobSpec::paper(WorkloadKind::Terasort, seed);
    let modes = vec![RecoveryMode::Baseline, RecoveryMode::SfmAlg];
    let campaign = chaos::SimCampaign::paper(spec.clone(), modes.clone());

    // 12 randomized scenarios from a §V-shaped fault space…
    let mut space = FaultSpace::paper_like(20, 2, 80, spec.num_reduces);
    space.weights = FaultWeights { crash_node_at_reduce_progress: 4, ..FaultWeights::default() };
    let mut scenarios = space.sample(12, seed);

    // …plus the paper's own Table II placement, pinned: crash the node
    // hosting reducer 5 early in its shuffle.
    let baseline_env = ExperimentEnv::paper(RecoveryMode::Baseline);
    let victim = node_of_reduce(&spec, &baseline_env, 5);
    scenarios.push(ChaosScenario::new("pinned-table2").with(ChaosFault::CrashNodeAtReduceProgress {
        node: victim,
        reduce_index: 5,
        at_progress: 0.10,
    }));

    println!(
        "running {} scenarios x {} modes on the simulator (seed {seed})...\n",
        scenarios.len(),
        modes.len()
    );
    let mut report = chaos::CampaignReport::new("chaos-campaign", seed);
    report.extend(campaign.run(&scenarios));
    println!("{}", report.render_text());

    let contrast =
        report.spatial_contrast(EngineKind::Simulator, RecoveryMode::Baseline, RecoveryMode::SfmAlg);
    println!("scenarios where baseline YARN amplifies spatially:");
    for (name, yarn, alm) in &contrast {
        println!("  {name}: YARN infected {yarn} healthy reducer(s), SFM+ALG {alm}");
    }
    assert!(!contrast.is_empty(), "campaign must include at least one spatially-amplifying scenario");
    assert!(
        contrast.iter().all(|(_, _, alm)| *alm == 0),
        "Table II shape: SFM+ALG shows zero spatial amplification wherever YARN shows some"
    );
    println!("\n=> Table II shape holds: SFM+ALG amplified on 0/{} such scenarios\n", contrast.len());

    // Differential validation: same declarative scenario, both engines,
    // matched small scale, invariant agreement.
    let diff_scenario =
        ChaosScenario::new("diff-kill-reduce").with(ChaosFault::KillReduce { index: 1, at_progress: 0.5 });
    let verdict = chaos::validate_scenario(&diff_scenario, &modes);
    println!("{}", verdict.render_text());
    assert!(verdict.ok(), "differential validation must pass");
}
