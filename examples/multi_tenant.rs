//! Fair vs FIFO scheduling on a shared cluster losing a rack mid-campaign.
//!
//! ```text
//! cargo run --release --example multi_tenant [seed]
//! ```
//!
//! Three tenants share a 200-node warehouse, each submitting eight jobs in
//! quick succession; rack 2 crashes 90 s in. The same campaign runs under
//! the FIFO and fair policies for both baseline YARN and SFM+ALG recovery,
//! and prints the per-tenant latency/slowdown tables.
//!
//! Two claims are asserted, exit nonzero on regression:
//!
//! 1. **Recovery shields tenants**: for every policy, the wounded
//!    tenant's mean slowdown under SFM+ALG is no worse than baseline —
//!    the paper's single-job result survives multi-tenancy.
//! 2. **Determinism**: each `(policy, mode)` cell reproduces
//!    byte-identically on a second run.

use alm_mapreduce::prelude::*;
use alm_mapreduce::sched::WarehouseReport;

fn run(policy: SchedPolicyKind, mode: RecoveryMode, seed: u64) -> WarehouseReport {
    WarehouseCampaign::synthetic(200, 3, 8, policy, mode, seed)
        .with_fault(WarehouseFault::CrashRack { rack: 2, at_secs: 90.0 })
        .run()
        .expect("warehouse campaign")
}

/// Mean slowdown of the tenant that took the most task failures.
fn wounded_slowdown(r: &WarehouseReport) -> f64 {
    r.per_tenant_rows()
        .into_iter()
        .max_by(|a, b| a.failures.cmp(&b.failures))
        .map(|t| t.mean_slowdown)
        .expect("tenants")
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    println!("3 tenants x 8 jobs on 200 nodes, rack 2 crashes at t=90s (seed {seed})\n");

    for policy in [SchedPolicyKind::Fifo, SchedPolicyKind::Fair] {
        let mut wounded = Vec::new();
        for mode in [RecoveryMode::Baseline, RecoveryMode::SfmAlg] {
            let report = run(policy, mode, seed);
            assert!(report.succeeded(), "{policy:?}/{mode:?}: all jobs must finish");
            assert_eq!(
                report.canonical_json(),
                run(policy, mode, seed).canonical_json(),
                "{policy:?}/{mode:?} must reproduce byte-identically"
            );
            println!("{}", report.render_text());
            wounded.push(wounded_slowdown(&report));
        }
        let (baseline, treated) = (wounded[0], wounded[1]);
        assert!(
            treated <= baseline + 1e-9,
            "{policy:?}: SFM+ALG must not slow the wounded tenant down \
             (treated {treated:.2} vs baseline {baseline:.2})"
        );
        println!("{policy:?}: wounded-tenant slowdown {baseline:.2} (baseline) -> {treated:.2} (SFM+ALG)\n");
    }
    println!("ok: recovery shields the wounded tenant under both policies; all cells deterministic");
}
