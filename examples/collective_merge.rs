//! Fast Collective Merging in isolation: the real pipelined implementation
//! from `alm-core`, merging sorted segments spread over "participant
//! nodes" into one globally ordered stream, compared against a single-node
//! merge of the same data.
//!
//! ```text
//! cargo run --release --example collective_merge
//! ```

use std::time::Instant;

use alm_mapreduce::prelude::*;
use alm_mapreduce::shuffle::segment::{build_segment, SegmentReader, SegmentSource};
use alm_mapreduce::shuffle::{bytewise_cmp, MergeQueue};
use rand::{rngs::SmallRng, RngCore, SeedableRng};

fn main() {
    // 4 participants, 8 sorted segments each, 100-byte records.
    let mut rng = SmallRng::seed_from_u64(5);
    let node_segments: Vec<Vec<::bytes::Bytes>> = (0..4)
        .map(|_| {
            (0..8)
                .map(|_| {
                    let mut recs: Vec<(Vec<u8>, Vec<u8>)> = (0..20_000)
                        .map(|_| {
                            let mut key = vec![0u8; 10];
                            rng.fill_bytes(&mut key);
                            (key, vec![0u8; 90])
                        })
                        .collect();
                    recs.sort();
                    build_segment(&recs)
                })
                .collect()
        })
        .collect();
    let total_bytes: usize = node_segments.iter().flatten().map(|s| s.len()).sum();
    println!("merging {:.1} MB across 4 participants x 8 segments\n", total_bytes as f64 / (1 << 20) as f64);

    // Single-node merge: one MPQ over all 32 segments (what a plain
    // recovering ReduceTask does).
    let t0 = Instant::now();
    let readers: Vec<SegmentReader> = node_segments
        .iter()
        .flatten()
        .enumerate()
        .map(|(i, s)| SegmentReader::new(SegmentSource::Memory { id: i as u64 }, s.clone()).unwrap())
        .collect();
    let mut q = MergeQueue::new(bytewise_cmp(), readers);
    let mut single = 0u64;
    while q.pop().unwrap().is_some() {
        single += 1;
    }
    let single_t = t0.elapsed();
    println!("single-node merge : {single} records in {single_t:?}");

    // Fast Collective Merging: each participant pre-merges its own
    // segments on its own thread and streams to the Global-MPQ.
    let t0 = Instant::now();
    let participants: Vec<Participant> = node_segments
        .iter()
        .enumerate()
        .map(|(n, segs)| Participant {
            node: NodeId(n as u32),
            segments: segs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    SegmentReader::new(SegmentSource::Memory { id: (n * 100 + i) as u64 }, s.clone()).unwrap()
                })
                .collect(),
        })
        .collect();
    let mut last_key: Option<Vec<u8>> = None;
    let stats = collective_merge(&bytewise_cmp(), participants, 64 * 1024, |k, _| {
        if let Some(prev) = &last_key {
            assert!(prev.as_slice() <= k, "global order violated");
        }
        last_key = Some(k.to_vec());
    })
    .unwrap();
    let fcm_t = t0.elapsed();
    println!(
        "collective merge  : {} records in {fcm_t:?} ({} participants)",
        stats.records, stats.participants
    );
    assert_eq!(stats.records, single);
    println!(
        "\nidentical record counts, globally sorted — collective/single time ratio {:.2}x",
        fcm_t.as_secs_f64() / single_t.as_secs_f64()
    );
    println!(
        "(in-process, both merges share one machine's cores; the paper's FCM win comes from\n distributing the pre-merge I/O and CPU across cluster nodes — see `cargo run -p alm-bench\n --release --bin fig14` for the cluster-scale comparison)"
    );
}
