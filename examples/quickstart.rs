//! Quickstart: run a real Wordcount job on the in-process mini-YARN,
//! inject a ReduceTask failure mid-flight, and watch the ALM framework
//! recover it — then read the counted words back off the simulated HDFS.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use alm_mapreduce::prelude::*;
use alm_mapreduce::shuffle::codec;

fn main() {
    // A 4-node cluster with test-scaled timeouts (milliseconds instead of
    // the paper's 70-second detection windows).
    let cluster = Arc::new(MiniCluster::for_tests(4));

    // Wordcount over ~8000 synthetic zipf words, 2 maps, 2 reducers,
    // full ALM recovery (analytics logging + speculative fast migration).
    let mut alm = AlmConfig::with_mode(RecoveryMode::SfmAlg);
    alm.logging_interval_ms = 1; // log eagerly so the demo exercises resume
    let job = JobDef::new(JobId(1), Arc::new(Wordcount::new(4000, 20)), 2, 2, 42, alm);

    // Fault plan: the first attempt of reducer 0 dies with an injected OOM
    // at 50% of its progress (the paper's §V-A methodology).
    let faults = FaultPlan::kill_task(TaskId::reduce(JobId(1), 0), 0.5);

    println!("running wordcount with an injected ReduceTask failure...");
    let report = run_job(cluster.clone(), job.clone(), faults);

    println!("succeeded        : {}", report.succeeded);
    println!("job time         : {} ms (test-scaled)", report.job_time_ms);
    println!("map attempts     : {}", report.map_attempts);
    println!("reduce attempts  : {} (recovery attempts included)", report.reduce_attempts);
    for f in &report.failures {
        println!("observed failure : {} attempt {} — {}", f.task, f.attempt_number, f.kind);
    }

    // Read the committed output back from the DFS.
    let mut total_words = 0u64;
    let mut distinct = 0u64;
    for r in 0..job.num_reduces {
        let data = cluster.dfs.read(&job.output_path(r)).expect("output committed");
        let mut off = 0;
        while let Some((_k, v, next)) = codec::decode_at(&data, off).expect("valid output") {
            let mut arr = [0u8; 8];
            arr.copy_from_slice(&v);
            total_words += u64::from_be_bytes(arr);
            distinct += 1;
            off = next;
        }
    }
    println!("distinct words   : {distinct}");
    println!("total words      : {total_words} (expected 8000)");
    assert_eq!(total_words, 8000, "recovery must not lose or duplicate records");
}
