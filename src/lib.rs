//! # ALM-MapReduce
//!
//! A from-scratch Rust reproduction of *"Cracking Down MapReduce Failure
//! Amplification through Analytics Logging and Migration"* (Wang, Fu, Yu —
//! IPDPS 2015): the **ALM** fault-tolerance framework — **A**nalytics
//! **L**ogging (ALG) and Speculative Fast **M**igration (SFM) — together
//! with everything it runs on, built from scratch:
//!
//! * a real MapReduce data plane ([`shuffle`]): map-side sort buffer with
//!   spills, IFile-like segments, MOFs, k-way MPQ merging, reduce-side
//!   fetch buffers;
//! * a mini-YARN threaded runtime ([`runtime`]) executing real jobs with
//!   real bytes, fault injection, and both baseline and ALM recovery;
//! * a discrete-event cluster simulator ([`sim`], on the [`des`] kernel)
//!   reproducing every figure and table of the paper's evaluation at
//!   paper scale (21 nodes, 10–320 GB inputs) in milliseconds;
//! * the paper's three workloads ([`workloads`]): Terasort, Wordcount,
//!   Secondarysort, each with an executable and an analytic form;
//! * a block-based DFS with rack-aware replica placement ([`dfs`]).
//!
//! ## Quick start
//!
//! Run a Wordcount job on an in-process cluster, inject a ReduceTask
//! failure, and let analytics logging resume it:
//!
//! ```
//! use std::sync::Arc;
//! use alm_mapreduce::prelude::*;
//!
//! let cluster = Arc::new(MiniCluster::for_tests(4));
//! let job = JobDef::new(
//!     JobId(1),
//!     Arc::new(Wordcount::new(2000, 20)),
//!     2,  // maps
//!     2,  // reduces
//!     42, // seed
//!     AlmConfig::with_mode(RecoveryMode::SfmAlg),
//! );
//! let faults = FaultPlan::kill_task(TaskId::reduce(JobId(1), 0), 0.5);
//! let report = run_job(cluster.clone(), job.clone(), faults);
//! assert!(report.succeeded);
//! assert_eq!(report.failures.len(), 1); // the injected OOM, recovered
//! ```
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `alm-core` | the paper's contribution: ALG + SFM |
//! | [`runtime`] | `alm-runtime` | threaded mini-YARN engine |
//! | [`sim`] | `alm-sim` | discrete-event experiment engine |
//! | [`shuffle`] | `alm-shuffle` | the real data plane |
//! | [`dfs`] | `alm-dfs` | simulated HDFS |
//! | [`workloads`] | `alm-workloads` | Terasort / Wordcount / Secondarysort |
//! | [`des`] | `alm-des` | DES kernel (clock, events, flow pools) |
//! | [`types`] | `alm-types` | ids, configs (Table I), failure vocabulary |
//! | [`metrics`] | `alm-metrics` | series, timelines, experiment reports |
//! | [`chaos`] | `alm-chaos` | declarative fault campaigns + differential cross-engine validation |
//! | [`sched`] | `alm-sched` | multi-tenant warehouse scheduler (FIFO / capacity / fair) over the DES |
//! | [`mem`] | `alm-mem` | in-memory iterative mode: resident MOF cache + partition-stable job chains |

#![forbid(unsafe_code)]

pub use alm_chaos as chaos;
pub use alm_core as core;
pub use alm_des as des;
pub use alm_dfs as dfs;
pub use alm_mem as mem;
pub use alm_metrics as metrics;
pub use alm_runtime as runtime;
pub use alm_sched as sched;
pub use alm_shuffle as shuffle;
pub use alm_sim as sim;
pub use alm_types as types;
pub use alm_workloads as workloads;

/// One-stop imports for applications.
pub mod prelude {
    pub use alm_chaos::{
        CampaignReport, ChainCampaign, ChainDifferentialReport, ChaosFault, ChaosScenario, FaultSpace,
        RuntimeCampaign, SimCampaign,
    };
    pub use alm_core::{
        collective_merge, recover_state, schedule_recovery, AnalyticsLogger, ExecMode, LogPaths, LogRecord,
        PartialOutput, Participant, PolicyCtx, RecoveredState, SchedAction, StageLog,
    };
    pub use alm_mem::{
        run_chain, ChainReport, CrashPlan, IterativeSpec, ResidentStore, RuntimeChainEngine, SimChainEngine,
    };
    pub use alm_runtime::am::run_job;
    pub use alm_runtime::{FaultPlan, JobDef, JobReport, MiniCluster};
    pub use alm_sched::{
        run_seeds, SchedConfig, SchedPolicyKind, TenantSpec, WarehouseCampaign, WarehouseFault,
        WarehouseReport,
    };
    pub use alm_sim::{ExperimentEnv, SimFault, SimJobSpec, Simulation};
    pub use alm_types::{
        AlmConfig, AttemptId, ClusterSpec, FailureKind, JobId, MemConfig, MemMode, NodeId, RecoveryMode,
        ReplicationLevel, TaskId, YarnConfig,
    };
    pub use alm_workloads::{
        JobSpec, KMeans, Pagerank, Record, SecondarySort, Terasort, Wordcount, Workload, WorkloadKind,
    };
}
