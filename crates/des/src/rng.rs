//! Deterministic random streams.
//!
//! Every stochastic component of a simulation (task service-time jitter,
//! input skew, failure injection) draws from its own stream derived from
//! the experiment seed and a component label, so adding randomness to one
//! component never perturbs another — a standard DES reproducibility
//! technique (common random numbers).

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derive an independent RNG stream from `(seed, label)`.
///
/// The derivation is a fixed 64-bit mix (SplitMix64 over the seed and the
/// FNV-1a hash of the label), so streams are stable across platforms and
/// releases of the `rand` crate's default hasher.
pub fn stream(seed: u64, label: &str) -> SmallRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mixed = splitmix64(seed ^ h);
    SmallRng::seed_from_u64(mixed)
}

/// SplitMix64 finalizer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = stream(42, "failure-injector");
        let mut b = stream(42, "failure-injector");
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let mut a = stream(42, "component-a");
        let mut b = stream(42, "component-b");
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0, "distinct labels must give distinct streams");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = stream(1, "x");
        let mut b = stream(2, "x");
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the SplitMix64 paper's test vectors.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
    }
}
