//! Equal-share bandwidth resources.
//!
//! A [`FlowPool`] models one contended resource — a node's NIC or its SSD —
//! with processor-sharing semantics: `n` concurrent flows each progress at
//! `capacity / n` bytes per second. This is the standard fluid approximation
//! for TCP fair sharing on a single bottleneck and for mixed sequential I/O
//! on an SSD, and it is what makes the paper's contention effects emerge in
//! simulation: e.g. a recovering reducer pulling from 20 senders saturates
//! its inbound NIC, and heavy merge I/O on one disk slows co-located spills.
//!
//! The pool is pure state: the simulation driver calls [`FlowPool::advance_to`]
//! before any mutation, then re-asks [`FlowPool::next_completion`] and
//! (re)schedules a kernel event at that time.
//!
//! # Cumulative-service representation
//!
//! Because every active flow receives the *same* service rate, the pool
//! tracks one global counter — `service`, the bytes any flow active since
//! the beginning would have received — advanced in O(1) per step
//! (`service += capacity/n · dt`). Each flow stores the counter value at
//! which it started and the value at which it finishes
//! (`target = start + bytes`); its remaining bytes are `target - service`.
//! Since `remaining` differs from `target` by the same global offset for
//! every flow, an index ordered by `(target, id)` *is* an index ordered by
//! `(remaining, id)`: completion lookup is an O(1) peek and add/remove are
//! O(log n), instead of the O(n) per-event scans the previous
//! representation paid — the difference between minutes and seconds for
//! warehouse-scale campaigns with thousands of concurrent flows.

use std::collections::{BTreeMap, BTreeSet};

use crate::time::{SimDuration, SimTime};

/// Identifier for a flow within a pool; allocated by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// Total-order f64 key (`f64::total_cmp`) so finish targets can live in a
/// `BTreeSet`. Targets are finite by construction (sums of byte counts and
/// bounded service), where `total_cmp` agrees with the usual `<`.
#[derive(Debug, Clone, Copy)]
struct TotalF64(f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct FlowEntry {
    /// Global service counter when the flow started.
    start: f64,
    /// Global service counter at which the flow is fully delivered.
    target: f64,
}

/// A shared-bandwidth resource with equal-share scheduling.
#[derive(Debug, Clone)]
pub struct FlowPool {
    capacity: f64, // bytes per second
    flows: BTreeMap<FlowId, FlowEntry>,
    /// Completion index: ordered by `(target, id)`, which equals
    /// `(remaining, id)` order because `remaining = target - service`
    /// uniformly across flows.
    by_target: BTreeSet<(TotalF64, FlowId)>,
    /// Bytes an always-active flow would have received so far.
    service: f64,
    last_advance: SimTime,
    /// Bytes delivered by flows that already left the pool.
    delivered_completed: f64,
}

impl FlowPool {
    /// A pool with `capacity` bytes/second of total bandwidth.
    pub fn new(capacity_bytes_per_sec: u64) -> FlowPool {
        FlowPool {
            capacity: capacity_bytes_per_sec as f64,
            flows: BTreeMap::new(),
            by_target: BTreeSet::new(),
            service: 0.0,
            last_advance: SimTime::ZERO,
            delivered_completed: 0.0,
        }
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Bytes a flow present since `start` has received, capped at its size.
    fn served(&self, f: &FlowEntry) -> f64 {
        (self.service - f.start).clamp(0.0, f.target - f.start)
    }

    /// Total bytes fully delivered by this pool (diagnostic/metrics).
    /// O(active flows); the hot path never calls it.
    pub fn total_delivered(&self) -> f64 {
        self.delivered_completed + self.flows.values().map(|f| self.served(f)).sum::<f64>()
    }

    /// Per-flow rate right now (bytes/second).
    pub fn rate_per_flow(&self) -> f64 {
        if self.flows.is_empty() {
            self.capacity
        } else {
            self.capacity / self.flows.len() as f64
        }
    }

    /// Progress all flows to `now` at the current equal-share rate — O(1).
    ///
    /// Must be called (by the driver) before any add/remove/query whenever
    /// virtual time has moved. Calls with non-monotone `now` are ignored.
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if self.flows.is_empty() {
            return;
        }
        self.service += self.capacity / self.flows.len() as f64 * dt;
    }

    /// Start a flow of `bytes`. The caller must have advanced the pool to
    /// the current time first. Returns the predicted next completion.
    pub fn add(&mut self, id: FlowId, bytes: u64) -> Option<(FlowId, SimTime)> {
        let entry = FlowEntry { start: self.service, target: self.service + bytes as f64 };
        let prev = self.flows.insert(id, entry);
        debug_assert!(prev.is_none(), "flow id {id:?} reused while active");
        self.by_target.insert((TotalF64(entry.target), id));
        self.next_completion()
    }

    /// Remove a flow (completed or aborted), returning its remaining bytes.
    pub fn remove(&mut self, id: FlowId) -> Option<u64> {
        let f = self.flows.remove(&id)?;
        self.by_target.remove(&(TotalF64(f.target), id));
        self.delivered_completed += self.served(&f);
        Some((f.target - self.service).max(0.0).ceil() as u64)
    }

    /// Flows that are (numerically) finished right now, in id order.
    pub fn drain_completed(&mut self) -> Vec<FlowId> {
        let mut done = Vec::new();
        // Sub-byte residue counts as done: remaining = target - service < 1.
        while let Some(&(TotalF64(target), id)) = self.by_target.iter().next() {
            if target >= self.service + 1.0 {
                break;
            }
            self.by_target.remove(&(TotalF64(target), id));
            if let Some(f) = self.flows.remove(&id) {
                self.delivered_completed += self.served(&f);
            }
            done.push(id);
        }
        done.sort_unstable();
        done
    }

    /// Predicted time the *earliest* remaining flow completes, assuming the
    /// current flow set stays fixed. `None` when idle. O(1): the head of
    /// the target index is the flow with the least remaining (ties to the
    /// smallest id).
    pub fn next_completion(&self) -> Option<(FlowId, SimTime)> {
        let &(TotalF64(target), id) = self.by_target.iter().next()?;
        let rate = self.rate_per_flow();
        // Predict from the fractional remainder directly, with a 1 ns floor
        // so the driver's wake event always advances virtual time (a zero
        // -duration prediction would livelock the event loop).
        let remaining = (target - self.service).max(0.0);
        let d = SimDuration::from_secs_f64(remaining / rate).max(SimDuration::from_nanos(1));
        Some((id, self.last_advance + d))
    }

    /// Remaining bytes of one flow.
    pub fn remaining(&self, id: FlowId) -> Option<u64> {
        self.flows.get(&id).map(|f| (f.target - self.service).max(0.0).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut p = FlowPool::new(1_000_000); // 1 MB/s
        p.add(FlowId(1), 500_000);
        let (_, when) = p.next_completion().unwrap();
        assert!((when.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_equally() {
        let mut p = FlowPool::new(1_000_000);
        p.add(FlowId(1), 1_000_000);
        p.add(FlowId(2), 1_000_000);
        assert_eq!(p.rate_per_flow(), 500_000.0);
        // After 1 s each has 500 KB left.
        p.advance_to(t(1000));
        assert_eq!(p.remaining(FlowId(1)).unwrap(), 500_000);
        assert_eq!(p.remaining(FlowId(2)).unwrap(), 500_000);
        // Second flow leaves; first finishes at full rate: 0.5 s more.
        p.remove(FlowId(2));
        let (id, when) = p.next_completion().unwrap();
        assert_eq!(id, FlowId(1));
        assert!((when.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn completion_detection() {
        let mut p = FlowPool::new(100);
        p.add(FlowId(7), 100);
        p.advance_to(t(1000));
        let done = p.drain_completed();
        assert_eq!(done, vec![FlowId(7)]);
        assert_eq!(p.active_flows(), 0);
        assert!(p.next_completion().is_none());
    }

    #[test]
    fn advance_is_monotone_and_idempotent() {
        let mut p = FlowPool::new(1000);
        p.add(FlowId(1), 1000);
        p.advance_to(t(500));
        let r = p.remaining(FlowId(1)).unwrap();
        p.advance_to(t(500)); // same time: no change
        p.advance_to(t(100)); // going backwards: ignored
        assert_eq!(p.remaining(FlowId(1)).unwrap(), r);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut p = FlowPool::new(1000);
        p.add(FlowId(1), 0);
        assert_eq!(p.drain_completed(), vec![FlowId(1)]);
    }

    #[test]
    fn late_joiner_tracks_only_its_own_service() {
        let mut p = FlowPool::new(1_000_000);
        p.add(FlowId(1), 1_000_000);
        p.advance_to(t(500)); // flow 1 alone: 500 KB served
        p.add(FlowId(2), 1_000_000);
        assert_eq!(p.remaining(FlowId(2)).unwrap(), 1_000_000);
        p.advance_to(t(1500)); // shared second: 500 KB each
        assert_eq!(p.remaining(FlowId(1)).unwrap(), 0);
        assert_eq!(p.remaining(FlowId(2)).unwrap(), 500_000);
        assert_eq!(p.drain_completed(), vec![FlowId(1)]);
        // Delivered so far: flow 1's full MB plus flow 2's 500 KB.
        assert!((p.total_delivered() - 1_500_000.0).abs() < 1.0);
    }

    #[test]
    fn completion_order_ties_break_by_id() {
        let mut p = FlowPool::new(1000);
        p.add(FlowId(9), 100);
        p.add(FlowId(3), 100);
        let (id, _) = p.next_completion().unwrap();
        assert_eq!(id, FlowId(3));
        p.advance_to(t(10_000));
        assert_eq!(p.drain_completed(), vec![FlowId(3), FlowId(9)]);
    }

    /// The previous per-flow implementation, kept as a test oracle.
    #[derive(Clone)]
    struct NaivePool {
        capacity: f64,
        flows: BTreeMap<FlowId, f64>,
        last: SimTime,
    }

    impl NaivePool {
        fn advance_to(&mut self, now: SimTime) {
            if now <= self.last {
                return;
            }
            let dt = now.since(self.last).as_secs_f64();
            self.last = now;
            if self.flows.is_empty() {
                return;
            }
            let per_flow = self.capacity / self.flows.len() as f64 * dt;
            for r in self.flows.values_mut() {
                *r = (*r - per_flow).max(0.0);
            }
        }

        fn drain_completed(&mut self) -> Vec<FlowId> {
            let done: Vec<FlowId> = self.flows.iter().filter(|(_, r)| **r < 1.0).map(|(id, _)| *id).collect();
            for id in &done {
                self.flows.remove(id);
            }
            done
        }
    }

    proptest! {
        /// Conservation: however we interleave advances, the pool never
        /// delivers more than capacity * elapsed bytes in total.
        #[test]
        fn work_conservation(
            flows in proptest::collection::vec(1u64..10_000_000, 1..10),
            steps in proptest::collection::vec(1u64..5_000, 1..30),
        ) {
            let cap = 1_000_000u64;
            let mut p = FlowPool::new(cap);
            for (i, b) in flows.iter().enumerate() {
                p.add(FlowId(i as u64), *b);
            }
            let mut now = 0u64;
            for s in steps {
                now += s;
                p.advance_to(SimTime::from_ms(now));
                p.drain_completed();
            }
            let elapsed = now as f64 / 1000.0;
            prop_assert!(p.total_delivered() <= cap as f64 * elapsed + 1.0);
            let total_in: f64 = flows.iter().map(|&b| b as f64).sum();
            prop_assert!(p.total_delivered() <= total_in + 1.0);
        }

        /// The predicted completion instant is exact: advancing to it makes
        /// that flow complete (and not earlier).
        #[test]
        fn prediction_is_exact(flows in proptest::collection::vec(1u64..1_000_000, 1..8)) {
            let mut p = FlowPool::new(123_456);
            for (i, b) in flows.iter().enumerate() {
                p.add(FlowId(i as u64), *b);
            }
            let (id, when) = p.next_completion().unwrap();
            // Just before: not yet complete (allow 1ms slack for rounding).
            if when.as_millis() > 2 {
                let mut early = p.clone();
                early.advance_to(SimTime::from_ms(when.as_millis().saturating_sub(2)));
                prop_assert!(!early.drain_completed().contains(&id) || flows.len() > 1);
            }
            p.advance_to(when + crate::time::SimDuration::from_nanos(1));
            prop_assert!(p.drain_completed().contains(&id));
        }

        /// Semantic equivalence with the previous O(n)-per-step
        /// representation: same flows, same advance schedule, same
        /// completion sets at every step (within a byte of float slack at
        /// the boundary, where the two arrangements of the same arithmetic
        /// may disagree on sub-byte residue).
        #[test]
        fn matches_naive_reference(
            adds in proptest::collection::vec((1u64..5_000_000, 1u64..2_000), 1..20),
        ) {
            let cap = 777_777u64;
            let mut fast = FlowPool::new(cap);
            let mut naive = NaivePool { capacity: cap as f64, flows: BTreeMap::new(), last: SimTime::ZERO };
            let mut now = 0u64;
            for (i, (bytes, step_ms)) in adds.iter().enumerate() {
                let id = FlowId(i as u64);
                fast.add(id, *bytes);
                naive.flows.insert(id, *bytes as f64);
                now += step_ms;
                fast.advance_to(SimTime::from_ms(now));
                naive.advance_to(SimTime::from_ms(now));
                let a = fast.drain_completed();
                let b = naive.drain_completed();
                // Allow boundary disagreement: re-drain whichever lags
                // after nudging a hair forward.
                if a != b {
                    let grace = SimTime::from_ms(now) + SimDuration::from_nanos(1_000);
                    fast.advance_to(grace);
                    naive.advance_to(grace);
                    let mut a2 = a; a2.extend(fast.drain_completed());
                    let mut b2 = b; b2.extend(naive.drain_completed());
                    a2.sort_unstable();
                    b2.sort_unstable();
                    prop_assert_eq!(a2, b2);
                }
            }
            prop_assert_eq!(fast.active_flows(), naive.flows.len());
        }
    }
}
