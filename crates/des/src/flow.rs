//! Equal-share bandwidth resources.
//!
//! A [`FlowPool`] models one contended resource — a node's NIC or its SSD —
//! with processor-sharing semantics: `n` concurrent flows each progress at
//! `capacity / n` bytes per second. This is the standard fluid approximation
//! for TCP fair sharing on a single bottleneck and for mixed sequential I/O
//! on an SSD, and it is what makes the paper's contention effects emerge in
//! simulation: e.g. a recovering reducer pulling from 20 senders saturates
//! its inbound NIC, and heavy merge I/O on one disk slows co-located spills.
//!
//! The pool is pure state: the simulation driver calls [`FlowPool::advance_to`]
//! before any mutation, then re-asks [`FlowPool::next_completion`] and
//! (re)schedules a kernel event at that time.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Identifier for a flow within a pool; allocated by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
}

/// A shared-bandwidth resource with equal-share scheduling.
#[derive(Debug, Clone)]
pub struct FlowPool {
    capacity: f64, // bytes per second
    // Ordered map: `advance_to` accumulates float residue per flow into
    // `delivered`, and float addition is not associative — iteration order
    // is bitwise-observable, so it must not be hash order.
    flows: BTreeMap<FlowId, Flow>,
    last_advance: SimTime,
    /// Total bytes fully delivered by this pool (diagnostic/metrics).
    delivered: f64,
}

impl FlowPool {
    /// A pool with `capacity` bytes/second of total bandwidth.
    pub fn new(capacity_bytes_per_sec: u64) -> FlowPool {
        FlowPool {
            capacity: capacity_bytes_per_sec as f64,
            flows: BTreeMap::new(),
            last_advance: SimTime::ZERO,
            delivered: 0.0,
        }
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    pub fn total_delivered(&self) -> f64 {
        self.delivered
    }

    /// Per-flow rate right now (bytes/second).
    pub fn rate_per_flow(&self) -> f64 {
        if self.flows.is_empty() {
            self.capacity
        } else {
            self.capacity / self.flows.len() as f64
        }
    }

    /// Progress all flows to `now` at the current equal-share rate.
    ///
    /// Must be called (by the driver) before any add/remove/query whenever
    /// virtual time has moved. Calls with non-monotone `now` are ignored.
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_advance {
            return;
        }
        let dt = now.since(self.last_advance).as_secs_f64();
        self.last_advance = now;
        if self.flows.is_empty() {
            return;
        }
        let per_flow = self.capacity / self.flows.len() as f64 * dt;
        for f in self.flows.values_mut() {
            let used = per_flow.min(f.remaining);
            f.remaining -= used;
            self.delivered += used;
        }
    }

    /// Start a flow of `bytes`. The caller must have advanced the pool to
    /// the current time first. Returns the predicted next completion.
    pub fn add(&mut self, id: FlowId, bytes: u64) -> Option<(FlowId, SimTime)> {
        let prev = self.flows.insert(id, Flow { remaining: bytes as f64 });
        debug_assert!(prev.is_none(), "flow id {id:?} reused while active");
        self.next_completion()
    }

    /// Remove a flow (completed or aborted), returning its remaining bytes.
    pub fn remove(&mut self, id: FlowId) -> Option<u64> {
        self.flows.remove(&id).map(|f| f.remaining.ceil() as u64)
    }

    /// Flows that are (numerically) finished right now, in id order.
    pub fn drain_completed(&mut self) -> Vec<FlowId> {
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining < 1.0) // sub-byte residue counts as done
            .map(|(id, _)| *id)
            .collect();
        for id in &done {
            self.flows.remove(id);
        }
        done
    }

    /// Predicted time the *earliest* remaining flow completes, assuming the
    /// current flow set stays fixed. `None` when idle.
    pub fn next_completion(&self) -> Option<(FlowId, SimTime)> {
        if self.flows.is_empty() {
            return None;
        }
        let rate = self.rate_per_flow();
        // Deterministic winner selection: smallest remaining, then smallest id.
        let (id, f) = self
            .flows
            .iter()
            .min_by(|(ida, fa), (idb, fb)| {
                fa.remaining
                    .partial_cmp(&fb.remaining)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(ida.cmp(idb))
            })
            .expect("non-empty");
        // Predict from the fractional remainder directly, with a 1 ns floor
        // so the driver's wake event always advances virtual time (a zero
        // -duration prediction would livelock the event loop).
        let d = SimDuration::from_secs_f64(f.remaining / rate).max(SimDuration::from_nanos(1));
        Some((*id, self.last_advance + d))
    }

    /// Remaining bytes of one flow.
    pub fn remaining(&self, id: FlowId) -> Option<u64> {
        self.flows.get(&id).map(|f| f.remaining.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn single_flow_gets_full_capacity() {
        let mut p = FlowPool::new(1_000_000); // 1 MB/s
        p.add(FlowId(1), 500_000);
        let (_, when) = p.next_completion().unwrap();
        assert!((when.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_equally() {
        let mut p = FlowPool::new(1_000_000);
        p.add(FlowId(1), 1_000_000);
        p.add(FlowId(2), 1_000_000);
        assert_eq!(p.rate_per_flow(), 500_000.0);
        // After 1 s each has 500 KB left.
        p.advance_to(t(1000));
        assert_eq!(p.remaining(FlowId(1)).unwrap(), 500_000);
        assert_eq!(p.remaining(FlowId(2)).unwrap(), 500_000);
        // Second flow leaves; first finishes at full rate: 0.5 s more.
        p.remove(FlowId(2));
        let (id, when) = p.next_completion().unwrap();
        assert_eq!(id, FlowId(1));
        assert!((when.as_secs_f64() - 1.5).abs() < 1e-6);
    }

    #[test]
    fn completion_detection() {
        let mut p = FlowPool::new(100);
        p.add(FlowId(7), 100);
        p.advance_to(t(1000));
        let done = p.drain_completed();
        assert_eq!(done, vec![FlowId(7)]);
        assert_eq!(p.active_flows(), 0);
        assert!(p.next_completion().is_none());
    }

    #[test]
    fn advance_is_monotone_and_idempotent() {
        let mut p = FlowPool::new(1000);
        p.add(FlowId(1), 1000);
        p.advance_to(t(500));
        let r = p.remaining(FlowId(1)).unwrap();
        p.advance_to(t(500)); // same time: no change
        p.advance_to(t(100)); // going backwards: ignored
        assert_eq!(p.remaining(FlowId(1)).unwrap(), r);
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut p = FlowPool::new(1000);
        p.add(FlowId(1), 0);
        assert_eq!(p.drain_completed(), vec![FlowId(1)]);
    }

    proptest! {
        /// Conservation: however we interleave advances, the pool never
        /// delivers more than capacity * elapsed bytes in total.
        #[test]
        fn work_conservation(
            flows in proptest::collection::vec(1u64..10_000_000, 1..10),
            steps in proptest::collection::vec(1u64..5_000, 1..30),
        ) {
            let cap = 1_000_000u64;
            let mut p = FlowPool::new(cap);
            for (i, b) in flows.iter().enumerate() {
                p.add(FlowId(i as u64), *b);
            }
            let mut now = 0u64;
            for s in steps {
                now += s;
                p.advance_to(SimTime::from_ms(now));
                p.drain_completed();
            }
            let elapsed = now as f64 / 1000.0;
            prop_assert!(p.total_delivered() <= cap as f64 * elapsed + 1.0);
            let total_in: f64 = flows.iter().map(|&b| b as f64).sum();
            prop_assert!(p.total_delivered() <= total_in + 1.0);
        }

        /// The predicted completion instant is exact: advancing to it makes
        /// that flow complete (and not earlier).
        #[test]
        fn prediction_is_exact(flows in proptest::collection::vec(1u64..1_000_000, 1..8)) {
            let mut p = FlowPool::new(123_456);
            for (i, b) in flows.iter().enumerate() {
                p.add(FlowId(i as u64), *b);
            }
            let (id, when) = p.next_completion().unwrap();
            // Just before: not yet complete (allow 1ms slack for rounding).
            if when.as_millis() > 2 {
                p.clone().advance_to(SimTime::from_ms(when.as_millis() - 2));
                let mut early = p.clone();
                early.advance_to(SimTime::from_ms(when.as_millis().saturating_sub(2)));
                prop_assert!(!early.drain_completed().contains(&id) || flows.len() > 1);
            }
            p.advance_to(when + crate::time::SimDuration::from_nanos(1));
            prop_assert!(p.drain_completed().contains(&id));
        }
    }
}
