//! Discrete-event simulation kernel.
//!
//! A deliberately small, deterministic DES core used by `alm-sim` to model
//! the paper's 21-node testbed:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time.
//! * [`EventQueue`] — a cancellable priority queue of typed events with
//!   deterministic FIFO tie-breaking for simultaneous events. The *driver*
//!   owns the loop (`while let Some((t, e)) = q.pop() { model.handle(...) }`)
//!   so model state never needs to live inside closures.
//! * [`FlowPool`] — an equal-share (processor-sharing) bandwidth resource
//!   used to model NICs and disks: `n` concurrent flows each progress at
//!   `capacity / n`, and the pool predicts the next flow completion so the
//!   driver can schedule a kernel event for it.
//! * [`rng`] — deterministic per-component random streams derived from a
//!   single experiment seed.

#![forbid(unsafe_code)]

pub mod flow;
pub mod queue;
pub mod rng;
pub mod time;

pub use flow::{FlowId, FlowPool};
pub use queue::{EventQueue, EventToken};
pub use time::{SimDuration, SimTime};
