//! Cancellable, deterministic event queue.
//!
//! Events are arbitrary payloads `E`. Scheduling returns an [`EventToken`]
//! that can later cancel the event (lazily: cancelled entries are skipped at
//! pop time). Events at the same instant pop in scheduling order, which
//! makes whole simulations reproducible bit-for-bit.
//!
//! Cancellation leaves a dead entry in the heap; workloads that cancel
//! heavily (the warehouse engine cancels every task a crashed node was
//! running, and every SFM suspension) would otherwise grow the heap far
//! beyond the live event count. When dead entries outnumber live ones
//! (past a small floor) the heap is rebuilt from the live entries — an
//! O(live) operation amortised against the cancellations that earned it,
//! and invisible to event order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::time::{SimDuration, SimTime};

/// Handle for a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

#[derive(PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earlier time first; FIFO among equals.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A virtual-time priority queue of events of type `E`.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry>>,
    // Lookup-only by sequence number (insert/remove/contains): the map is
    // never iterated, so hash order cannot reach the event schedule. D1
    // (alm-lint unordered-iter) will flag any future iteration added here.
    payloads: HashMap<u64, E>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    /// Dead entries still sitting in `heap` (cancelled, not yet skipped).
    cancelled: u64,
}

/// Compaction floor: below this many dead entries a rebuild isn't worth
/// the traversal, whatever the live count.
const COMPACT_MIN_DEAD: u64 = 64;

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            payloads: HashMap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            cancelled: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events popped so far (diagnostic).
    pub fn popped_count(&self) -> u64 {
        self.popped
    }

    /// Number of live (scheduled, not cancelled, not popped) events.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Schedule `event` at absolute time `t`. Scheduling in the past (before
    /// `now`) is clamped to `now`: the event fires immediately-next. This
    /// matches how hardware models hand the kernel "already due" deadlines
    /// after floating-point rounding.
    pub fn schedule_at(&mut self, t: SimTime, event: E) -> EventToken {
        let t = t.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time: t, seq }));
        self.payloads.insert(seq, event);
        EventToken(seq)
    }

    /// Schedule `event` after a delay from now.
    pub fn schedule_after(&mut self, d: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + d, event)
    }

    /// Cancel a scheduled event. Returns the payload if the event was still
    /// pending, `None` if it already fired or was already cancelled.
    pub fn cancel(&mut self, token: EventToken) -> Option<E> {
        let payload = self.payloads.remove(&token.0);
        if payload.is_some() {
            self.cancelled += 1;
            self.maybe_compact();
        }
        payload
    }

    /// Heap entries, live and dead (diagnostic; compaction keeps this
    /// within 2x of `len()` once past the compaction floor).
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Whether a token is still pending.
    pub fn is_pending(&self, token: EventToken) -> bool {
        self.payloads.contains_key(&token.0)
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pop the next event, advancing virtual time to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let Reverse(entry) = self.heap.pop()?;
        let payload =
            self.payloads.remove(&entry.seq).expect("skip_cancelled guarantees a live payload at the top");
        debug_assert!(entry.time >= self.now, "virtual time must be monotone");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, payload))
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(top)) = self.heap.peek() {
            if self.payloads.contains_key(&top.seq) {
                break;
            }
            self.heap.pop();
            self.cancelled = self.cancelled.saturating_sub(1);
        }
    }

    /// Rebuild the heap from live entries once dead ones dominate. Entry
    /// order is a pure function of `(time, seq)`, so a rebuild can never
    /// change what pops next.
    fn maybe_compact(&mut self) {
        if self.cancelled < COMPACT_MIN_DEAD || self.cancelled <= self.payloads.len() as u64 {
            return;
        }
        let live: Vec<Reverse<Entry>> = std::mem::take(&mut self.heap)
            .into_iter()
            .filter(|Reverse(e)| self.payloads.contains_key(&e.seq))
            .collect();
        self.heap = BinaryHeap::from(live);
        self.cancelled = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order_fifo_on_ties() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(10), "b-first-at-10");
        q.schedule_at(SimTime::from_ms(5), "a");
        q.schedule_at(SimTime::from_ms(10), "c-second-at-10");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b-first-at-10");
        assert_eq!(q.pop().unwrap().1, "c-second-at-10");
        assert!(q.pop().is_none());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(7), ());
        q.schedule_after(SimDuration::from_ms(3), ()); // at t=3
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(3));
        q.pop();
        assert_eq!(q.now(), SimTime::from_ms(7));
    }

    #[test]
    fn cancellation_removes_event() {
        let mut q = EventQueue::new();
        let t1 = q.schedule_at(SimTime::from_ms(1), 1);
        q.schedule_at(SimTime::from_ms(2), 2);
        assert!(q.is_pending(t1));
        assert_eq!(q.cancel(t1), Some(1));
        assert!(!q.is_pending(t1));
        assert_eq!(q.cancel(t1), None, "double cancel is a no-op");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let t = q.schedule_at(SimTime::from_ms(1), 1);
        q.schedule_at(SimTime::from_ms(9), 9);
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(9)));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ms(100), "late");
        q.pop();
        q.schedule_at(SimTime::from_ms(1), "past");
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, "past");
        assert_eq!(t, SimTime::from_ms(100), "clamped to now");
    }

    #[test]
    fn compaction_bounds_heap_growth() {
        let mut q = EventQueue::new();
        // Schedule 10k, cancel all but 10: without compaction the heap
        // would keep ~10k entries until they surface.
        let tokens: Vec<_> = (0..10_000u64).map(|ms| q.schedule_at(SimTime::from_ms(ms), ms)).collect();
        for t in tokens.iter().skip(10) {
            q.cancel(*t);
        }
        assert_eq!(q.len(), 10);
        assert!(
            q.heap_len() <= 2 * q.len() + COMPACT_MIN_DEAD as usize,
            "heap={} live={}",
            q.heap_len(),
            q.len()
        );
        // The survivors still pop, in order.
        let survivors: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(survivors, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn compaction_preserves_order_and_fifo_ties() {
        // Same schedule with and without interleaved cancel pressure on
        // unrelated events: the survivor sequence must be identical.
        let run = |noise: bool| -> Vec<(u64, u64)> {
            let mut q = EventQueue::new();
            for i in 0..500u64 {
                q.schedule_at(SimTime::from_ms(i % 7), i);
                if noise {
                    let t = q.schedule_at(SimTime::from_ms(3), 1_000_000 + i);
                    q.cancel(t);
                }
            }
            std::iter::from_fn(|| q.pop().map(|(t, e)| (t.as_millis(), e))).collect()
        };
        assert_eq!(run(false), run(true));
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, with
        /// FIFO order among equal timestamps, regardless of insertion order
        /// and interleaved cancellations.
        #[test]
        fn time_monotonicity_under_random_ops(ops in proptest::collection::vec((0u64..1000, proptest::bool::ANY), 1..200)) {
            let mut q = EventQueue::new();
            let mut tokens = Vec::new();
            for (ms, cancel_one) in ops {
                tokens.push(q.schedule_at(SimTime::from_ms(ms), ms));
                if cancel_one && tokens.len() > 2 {
                    let victim = tokens[tokens.len() / 2];
                    q.cancel(victim);
                }
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                prop_assert_eq!(q.now(), t);
            }
            prop_assert!(q.is_empty());
        }
    }
}
