//! Virtual time.
//!
//! Nanosecond resolution in a `u64` gives ~584 years of simulated range —
//! far beyond any experiment — while keeping arithmetic exact for the
//! bandwidth/latency computations in the cost models.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time, measured from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    pub fn from_ms(ms: u64) -> SimTime {
        SimTime(ms.saturating_mul(1_000_000))
    }

    pub fn from_secs_f64(s: f64) -> SimTime {
        SimTime(secs_to_nanos(s))
    }

    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant; saturates to zero if `earlier`
    /// is actually later.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    pub fn from_ms(ms: u64) -> SimDuration {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration(secs_to_nanos(s))
    }

    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    pub fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to move `bytes` at `bytes_per_sec`; returns zero-duration for a
    /// zero-byte transfer and `MAX`-like saturation for zero bandwidth.
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        if bytes_per_sec <= 0.0 {
            return SimDuration(u64::MAX);
        }
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    pub fn saturating_mul_f64(&self, k: f64) -> SimDuration {
        SimDuration(secs_to_nanos(self.as_secs_f64() * k))
    }
}

fn secs_to_nanos(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        if s > 0.0 {
            u64::MAX // +inf
        } else {
            0
        }
    } else {
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            u64::MAX
        } else {
            ns.round() as u64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(o.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, o: SimDuration) {
        self.0 = self.0.saturating_add(o.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, o: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(o.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ms(1500).as_millis(), 1500);
        assert_eq!(SimTime::from_ms(1500).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(100) + SimDuration::from_ms(50);
        assert_eq!(t.as_millis(), 150);
        assert_eq!(t.since(SimTime::from_ms(100)).as_millis(), 50);
        // since() saturates instead of underflowing.
        assert_eq!(SimTime::from_ms(10).since(SimTime::from_ms(99)).as_nanos(), 0);
    }

    #[test]
    fn transfer_durations() {
        // 1 MB at 1 MB/s = 1 s.
        let d = SimDuration::for_transfer(1_000_000, 1_000_000.0);
        assert!((d.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(SimDuration::for_transfer(0, 1.0), SimDuration::ZERO);
        // Zero bandwidth never completes (saturated).
        assert_eq!(SimDuration::for_transfer(1, 0.0).as_nanos(), u64::MAX);
    }

    #[test]
    fn saturation_at_extremes() {
        let huge = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(huge, SimTime::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY).as_nanos(), u64::MAX);
        assert_eq!(SimDuration::from_secs_f64(-5.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN).as_nanos(), 0);
    }

    proptest! {
        #[test]
        fn add_then_since_is_identity(base_ms in 0u64..10_000_000, d_ms in 0u64..10_000_000) {
            let t0 = SimTime::from_ms(base_ms);
            let t1 = t0 + SimDuration::from_ms(d_ms);
            prop_assert_eq!(t1.since(t0).as_millis(), d_ms);
        }

        #[test]
        fn ordering_consistent_with_nanos(a in proptest::num::u64::ANY, b in proptest::num::u64::ANY) {
            let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
            prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        }
    }
}
