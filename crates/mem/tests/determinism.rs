//! Chain determinism: an in-memory iterative chain is a pure function of
//! (workload, spec, crash plan). Two guarantees are property-tested here:
//!
//! 1. **Run-to-run**: the same chain run twice on the sim engine yields
//!    byte-identical [`ChainReport`]s (serialized comparison — wall time in
//!    the sim is virtual, so even `job_secs` must match exactly).
//! 2. **Capacity invariance**: the resident-store budget changes *cost*
//!    (hits/evictions), never *results* — the final state bytes and the
//!    convergence point are identical across capacities.
//!
//! Plus a fixed-seed cross-engine check: a mid-chain node crash recovers
//! identically on repeat runs in both engines and both [`MemMode`]s, and
//! both engines agree on the final state. Runtime wall time and cache
//! traffic are thread-timing dependent, so the runtime engine is compared
//! by recovery protocol (iterations completed/lost, durable restores,
//! replay runs), not by durations.

use proptest::prelude::*;
use std::sync::Arc;

use alm_mem::{run_chain, ChainReport, CrashPlan, IterativeSpec, RuntimeChainEngine, SimChainEngine};
use alm_types::{MemConfig, MemMode};
use alm_workloads::{Pagerank, WorkloadKind};

fn spec(seed: u64, capacity_bytes: u64, mode: MemMode, iterations: u32) -> IterativeSpec {
    let mem = MemConfig {
        mem_resident_capacity_bytes: capacity_bytes,
        mem_mode: mode,
        mem_pin_hot_partitions: true,
        mem_max_chain_iterations: iterations,
        // Tight threshold: the chain always runs its full iteration budget,
        // so every case exercises the same amount of work.
        mem_convergence_epsilon_micro: 1,
    };
    IterativeSpec { workload: Arc::new(Pagerank::small()), num_reduces: 3, seed, mem }
}

fn sim_chain(s: &IterativeSpec, crash: Option<CrashPlan>) -> ChainReport {
    let mut engine = SimChainEngine::paper(WorkloadKind::Pagerank, s);
    run_chain(&mut engine, s, crash)
}

/// The recovery protocol of a report — the part that must be deterministic
/// even on the threaded runtime engine.
fn protocol(r: &ChainReport) -> String {
    let runs: Vec<(u32, bool, bool)> = r.runs.iter().map(|o| (o.iteration, o.replay, o.succeeded)).collect();
    format!(
        "completed={} lost={} restores={} replays={} runs={runs:?}",
        r.iterations_completed,
        r.iterations_lost,
        r.durable_restores,
        r.replay_runs(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Same spec, same crash, two independent sim chains: identical bytes.
    #[test]
    fn sim_chain_is_byte_identical_across_runs(
        seed in 0u64..10_000,
        crash_iter in 1u32..4,
        mode_pick in 0u8..2,
    ) {
        let mode = if mode_pick == 0 { MemMode::LineageReplay } else { MemMode::AlgFcm };
        let s = spec(seed, 256 * 1024, mode, 4);
        let crash = Some(CrashPlan { node: 1, iteration: crash_iter });
        let a = serde_json::to_string(&sim_chain(&s, crash)).expect("report serialises");
        let b = serde_json::to_string(&sim_chain(&s, crash)).expect("report serialises");
        prop_assert_eq!(a, b, "chain divergence under {} crash@{}", mode, crash_iter);
    }

    /// The resident budget never changes what a chain computes: a store
    /// large enough to hold everything and one that thrashes produce the
    /// same final state at the same convergence point.
    #[test]
    fn final_state_is_capacity_invariant(
        seed in 0u64..10_000,
        small_capacity in 1_024u64..8_192,
    ) {
        let roomy = sim_chain(&spec(seed, 64 * 1024 * 1024, MemMode::AlgFcm, 3), None);
        let tight = sim_chain(&spec(seed, small_capacity, MemMode::AlgFcm, 3), None);
        prop_assert_eq!(&roomy.final_state, &tight.final_state);
        prop_assert_eq!(roomy.iterations_completed, tight.iterations_completed);
        prop_assert_eq!(roomy.converged_at, tight.converged_at);
    }
}

/// A mid-chain node crash recovers identically on repeat runs — in both
/// engines, under both failure semantics — and the engines agree on the
/// final state bytes.
#[test]
fn mid_chain_crash_recovers_identically_in_both_engines() {
    let crash = Some(CrashPlan { node: 1, iteration: 2 });
    for mode in [MemMode::LineageReplay, MemMode::AlgFcm] {
        let s = spec(42, 256 * 1024, mode, 4);

        let sim_a = sim_chain(&s, crash);
        let sim_b = sim_chain(&s, crash);
        assert_eq!(
            serde_json::to_string(&sim_a).expect("report serialises"),
            serde_json::to_string(&sim_b).expect("report serialises"),
            "sim chain must be byte-identical under {mode}"
        );

        let run_once = || {
            let mut engine = RuntimeChainEngine::new(5, &s);
            run_chain(&mut engine, &s, crash)
        };
        let rt_a = run_once();
        let rt_b = run_once();
        assert_eq!(protocol(&rt_a), protocol(&rt_b), "runtime recovery protocol under {mode}");
        assert_eq!(rt_a.final_state, rt_b.final_state, "runtime final state under {mode}");

        assert_eq!(sim_a.final_state, rt_a.final_state, "engines disagree under {mode}");
        assert_eq!(sim_a.iterations_lost, rt_a.iterations_lost, "lost iterations under {mode}");
        match mode {
            MemMode::LineageReplay => assert!(sim_a.iterations_lost > 0, "crash must cost replay"),
            MemMode::AlgFcm => assert_eq!(sim_a.iterations_lost, 0, "ALG+FCM must lose nothing"),
        }
    }
}
