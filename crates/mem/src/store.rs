//! `ResidentStore` — the per-node, capacity-bounded RAM store behind the
//! in-memory iterative mode.
//!
//! Entries are MOF partition bytes (admitted by the runtime fetch path via
//! [`alm_runtime::ResidentCache`]) and chain state stripes (put by the
//! chain layer in `crate::chain`). Every entry is CRC-framed with the
//! shuffle wire format ([`alm_shuffle::frame`]) at admission and verified
//! at lookup, so a resident hit carries the same integrity guarantee as a
//! disk read — and, unlike the disk path, is immune to at-rest rot.
//!
//! Capacity is accounted **per node**: each logical node may hold at most
//! `capacity_per_node` bytes of framed entries, mirroring a real per-worker
//! RAM budget. Admission under pressure evicts the least-recently-touched
//! *unpinned* entry on that node; pinned entries (the chain's hot state
//! stripes) are never evicted, only invalidated by a node crash. Eviction
//! is deterministic: a single monotonic touch tick orders entries totally,
//! so identical admit/lookup sequences always evict identically.

use alm_runtime::ResidentCache;
use alm_shuffle::frame::{frame, unframe};
use alm_types::{JobId, NodeId};
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Counters the store accumulates over its lifetime. `bytes_used` is the
/// current framed footprint across all nodes; everything else is monotonic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups served from RAM (frame verified).
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries accepted (initial insert or replacement).
    pub admitted: u64,
    /// Offers rejected: entry larger than a node's budget, or the node is
    /// full of pinned entries.
    pub declined: u64,
    /// Entries displaced by LRU pressure.
    pub evicted: u64,
    /// Entries dropped by node-crash invalidation.
    pub invalidated: u64,
    /// Current resident footprint (framed bytes, all nodes).
    pub bytes_used: u64,
}

#[derive(Debug)]
struct Entry {
    node: u32,
    framed: Vec<u8>,
    tick: u64,
    pinned: bool,
}

#[derive(Default)]
struct Inner {
    /// (job, map_index, partition) -> entry. BTreeMap keeps scans ordered,
    /// which together with unique ticks makes eviction deterministic.
    entries: BTreeMap<(u32, u32, u32), Entry>,
    tick: u64,
    stats: StoreStats,
}

impl Inner {
    fn used_on(&self, node: u32) -> u64 {
        self.entries.values().filter(|e| e.node == node).map(|e| e.framed.len() as u64).sum()
    }

    /// Least-recently-touched unpinned entry on `node`, if any.
    fn lru_victim(&self, node: u32) -> Option<(u32, u32, u32)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.node == node && !e.pinned)
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
    }
}

/// Per-node capacity-bounded resident store. Shared between the chain layer
/// and (for the threaded engine) the runtime's shuffle fetch path.
pub struct ResidentStore {
    capacity_per_node: u64,
    inner: Mutex<Inner>,
}

impl ResidentStore {
    pub fn new(capacity_per_node_bytes: u64) -> ResidentStore {
        ResidentStore { capacity_per_node: capacity_per_node_bytes, inner: Mutex::new(Inner::default()) }
    }

    /// Convenience for the engine adapters: an `Arc`'d store sized from the
    /// chain config.
    pub fn shared(capacity_per_node_bytes: u64) -> Arc<ResidentStore> {
        Arc::new(ResidentStore::new(capacity_per_node_bytes))
    }

    pub fn capacity_per_node(&self) -> u64 {
        self.capacity_per_node
    }

    /// Offer `payload` for residency on `node`. Returns whether it was
    /// admitted; a decline leaves the store unchanged apart from any LRU
    /// evictions already performed while making room.
    pub fn put(
        &self,
        node: NodeId,
        job: JobId,
        map_index: u32,
        partition: u32,
        payload: &[u8],
        pinned: bool,
    ) -> bool {
        let framed = frame(payload);
        let size = framed.len() as u64;
        let mut inner = self.inner.lock();
        if size > self.capacity_per_node {
            inner.stats.declined += 1;
            return false;
        }
        // Replacing an existing entry frees its footprint first.
        inner.entries.remove(&(job.0, map_index, partition));
        while inner.used_on(node.0) + size > self.capacity_per_node {
            match inner.lru_victim(node.0) {
                Some(victim) => {
                    inner.entries.remove(&victim);
                    inner.stats.evicted += 1;
                }
                None => {
                    // Everything resident on this node is pinned.
                    inner.stats.declined += 1;
                    return false;
                }
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert((job.0, map_index, partition), Entry { node: node.0, framed, tick, pinned });
        inner.stats.admitted += 1;
        true
    }

    /// The resident payload and its home node, if cached and its frame
    /// still verifies. Counts a hit/miss and refreshes the LRU tick.
    pub fn get(&self, job: JobId, map_index: u32, partition: u32) -> Option<(NodeId, Bytes)> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let key = (job.0, map_index, partition);
        let Some(entry) = inner.entries.get_mut(&key) else {
            inner.stats.misses += 1;
            return None;
        };
        entry.tick = tick;
        let node = NodeId(entry.node);
        match unframe(&Bytes::from(entry.framed.clone())) {
            Ok(payload) => {
                inner.stats.hits += 1;
                Some((node, payload))
            }
            Err(_) => {
                // RAM should never rot; if it somehow did, the frame check
                // turns the entry into a miss rather than serving bad bytes.
                inner.entries.remove(&key);
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Clear every pin (the chain unpins generation g's stripes before
    /// pinning generation g+1's).
    pub fn unpin_all(&self) {
        for entry in self.inner.lock().entries.values_mut() {
            entry.pinned = false;
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        let mut stats = inner.stats.clone();
        stats.bytes_used = inner.entries.values().map(|e| e.framed.len() as u64).sum();
        stats
    }
}

impl ResidentCache for ResidentStore {
    fn lookup(&self, job: JobId, map_index: u32, partition: u32) -> Option<(NodeId, Bytes)> {
        self.get(job, map_index, partition)
    }

    fn admit(&self, node: NodeId, job: JobId, map_index: u32, partition: u32, data: &Bytes) {
        // MOF partitions admitted off the fetch path are reclaimable cache,
        // never pinned — only the chain pins (its hot state stripes).
        self.put(node, job, map_index, partition, data, false);
    }

    fn invalidate_node(&self, node: NodeId) -> u64 {
        let mut inner = self.inner.lock();
        let before = inner.entries.len();
        inner.entries.retain(|_, e| e.node != node.0);
        let dropped = (before - inner.entries.len()) as u64;
        inner.stats.invalidated += dropped;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_shuffle::frame::FRAME_HEADER_LEN;

    fn job(n: u32) -> JobId {
        JobId(n)
    }

    #[test]
    fn round_trips_with_crc_frame_overhead() {
        let store = ResidentStore::new(1024);
        assert!(store.put(NodeId(0), job(1), 2, 3, b"payload", false));
        let (node, data) = store.get(job(1), 2, 3).expect("resident");
        assert_eq!((node, data.as_ref()), (NodeId(0), b"payload".as_slice()));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.admitted), (1, 0, 1));
        assert_eq!(stats.bytes_used, (FRAME_HEADER_LEN + b"payload".len()) as u64);
        assert!(store.get(job(1), 2, 4).is_none());
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn capacity_is_per_node_and_eviction_is_lru() {
        // Each framed entry is 8 + 12 = 20 bytes; budget fits two per node.
        let store = ResidentStore::new(40);
        assert!(store.put(NodeId(0), job(0), 0, 0, b"aaaaaaaaaaaa", false));
        assert!(store.put(NodeId(0), job(0), 1, 0, b"bbbbbbbbbbbb", false));
        // A different node has its own budget.
        assert!(store.put(NodeId(1), job(0), 2, 0, b"cccccccccccc", false));
        // Touch map 0 so map 1 becomes the LRU victim on node 0.
        assert!(store.get(job(0), 0, 0).is_some());
        assert!(store.put(NodeId(0), job(0), 3, 0, b"dddddddddddd", false));
        assert!(store.get(job(0), 0, 0).is_some(), "recently touched survives");
        assert!(store.get(job(0), 1, 0).is_none(), "LRU entry evicted");
        assert!(store.get(job(0), 2, 0).is_some(), "other node untouched");
        assert_eq!(store.stats().evicted, 1);
    }

    #[test]
    fn pinned_entries_never_evict_and_oversize_declines() {
        let store = ResidentStore::new(40);
        assert!(store.put(NodeId(0), job(0), 0, 0, b"aaaaaaaaaaaa", true));
        assert!(store.put(NodeId(0), job(0), 1, 0, b"bbbbbbbbbbbb", true));
        // Node full of pins: the offer is declined, pins survive.
        assert!(!store.put(NodeId(0), job(0), 2, 0, b"cccccccccccc", false));
        assert!(store.get(job(0), 0, 0).is_some());
        assert!(store.get(job(0), 1, 0).is_some());
        // An entry larger than the whole node budget is declined outright.
        assert!(!store.put(NodeId(1), job(0), 0, 1, &[0u8; 64], false));
        assert_eq!(store.stats().declined, 2);
        // After unpinning, pressure evicts normally.
        store.unpin_all();
        assert!(store.put(NodeId(0), job(0), 2, 0, b"cccccccccccc", false));
        assert_eq!(store.stats().evicted, 1);
    }

    #[test]
    fn node_crash_invalidates_only_that_node() {
        let store = ResidentStore::new(1024);
        store.put(NodeId(0), job(0), 0, 0, b"a", true);
        store.put(NodeId(0), job(0), 1, 0, b"b", false);
        store.put(NodeId(2), job(0), 2, 0, b"c", true);
        assert_eq!(store.invalidate_node(NodeId(0)), 2, "pins do not survive a crash");
        assert_eq!(store.len(), 1);
        assert!(store.get(job(0), 2, 0).is_some());
        assert_eq!(store.stats().invalidated, 2);
    }

    #[test]
    fn replacement_frees_old_footprint() {
        let store = ResidentStore::new(40);
        assert!(store.put(NodeId(0), job(0), 0, 0, b"aaaaaaaaaaaa", false));
        assert!(store.put(NodeId(0), job(0), 1, 0, b"bbbbbbbbbbbb", false));
        // Re-putting an existing key must not trigger eviction of the other.
        assert!(store.put(NodeId(0), job(0), 0, 0, b"AAAAAAAAAAAA", false));
        assert_eq!(store.stats().evicted, 0);
        let (_, data) = store.get(job(0), 0, 0).expect("replaced");
        assert_eq!(data.as_ref(), b"AAAAAAAAAAAA");
        assert!(store.get(job(0), 1, 0).is_some());
    }
}
