//! Chain engine over the threaded mini-YARN runtime — real bytes end to
//! end.
//!
//! Unlike the sim adapter, one [`MiniCluster`] persists across the whole
//! chain: MOFs admitted into the [`ResidentStore`] by iteration *k*'s
//! shuffle survive into iteration *k+1*, crashed nodes stay dead, and the
//! store is installed into the cluster so `try_fetch` consults it before
//! any disk path and `crash_node` invalidates it. Each iteration runs as a
//! real job (fresh sequential [`JobId`] so MOF registrations and DFS
//! output paths never collide, including lineage replays); the next state
//! is folded from the committed reduce outputs read back off the DFS.
//!
//! Durability under [`MemMode::AlgFcm`] is a real DFS write per
//! generation — the ALG checkpoint of the chain state — while
//! [`MemMode::LineageReplay`] persists nothing and must re-execute on
//! loss.

use crate::chain::{ChainEngine, EngineRun, IterativeSpec};
use crate::store::ResidentStore;
use alm_runtime::am::run_job;
use alm_runtime::{FaultPlan, JobDef, MiniCluster, ResidentCache};
use alm_types::{AlmConfig, JobId, MemMode, NodeId, ReplicationLevel};
use alm_workloads::{Record, Workload};
use bytes::Bytes;
use std::sync::Arc;

/// Threaded chain engine: one persistent mini-cluster, real shuffle bytes,
/// resident MOF cache wired into the fetch path.
pub struct RuntimeChainEngine {
    cluster: Arc<MiniCluster>,
    num_reduces: u32,
    seed: u64,
    mode: MemMode,
    store: Arc<ResidentStore>,
    /// Next engine job id; every run (including replays) gets a fresh one.
    next_job: u32,
}

impl RuntimeChainEngine {
    pub fn new(nodes: u32, spec: &IterativeSpec) -> RuntimeChainEngine {
        let cluster = Arc::new(MiniCluster::for_tests(nodes));
        let store = ResidentStore::shared(spec.mem.mem_resident_capacity_bytes);
        cluster.set_resident(Some(store.clone() as Arc<dyn ResidentCache>));
        RuntimeChainEngine {
            cluster,
            num_reduces: spec.num_reduces,
            seed: spec.seed,
            mode: spec.mem.mem_mode,
            store,
            next_job: 0,
        }
    }

    pub fn cluster(&self) -> &Arc<MiniCluster> {
        &self.cluster
    }

    /// DFS path of the chain's ALG state checkpoint for `generation`.
    fn checkpoint_path(generation: u32) -> String {
        format!("/memchain/state-{generation:05}")
    }

    /// Read a job's committed reduce outputs back off the DFS.
    fn committed_outputs(&self, job: &JobDef) -> Vec<Record> {
        let mut out = Vec::new();
        for r in 0..job.num_reduces {
            let Ok(data) = self.cluster.dfs.read(&job.output_path(r)) else { continue };
            let mut off = 0usize;
            while let Ok(Some((key, value, next))) = alm_shuffle::codec::decode_at(&data, off) {
                out.push(Record::new(key.to_vec(), value.to_vec()));
                off = next;
            }
        }
        out
    }
}

impl ChainEngine for RuntimeChainEngine {
    fn run_iteration(
        &mut self,
        iteration: u32,
        workload: &Arc<dyn Workload>,
        num_maps: u32,
        crash: Option<u32>,
    ) -> EngineRun {
        let id = JobId(self.next_job);
        self.next_job += 1;
        let mut alm = AlmConfig::with_mode(self.mode.recovery_mode());
        alm.logging_interval_ms = 1;
        // Input seed depends on the chain iteration, not the job id, so a
        // lineage replay of iteration i regenerates identical input.
        let seed = self.seed ^ u64::from(iteration);
        let job = JobDef::new(id, workload.clone(), num_maps, self.num_reduces, seed, alm);
        let plan = match crash {
            Some(node) => FaultPlan::crash_node_at_reduce_progress(NodeId(node), 0, 0.5),
            None => FaultPlan::none(),
        };
        let hits_before = self.store.stats().hits;
        let report = run_job(self.cluster.clone(), job.clone(), plan);
        let outputs = self.committed_outputs(&job);
        EngineRun {
            job_secs: report.job_time_ms as f64 / 1000.0,
            failures: report.failures.len() as u32,
            resident_hits: self.store.stats().hits - hits_before,
            succeeded: report.succeeded,
            outputs,
        }
    }

    fn mark_dead(&mut self, node: u32) {
        // The fault plan already crashed the node mid-job (which wiped its
        // resident entries via the cluster hook); this only covers
        // chain-level kills outside a run.
        let id = NodeId(node);
        if self.cluster.node(id).is_alive() {
            self.cluster.crash_node(id);
        }
    }

    fn alive_nodes(&self) -> Vec<u32> {
        self.cluster.alive_nodes().into_iter().map(|n| n.0).collect()
    }

    fn store(&self) -> &Arc<ResidentStore> {
        &self.store
    }

    fn save_durable(&mut self, generation: u32, bytes: &[u8]) {
        match self.mode {
            // M3R-style lineage mode: RAM is the only copy.
            MemMode::LineageReplay => {}
            // ALG+FCM: checkpoint the generation to the DFS at the same
            // replication level ALG uses for reduce-side logs.
            MemMode::AlgFcm => {
                let writer = self.alive_nodes().first().map_or(NodeId(0), |&n| NodeId(n));
                let _ = self.cluster.dfs.write(
                    &Self::checkpoint_path(generation),
                    Bytes::from(bytes.to_vec()),
                    writer,
                    ReplicationLevel::Rack,
                );
            }
        }
    }

    fn load_durable(&self, generation: u32) -> Option<Vec<u8>> {
        self.cluster.dfs.read(&Self::checkpoint_path(generation)).ok().map(|b| b.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{run_chain, CrashPlan};
    use alm_types::MemConfig;
    use alm_workloads::reference::{canonicalize, reference_output};
    use alm_workloads::Pagerank;

    fn spec(mode: MemMode) -> IterativeSpec {
        let mut mem = MemConfig::scaled_for_tests();
        mem.mem_mode = mode;
        mem.mem_max_chain_iterations = 3;
        mem.mem_convergence_epsilon_micro = 1;
        IterativeSpec { workload: Arc::new(Pagerank::small()), num_reduces: 3, seed: 42, mem }
    }

    #[test]
    fn runtime_chain_matches_reference_evaluation() {
        let s = spec(MemMode::AlgFcm);
        let mut engine = RuntimeChainEngine::new(5, &s);
        let report = run_chain(&mut engine, &s, None);
        assert_eq!(report.iterations_completed, 3);
        assert!(report.runs.iter().all(|r| r.succeeded));
        // Evolve the same chain through the reference executor.
        let mut state = s.workload.initial_state();
        for i in 0..3u32 {
            let w = s.workload.instantiate(&state);
            let parts = reference_output(w.as_ref(), s.workload.num_maps(), s.num_reduces, 42 ^ u64::from(i));
            state = s.workload.fold(&state, &canonicalize(&parts));
        }
        assert_eq!(report.final_state, state, "real bytes agree with the reference executor");
    }

    #[test]
    fn shuffle_serves_resident_state_hits() {
        let s = spec(MemMode::AlgFcm);
        let mut engine = RuntimeChainEngine::new(5, &s);
        let report = run_chain(&mut engine, &s, None);
        // The chain itself hits the store when reloading state stripes.
        assert!(report.store.hits > 0);
        assert_eq!(report.store.invalidated, 0, "no crash, no invalidation");
    }

    #[test]
    fn mid_chain_crash_recovers_per_mode() {
        let crash = Some(CrashPlan { node: 1, iteration: 1 });
        let s_lineage = spec(MemMode::LineageReplay);
        let s_alg = spec(MemMode::AlgFcm);
        let mut e_lineage = RuntimeChainEngine::new(5, &s_lineage);
        let mut e_alg = RuntimeChainEngine::new(5, &s_alg);
        let r_lineage = run_chain(&mut e_lineage, &s_lineage, crash);
        let r_alg = run_chain(&mut e_alg, &s_alg, crash);
        assert!(r_lineage.runs.iter().all(|r| r.succeeded));
        assert!(r_alg.runs.iter().all(|r| r.succeeded));
        assert_eq!(r_lineage.final_state, r_alg.final_state);
        assert!(
            r_lineage.iterations_lost > r_alg.iterations_lost,
            "lineage {} vs alg+fcm {}",
            r_lineage.iterations_lost,
            r_alg.iterations_lost
        );
        assert!(r_alg.durable_restores >= 1);
        assert!(r_lineage.store.invalidated > 0, "crash wiped resident entries");
    }
}
