//! `alm-mem`: the in-memory iterative engine mode.
//!
//! MapReduce-style fault tolerance assumes every job starts from durable
//! input — but iterative analytics (PageRank, k-means) re-enter the engine
//! dozens of times, and in-memory variants (M3R-style) keep intermediate
//! state resident in RAM between jobs for speed. That residency changes
//! the failure-amplification math the paper studies: losing one node no
//! longer loses one task's worth of work, it loses every iteration whose
//! only copy lived in that node's RAM.
//!
//! This crate builds the chain layer that measures — and, with ALM,
//! cracks down on — that amplification:
//!
//! * [`ResidentStore`] — per-node, capacity-bounded RAM store of
//!   CRC-framed MOF partitions and chain state stripes, with
//!   deterministic LRU + pinning eviction. Plugs into the runtime's
//!   shuffle fetch path as [`alm_runtime::ResidentCache`] and into the
//!   simulator via `Simulation::with_resident_mofs`.
//! * [`chain`] — [`run_chain`] drives an `IterativeWorkload` through a
//!   partition-stable job chain: state striped across reduce partitions,
//!   each stripe resident on its home node, next state folded from reduce
//!   outputs plus the *resident* previous state (never a driver
//!   variable).
//! * Failure semantics by [`alm_types::MemMode`]: `LineageReplay`
//!   re-executes the whole chain prefix after state loss (the M3R-style
//!   baseline), `AlgFcm` restores from per-generation ALG checkpoints and
//!   recovers the in-flight job via SFM+ALG.
//! * Two engines, one protocol: [`SimChainEngine`] (analytic, paper
//!   scale) and [`RuntimeChainEngine`] (threaded, real bytes), which must
//!   produce byte-identical state trajectories.

#![forbid(unsafe_code)]

pub mod chain;
pub mod runtime_chain;
pub mod sim_chain;
pub mod store;

pub use chain::{
    run_chain, ChainEngine, ChainReport, CrashPlan, EngineRun, IterationOutcome, IterativeSpec, STATE_JOB,
};
pub use runtime_chain::RuntimeChainEngine;
pub use sim_chain::SimChainEngine;
pub use store::{ResidentStore, StoreStats};
