//! Chain engine over the discrete-event simulator.
//!
//! The simulator is analytic — it costs phases, it does not move bytes —
//! so this adapter splits each iteration in two, the same twin structure
//! `alm-chaos` uses for differential checks:
//!
//! * **timing/failures** come from a full [`Simulation`] run at paper
//!   scale with `with_resident_mofs()` (resident shuffle hits skip the
//!   source-disk stage) and the chain's dead nodes re-injected as
//!   crash-at-zero faults (the sim builds a fresh cluster per job; the
//!   chain's cluster persists);
//! * **state bytes** come from the reference executor over the
//!   instantiated workload — the trivially-correct in-process evaluation
//!   both engines must agree with.
//!
//! Durability under [`MemMode::AlgFcm`] is modeled as an in-engine ALG
//! checkpoint map (the analytic stand-in for the runtime adapter's real
//! DFS write); [`MemMode::LineageReplay`] persists nothing — that is the
//! M3R-style baseline being measured.

use crate::chain::{ChainEngine, EngineRun, IterativeSpec};
use crate::store::ResidentStore;
use alm_runtime::ResidentCache;
use alm_sim::{ExperimentEnv, SimFault, SimJobSpec, Simulation};
use alm_types::{MemMode, NodeId};
use alm_workloads::reference::reference_output;
use alm_workloads::{Workload, WorkloadKind};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Analytic chain engine: paper-scale timing, reference-executor bytes.
pub struct SimChainEngine {
    kind: WorkloadKind,
    input_bytes: u64,
    num_reduces: u32,
    seed: u64,
    mode: MemMode,
    env: ExperimentEnv,
    store: Arc<ResidentStore>,
    dead: BTreeSet<u32>,
    /// Modeled ALG checkpoint log: generation -> encoded state.
    alg_log: BTreeMap<u32, Vec<u8>>,
}

impl SimChainEngine {
    /// Engine for `spec`, costing each iteration as a `kind` job over
    /// `input_bytes` on the paper testbed.
    pub fn new(kind: WorkloadKind, input_bytes: u64, spec: &IterativeSpec) -> SimChainEngine {
        let mode = spec.mem.mem_mode;
        SimChainEngine {
            kind,
            input_bytes,
            num_reduces: spec.num_reduces,
            seed: spec.seed,
            mode,
            env: ExperimentEnv::paper(mode.recovery_mode()),
            store: ResidentStore::shared(spec.mem.mem_resident_capacity_bytes),
            dead: BTreeSet::new(),
            alg_log: BTreeMap::new(),
        }
    }

    /// Paper-scale engine: 10 GB per iteration, the scale the iterative
    /// workloads' `paper_input_gb` declares.
    pub fn paper(kind: WorkloadKind, spec: &IterativeSpec) -> SimChainEngine {
        const GB: u64 = 1 << 30;
        SimChainEngine::new(kind, 10 * GB, spec)
    }
}

impl ChainEngine for SimChainEngine {
    fn run_iteration(
        &mut self,
        iteration: u32,
        workload: &Arc<dyn Workload>,
        num_maps: u32,
        crash: Option<u32>,
    ) -> EngineRun {
        // The chain's cluster outlives any one sim run: nodes that died in
        // earlier iterations start this job dead.
        let mut faults: Vec<SimFault> =
            self.dead.iter().map(|&node| SimFault::CrashNodeAtSecs { node, at_secs: 0.0 }).collect();
        if let Some(node) = crash {
            faults.push(SimFault::CrashNodeAtReduceProgress { node, reduce_index: 0, at_progress: 0.5 });
        }
        let seed = self.seed ^ u64::from(iteration);
        let job = SimJobSpec::new(self.kind, self.input_bytes, self.num_reduces, seed);
        let report = Simulation::new(job, self.env.clone(), faults).with_resident_mofs().run();
        let outputs = reference_output(workload.as_ref(), num_maps, self.num_reduces, seed)
            .into_iter()
            .flatten()
            .collect();
        EngineRun {
            job_secs: report.job_secs,
            failures: report.failures.len() as u32,
            resident_hits: report.resident_fetch_hits,
            succeeded: report.succeeded,
            outputs,
        }
    }

    fn mark_dead(&mut self, node: u32) {
        if self.dead.insert(node) {
            self.store.invalidate_node(NodeId(node));
        }
    }

    fn alive_nodes(&self) -> Vec<u32> {
        (0..self.env.cluster.nodes).filter(|n| !self.dead.contains(n)).collect()
    }

    fn store(&self) -> &Arc<ResidentStore> {
        &self.store
    }

    fn save_durable(&mut self, generation: u32, bytes: &[u8]) {
        match self.mode {
            // M3R-style lineage mode keeps nothing durable — losing RAM
            // means losing the iteration history.
            MemMode::LineageReplay => {}
            // ALG+FCM checkpoints every generation into the analytics log.
            MemMode::AlgFcm => {
                self.alg_log.insert(generation, bytes.to_vec());
            }
        }
    }

    fn load_durable(&self, generation: u32) -> Option<Vec<u8>> {
        self.alg_log.get(&generation).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{run_chain, CrashPlan};
    use alm_types::MemConfig;
    use alm_workloads::{KMeans, Pagerank};

    fn spec(mode: MemMode) -> IterativeSpec {
        let mut mem = MemConfig::scaled_for_tests();
        mem.mem_mode = mode;
        mem.mem_max_chain_iterations = 4;
        mem.mem_convergence_epsilon_micro = 1;
        IterativeSpec { workload: Arc::new(Pagerank::small()), num_reduces: 3, seed: 42, mem }
    }

    #[test]
    fn sim_chain_is_deterministic_per_mode() {
        for mode in [MemMode::LineageReplay, MemMode::AlgFcm] {
            let s = spec(mode);
            let mut e1 = SimChainEngine::paper(WorkloadKind::Pagerank, &s);
            let mut e2 = SimChainEngine::paper(WorkloadKind::Pagerank, &s);
            let crash = Some(CrashPlan { node: 1, iteration: 1 });
            let r1 = run_chain(&mut e1, &s, crash);
            let r2 = run_chain(&mut e2, &s, crash);
            assert_eq!(r1, r2, "identical seeds must replay identically under {mode}");
        }
    }

    #[test]
    fn crash_loses_more_under_lineage_than_alg_fcm() {
        let crash = Some(CrashPlan { node: 1, iteration: 2 });
        let s_lineage = spec(MemMode::LineageReplay);
        let s_alg = spec(MemMode::AlgFcm);
        let mut e_lineage = SimChainEngine::paper(WorkloadKind::Pagerank, &s_lineage);
        let mut e_alg = SimChainEngine::paper(WorkloadKind::Pagerank, &s_alg);
        let r_lineage = run_chain(&mut e_lineage, &s_lineage, crash);
        let r_alg = run_chain(&mut e_alg, &s_alg, crash);
        assert!(
            r_lineage.iterations_lost > r_alg.iterations_lost,
            "lineage {} vs alg+fcm {}",
            r_lineage.iterations_lost,
            r_alg.iterations_lost
        );
        assert_eq!(r_lineage.final_state, r_alg.final_state, "modes agree on the math");
        assert!(r_lineage.total_job_secs() > r_alg.total_job_secs(), "replayed iterations cost sim time");
    }

    #[test]
    fn kmeans_chain_runs_on_the_sim_engine() {
        let mut mem = MemConfig::scaled_for_tests();
        mem.mem_max_chain_iterations = 3;
        mem.mem_convergence_epsilon_micro = 1;
        let s = IterativeSpec { workload: Arc::new(KMeans::small()), num_reduces: 2, seed: 7, mem };
        let mut engine = SimChainEngine::paper(WorkloadKind::KMeans, &s);
        let report = run_chain(&mut engine, &s, None);
        assert_eq!(report.iterations_completed, 3);
        assert_eq!(report.iterations_lost, 0);
        assert!(report.runs.iter().all(|r| r.succeeded));
        assert!(report.store.hits > 0, "state stripes reload from RAM each iteration");
    }
}
