//! Partition-stable job chains: the iterative driver that keeps reduce
//! state memory-resident between jobs.
//!
//! A chain runs an [`IterativeWorkload`] to convergence (or a fixed
//! iteration budget) as a sequence of MapReduce jobs on one engine. The
//! discipline that makes the chain honest is that **the driver holds no
//! inter-iteration state in its own variables**: after each job it folds
//! the next state from (a) the job's reduce outputs and (b) the *resident*
//! copy of the previous state, re-read from the [`ResidentStore`]. State is
//! striped across reduce partitions and each stripe lives on its
//! partition-stable home node — so a node crash genuinely loses that
//! node's stripes, and what happens next is exactly the design split this
//! subsystem exists to measure ([`MemMode`]):
//!
//! * **Lineage replay** (M3R-style): nothing durable exists; the chain
//!   re-executes every completed iteration from the initial state to
//!   reconstruct the lost stripes. `iterations_lost` counts those re-runs —
//!   the RAM-resident form of the paper's failure amplification.
//! * **ALG + FCM**: each generation is also persisted as an analytics-log
//!   checkpoint; recovery is a single durable restore (`iterations_lost`
//!   stays 0) and the in-flight job recovers in-job via SFM+ALG.
//!
//! The engine behind the chain is abstracted as [`ChainEngine`] with two
//! implementations: [`crate::sim_chain::SimChainEngine`] (analytic timing
//! at paper scale) and [`crate::runtime_chain::RuntimeChainEngine`] (real
//! bytes on the threaded mini-YARN). Both produce byte-identical state
//! trajectories for the same spec, which the differential tests assert.

use crate::store::{ResidentStore, StoreStats};
use alm_types::{JobId, MemConfig, MemMode, NodeId};
use alm_workloads::{decode_state, encode_state, state_delta_micro, IterativeWorkload, Record, Workload};
use serde::Serialize;
use std::sync::Arc;

/// Job-id namespace for chain state stripes in the resident store. Real
/// engine jobs use small sequential ids; state generations use this
/// sentinel with `map_index = generation`, `partition = stripe`.
pub const STATE_JOB: JobId = JobId(u32::MAX);

/// One iterative computation to run as a chain.
pub struct IterativeSpec {
    pub workload: Arc<dyn IterativeWorkload>,
    pub num_reduces: u32,
    /// Input-generation seed; each iteration derives `seed ^ iteration` so
    /// replayed iterations regenerate byte-identical inputs.
    pub seed: u64,
    pub mem: MemConfig,
}

/// Crash `node` while iteration `iteration`'s job is in flight (at reduce 0,
/// 50% progress). The node stays dead for the rest of the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct CrashPlan {
    pub node: u32,
    pub iteration: u32,
}

/// What one engine job run reported back to the chain.
pub struct EngineRun {
    pub job_secs: f64,
    pub failures: u32,
    pub resident_hits: u64,
    pub succeeded: bool,
    /// The job's reduce outputs (all partitions, flattened) — the bytes the
    /// chain folds into the next state generation.
    pub outputs: Vec<Record>,
}

/// One engine job run in the chain's history, including lineage replays.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct IterationOutcome {
    pub iteration: u32,
    /// True if this run re-executed an already-completed iteration to
    /// reconstruct lost resident state.
    pub replay: bool,
    pub job_secs: f64,
    pub failures: u32,
    pub resident_hits: u64,
    pub succeeded: bool,
}

/// Full account of a chain run.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ChainReport {
    pub mode: MemMode,
    /// Every engine job run, in execution order (replays interleaved).
    pub runs: Vec<IterationOutcome>,
    /// Distinct chain iterations folded (excluding replays).
    pub iterations_completed: u32,
    /// Completed iterations that had to be re-executed after state loss —
    /// the chain-level amplification metric.
    pub iterations_lost: u32,
    /// Recoveries served from the durable ALG checkpoint instead.
    pub durable_restores: u32,
    /// Generation at which the state delta dropped under the epsilon, if
    /// the chain converged before the iteration budget.
    pub converged_at: Option<u32>,
    pub final_state: Vec<u64>,
    pub store: StoreStats,
}

impl ChainReport {
    /// Total engine time across all runs, replays included.
    pub fn total_job_secs(&self) -> f64 {
        self.runs.iter().map(|r| r.job_secs).sum()
    }

    /// Engine runs that were lineage replays.
    pub fn replay_runs(&self) -> usize {
        self.runs.iter().filter(|r| r.replay).count()
    }
}

/// The engine half of a chain: runs one iteration as a full MapReduce job
/// and owns the engine-side residency and durability plumbing.
pub trait ChainEngine {
    /// Execute iteration `iteration`'s job over `workload` (already
    /// instantiated with the current state). `crash` injects a mid-job
    /// node crash; the engine must keep that node dead for later runs.
    fn run_iteration(
        &mut self,
        iteration: u32,
        workload: &Arc<dyn Workload>,
        num_maps: u32,
        crash: Option<u32>,
    ) -> EngineRun;

    /// Record a node death decided outside a run (chain-level bookkeeping;
    /// engines also invalidate the node's resident entries here if their
    /// crash path did not already).
    fn mark_dead(&mut self, node: u32);

    /// Nodes currently able to host resident stripes.
    fn alive_nodes(&self) -> Vec<u32>;

    /// The resident store shared with this engine's fetch path.
    fn store(&self) -> &Arc<ResidentStore>;

    /// Persist generation `generation`'s encoded state durably — a no-op
    /// in lineage mode, an ALG checkpoint under ALG+FCM.
    fn save_durable(&mut self, generation: u32, bytes: &[u8]);

    /// Read back a durable generation, if one was persisted.
    fn load_durable(&self, generation: u32) -> Option<Vec<u8>>;
}

/// Contiguous stripe of the state vector owned by reduce partition `p`.
fn stripe_bounds(state_len: usize, p: u32, num_reduces: u32) -> (usize, usize) {
    let r = num_reduces.max(1) as usize;
    let p = p as usize;
    (state_len * p / r, state_len * (p + 1) / r)
}

/// Partition-stable home for stripe `p`: prefer node `p % N`, walking the
/// ring past dead nodes so a stripe re-homes deterministically after loss.
fn home_node(p: u32, alive: &[u32], total_nodes: u32) -> Option<u32> {
    if alive.is_empty() || total_nodes == 0 {
        return None;
    }
    let start = p % total_nodes;
    (0..total_nodes).map(|i| (start + i) % total_nodes).find(|n| alive.contains(n))
}

fn put_state<E: ChainEngine>(engine: &mut E, spec: &IterativeSpec, generation: u32, state: &[u64]) {
    let alive = engine.alive_nodes();
    let total = alive.iter().copied().max().map_or(0, |m| m + 1);
    if spec.mem.mem_pin_hot_partitions {
        // Only the newest generation stays pinned; older stripes become
        // ordinary reclaimable cache.
        engine.store().unpin_all();
    }
    for p in 0..spec.num_reduces {
        let (lo, hi) = stripe_bounds(state.len(), p, spec.num_reduces);
        let Some(node) = home_node(p, &alive, total) else { continue };
        engine.store().put(
            NodeId(node),
            STATE_JOB,
            generation,
            p,
            &encode_state(&state[lo..hi]),
            spec.mem.mem_pin_hot_partitions,
        );
    }
}

fn load_state<E: ChainEngine>(engine: &E, spec: &IterativeSpec, generation: u32) -> Option<Vec<u64>> {
    let mut state = Vec::with_capacity(spec.workload.state_len());
    for p in 0..spec.num_reduces {
        let (_, bytes) = engine.store().get(STATE_JOB, generation, p)?;
        state.extend(decode_state(&bytes));
    }
    (state.len() == spec.workload.state_len()).then_some(state)
}

/// Reconstruct generation `generation`'s state after resident loss, per the
/// chain's [`MemMode`]: durable restore if a checkpoint exists, otherwise
/// lineage replay of the whole prefix. The recovered state is re-put into
/// residency so subsequent loads hit.
fn recover_state<E: ChainEngine>(
    engine: &mut E,
    spec: &IterativeSpec,
    generation: u32,
    report: &mut ChainReport,
) -> Vec<u64> {
    if let Some(bytes) = engine.load_durable(generation) {
        report.durable_restores += 1;
        let state = decode_state(&bytes);
        put_state(engine, spec, generation, &state);
        return state;
    }
    // No durable checkpoint (M3R-style lineage mode): re-execute the chain
    // prefix from the initial state. Each replay is a real engine job.
    let mut state = spec.workload.initial_state();
    for i in 0..generation {
        let w = spec.workload.instantiate(&state);
        let run = engine.run_iteration(i, &w, spec.workload.num_maps(), None);
        report.runs.push(IterationOutcome {
            iteration: i,
            replay: true,
            job_secs: run.job_secs,
            failures: run.failures,
            resident_hits: run.resident_hits,
            succeeded: run.succeeded,
        });
        state = spec.workload.fold(&state, &run.outputs);
        report.iterations_lost += 1;
    }
    put_state(engine, spec, generation, &state);
    state
}

/// Drive `spec` to convergence (or the iteration budget) on `engine`,
/// optionally crashing a node mid-chain.
pub fn run_chain<E: ChainEngine>(
    engine: &mut E,
    spec: &IterativeSpec,
    crash: Option<CrashPlan>,
) -> ChainReport {
    spec.mem.validate().expect("chain mem config");
    let mut report = ChainReport {
        mode: spec.mem.mem_mode,
        runs: Vec::new(),
        iterations_completed: 0,
        iterations_lost: 0,
        durable_restores: 0,
        converged_at: None,
        final_state: spec.workload.initial_state(),
        store: StoreStats::default(),
    };
    // Seed generation 0 into residency and (mode permitting) durability.
    let initial = spec.workload.initial_state();
    put_state(engine, spec, 0, &initial);
    engine.save_durable(0, &encode_state(&initial));

    let mut generation = 0u32;
    while generation < spec.mem.mem_max_chain_iterations {
        // Pre-run: the working state comes from residency, recovering if a
        // previous crash (or cache pressure) lost it.
        let state = match load_state(engine, spec, generation) {
            Some(s) => s,
            None => recover_state(engine, spec, generation, &mut report),
        };
        let workload = spec.workload.instantiate(&state);
        let crash_now = crash.filter(|c| c.iteration == generation).map(|c| c.node);
        let run = engine.run_iteration(generation, &workload, spec.workload.num_maps(), crash_now);
        if let Some(node) = crash_now {
            engine.mark_dead(node);
        }
        report.runs.push(IterationOutcome {
            iteration: generation,
            replay: false,
            job_secs: run.job_secs,
            failures: run.failures,
            resident_hits: run.resident_hits,
            succeeded: run.succeeded,
        });
        // Post-run: fold from the *resident* copy, not a chain variable —
        // if the crash wiped stripes of this generation, recovery happens
        // here and is charged to the mode.
        let base = match load_state(engine, spec, generation) {
            Some(s) => s,
            None => recover_state(engine, spec, generation, &mut report),
        };
        let next = spec.workload.fold(&base, &run.outputs);
        let delta = state_delta_micro(&base, &next);
        generation += 1;
        put_state(engine, spec, generation, &next);
        engine.save_durable(generation, &encode_state(&next));
        report.final_state = next;
        if delta <= spec.mem.mem_convergence_epsilon_micro {
            report.converged_at = Some(generation);
            break;
        }
    }
    report.iterations_completed = generation;
    report.store = engine.store().stats();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_runtime::ResidentCache;
    use alm_types::MemConfig;
    use alm_workloads::Pagerank;
    use std::collections::BTreeMap;

    /// In-process engine that evaluates jobs with the reference executor —
    /// exercises the chain protocol without either real engine.
    struct LocalEngine {
        store: Arc<ResidentStore>,
        mode: MemMode,
        durable: BTreeMap<u32, Vec<u8>>,
        dead: Vec<u32>,
        nodes: u32,
        num_reduces: u32,
        seed: u64,
    }

    impl LocalEngine {
        fn new(spec: &IterativeSpec, nodes: u32) -> LocalEngine {
            LocalEngine {
                store: ResidentStore::shared(spec.mem.mem_resident_capacity_bytes),
                mode: spec.mem.mem_mode,
                durable: BTreeMap::new(),
                dead: Vec::new(),
                nodes,
                num_reduces: spec.num_reduces,
                seed: spec.seed,
            }
        }
    }

    impl ChainEngine for LocalEngine {
        fn run_iteration(
            &mut self,
            iteration: u32,
            workload: &Arc<dyn Workload>,
            num_maps: u32,
            crash: Option<u32>,
        ) -> EngineRun {
            let outputs = alm_workloads::reference::reference_output(
                workload.as_ref(),
                num_maps,
                self.num_reduces,
                self.seed ^ u64::from(iteration),
            )
            .into_iter()
            .flatten()
            .collect();
            if let Some(n) = crash {
                self.dead.push(n);
                self.store.invalidate_node(NodeId(n));
            }
            EngineRun { job_secs: 1.0, failures: 0, resident_hits: 0, succeeded: true, outputs }
        }

        fn mark_dead(&mut self, node: u32) {
            if !self.dead.contains(&node) {
                self.dead.push(node);
                self.store.invalidate_node(NodeId(node));
            }
        }

        fn alive_nodes(&self) -> Vec<u32> {
            (0..self.nodes).filter(|n| !self.dead.contains(n)).collect()
        }

        fn store(&self) -> &Arc<ResidentStore> {
            &self.store
        }

        fn save_durable(&mut self, generation: u32, bytes: &[u8]) {
            match self.mode {
                MemMode::LineageReplay => {}
                MemMode::AlgFcm => {
                    self.durable.insert(generation, bytes.to_vec());
                }
            }
        }

        fn load_durable(&self, generation: u32) -> Option<Vec<u8>> {
            self.durable.get(&generation).cloned()
        }
    }

    fn spec(mode: MemMode) -> IterativeSpec {
        let mut mem = MemConfig::scaled_for_tests();
        mem.mem_mode = mode;
        mem.mem_max_chain_iterations = 4;
        // Epsilon low enough that 4 iterations never converge — the tests
        // below want a fixed-length chain.
        mem.mem_convergence_epsilon_micro = 1;
        IterativeSpec { workload: Arc::new(Pagerank::small()), num_reduces: 3, seed: 42, mem }
    }

    #[test]
    fn fault_free_chain_completes_and_keeps_state_resident() {
        let s = spec(MemMode::AlgFcm);
        let mut engine = LocalEngine::new(&s, 5);
        let report = run_chain(&mut engine, &s, None);
        assert_eq!(report.iterations_completed, 4);
        assert_eq!(report.iterations_lost, 0);
        assert_eq!(report.durable_restores, 0);
        assert_eq!(report.runs.len(), 4, "no replays");
        assert_eq!(report.final_state.len(), 800);
        // Latest generation's stripes are resident.
        assert!(load_state(&engine, &s, 4).is_some());
    }

    #[test]
    fn stripes_and_homes_partition_the_state_stably() {
        assert_eq!(stripe_bounds(10, 0, 3), (0, 3));
        assert_eq!(stripe_bounds(10, 1, 3), (3, 6));
        assert_eq!(stripe_bounds(10, 2, 3), (6, 10));
        let alive = [0, 2, 3, 4];
        assert_eq!(home_node(0, &alive, 5), Some(0));
        assert_eq!(home_node(1, &alive, 5), Some(2), "dead node 1 re-homes to next live");
        assert_eq!(home_node(6, &alive, 5), Some(2), "ring wraps");
        assert_eq!(home_node(0, &[], 5), None);
    }

    #[test]
    fn crash_under_lineage_replay_reexecutes_the_prefix() {
        let s = spec(MemMode::LineageReplay);
        let mut engine = LocalEngine::new(&s, 3);
        // With 3 reduces on 3 nodes every node hosts a stripe; crashing
        // node 1 during iteration 2 must lose generation 2's stripe.
        let report = run_chain(&mut engine, &s, Some(CrashPlan { node: 1, iteration: 2 }));
        assert_eq!(report.iterations_completed, 4);
        assert_eq!(report.iterations_lost, 2, "iterations 0 and 1 re-ran");
        assert_eq!(report.durable_restores, 0);
        assert_eq!(report.replay_runs(), 2);
        assert_eq!(report.runs.len(), 6);
    }

    #[test]
    fn crash_under_alg_fcm_restores_durably_losing_nothing() {
        let s = spec(MemMode::AlgFcm);
        let mut engine = LocalEngine::new(&s, 3);
        let report = run_chain(&mut engine, &s, Some(CrashPlan { node: 1, iteration: 2 }));
        assert_eq!(report.iterations_completed, 4);
        assert_eq!(report.iterations_lost, 0, "ALG checkpoint absorbs the loss");
        assert!(report.durable_restores >= 1);
        assert_eq!(report.replay_runs(), 0);
    }

    #[test]
    fn modes_agree_on_final_state_despite_crash() {
        let crash = Some(CrashPlan { node: 1, iteration: 1 });
        let s1 = spec(MemMode::LineageReplay);
        let s2 = spec(MemMode::AlgFcm);
        let mut e1 = LocalEngine::new(&s1, 3);
        let mut e2 = LocalEngine::new(&s2, 3);
        let r1 = run_chain(&mut e1, &s1, crash);
        let r2 = run_chain(&mut e2, &s2, crash);
        assert_eq!(r1.final_state, r2.final_state, "recovery path must not change results");
        assert!(r1.iterations_lost > r2.iterations_lost);
    }

    #[test]
    fn tiny_capacity_changes_cost_but_not_results() {
        let s_big = spec(MemMode::AlgFcm);
        let mut s_small = spec(MemMode::AlgFcm);
        // Too small for any state stripe: every load misses, every
        // generation restores from the ALG checkpoint.
        s_small.mem.mem_resident_capacity_bytes = 1024;
        s_small.mem.mem_pin_hot_partitions = true;
        let mut e_big = LocalEngine::new(&s_big, 5);
        let mut e_small = LocalEngine::new(&s_small, 5);
        let r_big = run_chain(&mut e_big, &s_big, None);
        let r_small = run_chain(&mut e_small, &s_small, None);
        assert_eq!(r_big.final_state, r_small.final_state, "eviction is semantically invisible");
        assert!(r_small.durable_restores > 0);
        assert_eq!(r_big.durable_restores, 0);
    }

    #[test]
    fn converges_when_delta_drops_under_epsilon() {
        let mut s = spec(MemMode::AlgFcm);
        s.mem.mem_max_chain_iterations = 50;
        s.mem.mem_convergence_epsilon_micro = 200_000;
        let mut engine = LocalEngine::new(&s, 5);
        let report = run_chain(&mut engine, &s, None);
        let at = report.converged_at.expect("loose epsilon converges");
        assert!(at < 50, "converged before the budget");
        assert_eq!(report.iterations_completed, at);
    }
}
