//! Iterative workloads: jobs chained so that one job's reduce output is the
//! next job's map input.
//!
//! The chain layer (`alm-mem`) drives these through either engine. The
//! contract that makes in-memory chaining safe is that each *instance* is a
//! pure function of its construction-time state vector: `gen_split` and
//! `map` may not consult anything else, so a re-executed map attempt (after
//! a crash) regenerates byte-identical output.
//!
//! State is a flat `Vec<u64>` of fixed-point micro-units (1.0 == 1_000_000)
//! so folding, logging, and cross-engine comparison are all byte-exact.

use std::sync::Arc;

use crate::model::WorkloadModel;
use crate::record::Record;
use crate::Workload;

/// Fixed-point scale: one unit in micro-units.
pub const RANK_ONE_MICRO: u64 = 1_000_000;

/// Big-endian encoding helpers — BE so byte order equals numeric order.
pub fn be_u32(v: u32) -> [u8; 4] {
    v.to_be_bytes()
}

/// See [`be_u32`].
pub fn be_u64(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// splitmix64 finalizer: a cheap, stateless, well-mixed hash used to derive
/// static structure (graph edges, point coordinates) from a seed without
/// carrying materialized data in the workload struct.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Encode a state vector as big-endian u64s — the durable (ALG-loggable)
/// representation the chain layer checkpoints and restores.
pub fn encode_state(state: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(state.len() * 8);
    for v in state {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

/// Inverse of [`encode_state`]; trailing partial words are dropped.
pub fn decode_state(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

/// Largest absolute per-slot difference between two state vectors, in
/// micro-units — the convergence criterion for chain termination.
pub fn state_delta_micro(a: &[u64], b: &[u64]) -> u64 {
    a.iter().zip(b.iter()).map(|(x, y)| x.abs_diff(*y)).max().unwrap_or(0)
}

/// A workload that can be iterated: each call to [`instantiate`] yields a
/// plain [`Workload`] for one chain step, and [`fold`] turns that step's
/// reduce output back into the next state vector.
///
/// [`instantiate`]: IterativeWorkload::instantiate
/// [`fold`]: IterativeWorkload::fold
pub trait IterativeWorkload: Send + Sync {
    /// Stable name used in campaign scenario labels.
    fn iter_name(&self) -> &'static str;

    /// Number of u64 slots in the state vector.
    fn state_len(&self) -> usize;

    /// Iteration-0 state.
    fn initial_state(&self) -> Vec<u64>;

    /// Build the single-job workload for one iteration over `state`.
    fn instantiate(&self, state: &[u64]) -> Arc<dyn Workload>;

    /// Fold one iteration's reduce output into the next state vector.
    /// Slots no output record touches keep their previous value.
    fn fold(&self, prev: &[u64], outputs: &[Record]) -> Vec<u64>;

    /// Natural map-split count for this workload's input.
    fn num_maps(&self) -> u32;

    /// Cost model of a single iteration (for the simulator).
    fn iter_model(&self) -> WorkloadModel;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_codec_round_trips() {
        let state = vec![0u64, 1, RANK_ONE_MICRO, u64::MAX];
        assert_eq!(decode_state(&encode_state(&state)), state);
    }

    #[test]
    fn decode_drops_trailing_partial_word() {
        let mut bytes = encode_state(&[7, 8]);
        bytes.push(0xff);
        assert_eq!(decode_state(&bytes), vec![7, 8]);
    }

    #[test]
    fn delta_is_max_abs_difference() {
        assert_eq!(state_delta_micro(&[10, 5, 100], &[12, 5, 90]), 10);
        assert_eq!(state_delta_micro(&[], &[]), 0);
    }

    #[test]
    fn mix64_is_stable_and_spread() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), mix64(1));
        // Known splitmix64 property: distinct small inputs land far apart.
        assert_ne!(mix64(1) % 1000, mix64(2) % 1000);
    }
}
