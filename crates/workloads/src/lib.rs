//! The paper's three evaluation workloads — Terasort, Wordcount and
//! Secondarysort (§V-A) — in two complementary forms:
//!
//! 1. **Executable** ([`Workload`]): deterministic input generation plus the
//!    map function, partitioner, key/grouping comparators and reduce
//!    function, consumed by the real threaded runtime (`alm-runtime`) which
//!    actually sorts/merges/reduces the bytes.
//! 2. **Analytic** ([`model::WorkloadModel`]): size ratios, record sizes and
//!    CPU cost coefficients, consumed by the discrete-event simulator
//!    (`alm-sim`) so that paper-scale inputs (10–320 GB) run in milliseconds.
//!
//! Both forms are derived from the same constants so that shapes observed in
//! the real engine carry over to the simulated one.

#![forbid(unsafe_code)]

pub mod iterative;
pub mod kmeans;
pub mod model;
pub mod pagerank;
pub mod record;
pub mod reference;
pub mod secondarysort;
pub mod spec;
pub mod terasort;
pub mod wordcount;

pub use iterative::{
    be_u32, be_u64, decode_state, encode_state, mix64, state_delta_micro, IterativeWorkload, RANK_ONE_MICRO,
};
pub use kmeans::KMeans;
pub use model::WorkloadModel;
pub use pagerank::Pagerank;
pub use record::Record;
pub use secondarysort::SecondarySort;
pub use spec::{JobSpec, WorkloadKind};
pub use terasort::Terasort;
pub use wordcount::Wordcount;

use std::cmp::Ordering;

/// A MapReduce program: input generation + user functions.
///
/// Implementations must be deterministic functions of `(split, seed)` so
/// that a re-executed MapTask regenerates byte-identical output — the
/// property YARN's recovery (and ours) relies on.
pub trait Workload: Send + Sync {
    fn name(&self) -> &'static str;

    /// Generate the records of one input split.
    fn gen_split(&self, split_index: u32, seed: u64) -> Vec<Record>;

    /// The map function: transform one input record into intermediate
    /// records, passed to `emit`.
    fn map(&self, rec: &Record, emit: &mut dyn FnMut(Record));

    /// The reduce function: one key group (values in sorted arrival order)
    /// to output records.
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Record));

    /// Route an intermediate key to a reduce partition.
    fn partition(&self, key: &[u8], num_reduces: u32) -> u32;

    /// Intermediate key ordering (Secondarysort orders by composite key).
    fn compare_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    /// Whether two adjacent sorted keys belong to the same reduce group
    /// (Secondarysort groups by the primary key only).
    fn same_group(&self, a: &[u8], b: &[u8]) -> bool {
        a == b
    }

    /// Optional combiner: fold the values of one key on the map side.
    /// Returns `None` when the workload has no combiner.
    fn combine(&self, _key: &[u8], _values: &[Vec<u8>]) -> Option<Vec<u8>> {
        None
    }

    /// The analytic twin of this workload for the simulator.
    fn model(&self) -> WorkloadModel;
}
