//! Job specifications: which workload, how much input, how many reducers.

use serde::{Deserialize, Serialize};

use crate::model::WorkloadModel;
use crate::{KMeans, Pagerank, SecondarySort, Terasort, Wordcount, Workload};

/// The evaluation workloads, as a value (for configs/CLI): the paper's
/// three single-job workloads plus the two iterative shapes the in-memory
/// chain layer (`alm-mem`) drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    Terasort,
    Wordcount,
    SecondarySort,
    Pagerank,
    KMeans,
}

impl WorkloadKind {
    /// The paper's three single-job workloads (§V-A). Iterative kinds are
    /// deliberately excluded: single-job experiment sweeps iterate this.
    pub const ALL: [WorkloadKind; 3] =
        [WorkloadKind::Terasort, WorkloadKind::Wordcount, WorkloadKind::SecondarySort];

    /// The iterative workloads driven by job chains.
    pub const ITERATIVE: [WorkloadKind; 2] = [WorkloadKind::Pagerank, WorkloadKind::KMeans];

    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Terasort => "terasort",
            WorkloadKind::Wordcount => "wordcount",
            WorkloadKind::SecondarySort => "secondarysort",
            WorkloadKind::Pagerank => "pagerank",
            WorkloadKind::KMeans => "kmeans",
        }
    }

    pub fn parse(s: &str) -> Option<WorkloadKind> {
        match s.to_ascii_lowercase().as_str() {
            "terasort" => Some(WorkloadKind::Terasort),
            "wordcount" => Some(WorkloadKind::Wordcount),
            "secondarysort" | "secondary-sort" => Some(WorkloadKind::SecondarySort),
            "pagerank" => Some(WorkloadKind::Pagerank),
            "kmeans" | "k-means" => Some(WorkloadKind::KMeans),
            _ => None,
        }
    }

    /// Instantiate the executable workload sized for in-process runs.
    pub fn instantiate_small(&self) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Terasort => Box::new(Terasort::small()),
            WorkloadKind::Wordcount => Box::new(Wordcount::small()),
            WorkloadKind::SecondarySort => Box::new(SecondarySort::small()),
            WorkloadKind::Pagerank => Box::new(Pagerank::small()),
            WorkloadKind::KMeans => Box::new(KMeans::small()),
        }
    }

    /// The analytic model for the simulator.
    pub fn model(&self) -> WorkloadModel {
        match self {
            WorkloadKind::Terasort => Terasort::small().model(),
            WorkloadKind::Wordcount => Wordcount::small().model(),
            WorkloadKind::SecondarySort => SecondarySort::small().model(),
            WorkloadKind::Pagerank => Pagerank::small().model(),
            WorkloadKind::KMeans => KMeans::small().model(),
        }
    }

    /// The input sizes the paper uses for this workload in §V-B
    /// (Terasort 100 GB, Wordcount 10 GB, Secondarysort 10 GB); the
    /// iterative kinds use 10 GB per iteration, matching the paper's
    /// smaller-job scale.
    pub fn paper_input_gb(&self) -> u64 {
        match self {
            WorkloadKind::Terasort => 100,
            WorkloadKind::Wordcount => 10,
            WorkloadKind::SecondarySort => 10,
            WorkloadKind::Pagerank => 10,
            WorkloadKind::KMeans => 10,
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One job to run: the unit of the experiment runners.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    pub workload: WorkloadKind,
    pub input_bytes: u64,
    pub num_reduces: u32,
}

impl JobSpec {
    pub fn new(workload: WorkloadKind, input_bytes: u64, num_reduces: u32) -> JobSpec {
        JobSpec { workload, input_bytes, num_reduces }
    }

    /// Map count given the DFS block size (one split per block, like
    /// Hadoop's FileInputFormat).
    pub fn num_maps(&self, block_size: u64) -> u32 {
        if self.input_bytes == 0 {
            return 0;
        }
        (self.input_bytes.div_ceil(block_size.max(1))).min(u32::MAX as u64) as u32
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.input_bytes == 0 {
            return Err("input size must be nonzero".into());
        }
        if self.num_reduces == 0 {
            return Err("at least one reduce task is required".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for k in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::parse(k.name()), Some(k));
        }
        assert_eq!(WorkloadKind::parse("nope"), None);
    }

    #[test]
    fn map_count_follows_blocks() {
        let j = JobSpec::new(WorkloadKind::Terasort, 1000, 4);
        assert_eq!(j.num_maps(128), 8); // ceil(1000/128)
        assert_eq!(j.num_maps(1000), 1);
        assert_eq!(JobSpec::new(WorkloadKind::Terasort, 0, 4).num_maps(128), 0);
    }

    #[test]
    fn paper_sizes() {
        assert_eq!(WorkloadKind::Terasort.paper_input_gb(), 100);
        assert_eq!(WorkloadKind::Wordcount.paper_input_gb(), 10);
        assert_eq!(WorkloadKind::SecondarySort.paper_input_gb(), 10);
    }

    #[test]
    fn validation() {
        assert!(JobSpec::new(WorkloadKind::Wordcount, 0, 1).validate().is_err());
        assert!(JobSpec::new(WorkloadKind::Wordcount, 10, 0).validate().is_err());
        assert!(JobSpec::new(WorkloadKind::Wordcount, 10, 1).validate().is_ok());
    }

    #[test]
    fn instantiation_matches_kind() {
        for k in WorkloadKind::ALL.into_iter().chain(WorkloadKind::ITERATIVE) {
            assert_eq!(k.instantiate_small().name(), k.name());
            assert_eq!(k.model().name, k.name());
        }
    }

    #[test]
    fn iterative_kinds_parse_and_stay_out_of_all() {
        for k in WorkloadKind::ITERATIVE {
            assert_eq!(WorkloadKind::parse(k.name()), Some(k));
            assert!(!WorkloadKind::ALL.contains(&k), "ALL stays the paper's three");
            assert_eq!(k.paper_input_gb(), 10);
        }
        assert_eq!(WorkloadKind::parse("k-means"), Some(WorkloadKind::KMeans));
    }
}
