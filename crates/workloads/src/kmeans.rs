//! K-means: the second iterative workload shape (Lloyd's algorithm).
//!
//! One iteration is one job: the map assigns every point to its nearest
//! centroid, the reduce averages the assigned points into the next centroid
//! positions. Points are static and derived from a seeded mixer; the only
//! state carried between iterations is the flattened centroid matrix, in
//! fixed-point micro-units.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::iterative::{be_u32, mix64, IterativeWorkload, RANK_ONE_MICRO};
use crate::model::WorkloadModel;
use crate::record::Record;
use crate::Workload;

/// Dimensionality of points and centroids.
pub const KMEANS_DIMS: usize = 4;
/// Coordinate range: `[0, KMEANS_COORD_RANGE_MICRO)` per dimension.
pub const KMEANS_COORD_RANGE_MICRO: u64 = 1_000 * RANK_ONE_MICRO;

/// K-means over `num_splits * points_per_split` static points, carrying the
/// current centroid matrix (`k * KMEANS_DIMS` micro-unit slots, row-major).
#[derive(Debug, Clone)]
pub struct KMeans {
    pub k: u32,
    pub points_per_split: u32,
    pub num_splits: u32,
    /// Point-coordinate derivation seed (fixed for the whole chain).
    pub point_seed: u64,
    /// Current centroids, row-major `[k][KMEANS_DIMS]`.
    pub centroids: Arc<Vec<u64>>,
}

impl KMeans {
    /// Iteration-0 instance: centroids spread deterministically from the
    /// point seed (distinct from any data point's derivation stream).
    pub fn initial(k: u32, points_per_split: u32, num_splits: u32, point_seed: u64) -> KMeans {
        let centroids = (0..k as usize * KMEANS_DIMS)
            .map(|i| mix64(point_seed ^ centroid_salt(i)) % KMEANS_COORD_RANGE_MICRO)
            .collect();
        KMeans { k, points_per_split, num_splits, point_seed, centroids: Arc::new(centroids) }
    }

    /// A small instance for tests and kind-level plumbing.
    pub fn small() -> KMeans {
        KMeans::initial(4, 150, 4, 11)
    }

    /// Coordinate `d` of point `p` — pure function of the chain-fixed seed.
    fn point_coord(&self, p: u32, d: usize) -> u64 {
        mix64(self.point_seed ^ ((p as u64) << 16) ^ d as u64) % KMEANS_COORD_RANGE_MICRO
    }

    fn nearest_centroid(&self, point: &[u64; KMEANS_DIMS]) -> u32 {
        let mut best = 0u32;
        let mut best_dist = u64::MAX;
        for c in 0..self.k {
            let mut dist = 0u64;
            for (d, coord) in point.iter().enumerate() {
                let diff = coord.abs_diff(self.centroids[c as usize * KMEANS_DIMS + d]);
                dist = dist.saturating_add(diff.saturating_mul(diff));
            }
            // Strict `<` keeps ties on the lowest centroid id — a total,
            // deterministic assignment regardless of iteration order.
            if dist < best_dist {
                best_dist = dist;
                best = c;
            }
        }
        best
    }
}

// Offsets centroid derivation away from point derivation so initial
// centroids never coincide with the data stream.
fn centroid_salt(i: usize) -> u64 {
    0xc3 ^ ((i as u64) << 40)
}

fn decode_u64s(bytes: &[u8], n: usize) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .take(n)
        .map(|c| u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect()
}

fn encode_u64s(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn gen_split(&self, split_index: u32, _seed: u64) -> Vec<Record> {
        // Like pagerank, the per-job seed is deliberately unused: inputs are
        // a pure function of the chain-fixed point seed, so re-executed maps
        // regenerate identical records.
        let base = split_index * self.points_per_split;
        (0..self.points_per_split)
            .map(|i| {
                let p = base + i;
                let coords: Vec<u64> = (0..KMEANS_DIMS).map(|d| self.point_coord(p, d)).collect();
                Record::new(be_u32(p), encode_u64s(&coords))
            })
            .collect()
    }

    fn map(&self, rec: &Record, emit: &mut dyn FnMut(Record)) {
        let coords = decode_u64s(&rec.value, KMEANS_DIMS);
        let mut point = [0u64; KMEANS_DIMS];
        point.copy_from_slice(&coords);
        let cid = self.nearest_centroid(&point);
        // Value = per-dimension sums plus a count of 1, so combine/reduce
        // are a single element-wise vector sum.
        let mut partial = coords;
        partial.push(1);
        emit(Record::new(be_u32(cid), encode_u64s(&partial)));
    }

    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Record)) {
        let mut sums = [0u64; KMEANS_DIMS + 1];
        for v in values {
            for (d, val) in decode_u64s(v, KMEANS_DIMS + 1).into_iter().enumerate() {
                sums[d] = sums[d].saturating_add(val);
            }
        }
        let count = sums[KMEANS_DIMS].max(1);
        let centroid: Vec<u64> = sums[..KMEANS_DIMS].iter().map(|s| s / count).collect();
        emit(Record::new(key.to_vec(), encode_u64s(&centroid)));
    }

    /// Centroid `c` always reduces in partition `c % R` — partition-stable.
    fn partition(&self, key: &[u8], num_reduces: u32) -> u32 {
        if num_reduces <= 1 {
            return 0;
        }
        u32::from_be_bytes([key[0], key[1], key[2], key[3]]) % num_reduces
    }

    fn compare_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    fn combine(&self, _key: &[u8], values: &[Vec<u8>]) -> Option<Vec<u8>> {
        let mut sums = [0u64; KMEANS_DIMS + 1];
        for v in values {
            for (d, val) in decode_u64s(v, KMEANS_DIMS + 1).into_iter().enumerate() {
                sums[d] = sums[d].saturating_add(val);
            }
        }
        Some(encode_u64s(&sums))
    }

    fn model(&self) -> WorkloadModel {
        WorkloadModel {
            name: "kmeans",
            // Each point record maps to exactly one assignment record of
            // near-identical size; combiners collapse per-centroid.
            map_output_ratio: 1.05,
            reduce_output_ratio: 0.01,
            record_size: 4 + (KMEANS_DIMS as u64 + 1) * 8 + 8,
            map_cpu_secs_per_gb: 14.0,
            reduce_cpu_secs_per_gb: 2.0,
            deser_secs_per_record: 1.2e-7,
            partition_imbalance: 1.05,
        }
    }
}

impl IterativeWorkload for KMeans {
    fn iter_name(&self) -> &'static str {
        "kmeans"
    }

    fn state_len(&self) -> usize {
        self.k as usize * KMEANS_DIMS
    }

    fn initial_state(&self) -> Vec<u64> {
        self.centroids.as_ref().clone()
    }

    fn instantiate(&self, state: &[u64]) -> Arc<dyn Workload> {
        Arc::new(KMeans { centroids: Arc::new(state.to_vec()), ..self.clone() })
    }

    fn fold(&self, prev: &[u64], outputs: &[Record]) -> Vec<u64> {
        let mut next = prev.to_vec();
        for r in outputs {
            if r.key.len() >= 4 {
                let c = u32::from_be_bytes([r.key[0], r.key[1], r.key[2], r.key[3]]) as usize;
                for (d, val) in decode_u64s(&r.value, KMEANS_DIMS).into_iter().enumerate() {
                    if let Some(slot) = next.get_mut(c * KMEANS_DIMS + d) {
                        *slot = val;
                    }
                }
            }
        }
        next
    }

    fn num_maps(&self) -> u32 {
        self.num_splits
    }

    fn iter_model(&self) -> WorkloadModel {
        self.model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::state_delta_micro;

    #[test]
    fn generation_is_deterministic_and_seed_independent() {
        let w = KMeans::small();
        assert_eq!(w.gen_split(0, 1), w.gen_split(0, 2));
        assert_ne!(w.gen_split(0, 1), w.gen_split(1, 1));
    }

    #[test]
    fn assignment_is_deterministic() {
        let w = KMeans::small();
        let rec = &w.gen_split(0, 1)[3];
        let mut a = Vec::new();
        let mut b = Vec::new();
        w.map(rec, &mut |r| a.push(r));
        w.map(rec, &mut |r| b.push(r));
        assert_eq!(a, b);
        assert_eq!(a.len(), 1, "one assignment record per point");
    }

    #[test]
    fn iterations_converge() {
        let mut w = KMeans::small();
        let mut state = w.initial_state();
        let mut last_delta = u64::MAX;
        for _ in 0..6 {
            let mut by_key: std::collections::BTreeMap<Vec<u8>, Vec<Vec<u8>>> = Default::default();
            for s in 0..w.num_splits {
                for rec in w.gen_split(s, 0) {
                    w.map(&rec, &mut |r| by_key.entry(r.key).or_default().push(r.value));
                }
            }
            let mut outputs = Vec::new();
            for (k, vals) in &by_key {
                w.reduce(k, vals, &mut |r| outputs.push(r));
            }
            let next = w.fold(&state, &outputs);
            let delta = state_delta_micro(&state, &next);
            assert!(delta <= last_delta.max(KMEANS_COORD_RANGE_MICRO), "delta must not explode");
            last_delta = delta;
            state = next.clone();
            w = KMeans { centroids: Arc::new(next), ..w };
        }
        assert!(last_delta < KMEANS_COORD_RANGE_MICRO / 10, "centroids should settle, got {last_delta}");
    }

    #[test]
    fn combine_matches_reduce_presum() {
        let w = KMeans::small();
        let vals: Vec<Vec<u8>> = (0..3).map(|i| encode_u64s(&[i, i * 2, i * 3, i * 4, 1])).collect();
        let combined = w.combine(b"\0\0\0\0".as_slice(), &vals).unwrap();
        let mut direct = Vec::new();
        w.reduce(b"\0\0\0\0", &vals, &mut |r| direct.push(r));
        let mut via_combined = Vec::new();
        w.reduce(b"\0\0\0\0", &[combined], &mut |r| via_combined.push(r));
        assert_eq!(direct, via_combined);
    }
}
