//! A trivially-correct, in-memory reference MapReduce executor.
//!
//! No buffers, no spills, no shuffle — just map, global sort, group,
//! reduce. The real engines are tested against this oracle: whatever
//! failures were injected, a job that "succeeded" must produce exactly the
//! reference output.

use crate::record::Record;
use crate::Workload;

/// Execute `workload` over `num_splits` generated splits and return each
/// reduce partition's output records, in emission order.
pub fn reference_output(
    workload: &dyn Workload,
    num_splits: u32,
    num_reduces: u32,
    seed: u64,
) -> Vec<Vec<Record>> {
    // Map phase.
    let mut intermediate: Vec<Vec<Record>> = vec![Vec::new(); num_reduces.max(1) as usize];
    for split in 0..num_splits {
        for rec in workload.gen_split(split, seed) {
            let buckets = &mut intermediate;
            workload.map(&rec, &mut |out: Record| {
                let p = workload.partition(&out.key, num_reduces.max(1)) as usize;
                buckets[p].push(out);
            });
        }
    }

    // Per-partition sort + group + reduce.
    intermediate
        .into_iter()
        .map(|mut part| {
            part.sort_by(|a, b| workload.compare_keys(&a.key, &b.key).then_with(|| a.value.cmp(&b.value)));
            let mut out = Vec::new();
            let mut i = 0;
            while i < part.len() {
                let group_key = part[i].key.clone();
                let mut values = Vec::new();
                while i < part.len() && workload.same_group(&group_key, &part[i].key) {
                    values.push(part[i].value.clone());
                    i += 1;
                }
                workload.reduce(&group_key, &values, &mut |r| out.push(r));
            }
            out
        })
        .collect()
}

/// Flatten + sort a partitioned output for order-insensitive comparison.
pub fn canonicalize(parts: &[Vec<Record>]) -> Vec<Record> {
    let mut all: Vec<Record> = parts.iter().flatten().cloned().collect();
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SecondarySort, Terasort, Wordcount};

    #[test]
    fn terasort_reference_is_sorted_identity() {
        let w = Terasort::new(200);
        let out = reference_output(&w, 2, 4, 7);
        let total: usize = out.iter().map(Vec::len).sum();
        assert_eq!(total, 400, "identity reduce preserves every record");
        // Within each partition, output keys are sorted; across partitions,
        // ranges are ordered (total-order partitioner).
        for part in &out {
            for w in part.windows(2) {
                assert!(w[0].key <= w[1].key);
            }
        }
        for pair in out.windows(2) {
            if let (Some(last), Some(first)) = (pair[0].last(), pair[1].first()) {
                assert!(last.key <= first.key, "total order across partitions");
            }
        }
    }

    #[test]
    fn wordcount_reference_counts_total_words() {
        let w = Wordcount::new(1000, 10);
        let out = reference_output(&w, 1, 3, 9);
        let total: u64 = out
            .iter()
            .flatten()
            .map(|r| {
                let mut arr = [0u8; 8];
                arr.copy_from_slice(&r.value);
                u64::from_be_bytes(arr)
            })
            .sum();
        assert_eq!(total, 1000, "counts must sum to the number of generated words");
    }

    #[test]
    fn secondarysort_groups_ordered_by_secondary() {
        let w = SecondarySort::new(500);
        let out = reference_output(&w, 1, 4, 3);
        let total: usize = out.iter().map(Vec::len).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn canonicalize_is_order_insensitive() {
        let a = vec![
            vec![Record::new(b"b".to_vec(), b"2".to_vec())],
            vec![Record::new(b"a".to_vec(), b"1".to_vec())],
        ];
        let b = vec![
            vec![Record::new(b"a".to_vec(), b"1".to_vec()), Record::new(b"b".to_vec(), b"2".to_vec())],
            vec![],
        ];
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }

    #[test]
    fn deterministic() {
        let w = Terasort::new(50);
        assert_eq!(reference_output(&w, 2, 3, 1), reference_output(&w, 2, 3, 1));
    }
}
