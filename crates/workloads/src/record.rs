//! Key/value records.

use serde::{Deserialize, Serialize};

/// One `<k, v>` pair. Keys and values are raw bytes; ordering semantics are
/// supplied by the owning [`crate::Workload`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Record {
    pub key: Vec<u8>,
    pub value: Vec<u8>,
}

impl Record {
    pub fn new(key: impl Into<Vec<u8>>, value: impl Into<Vec<u8>>) -> Record {
        Record { key: key.into(), value: value.into() }
    }

    /// Serialized footprint: key + value + the two u32 length prefixes the
    /// segment format uses.
    pub fn wire_size(&self) -> u64 {
        self.key.len() as u64 + self.value.len() as u64 + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_counts_prefixes() {
        let r = Record::new(b"abc".to_vec(), b"de".to_vec());
        assert_eq!(r.wire_size(), 3 + 2 + 8);
    }

    #[test]
    fn derives_order_bytewise() {
        assert!(Record::new(b"a".to_vec(), b"".to_vec()) < Record::new(b"b".to_vec(), b"".to_vec()));
    }
}
