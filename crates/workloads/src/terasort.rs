//! Terasort: sort 100-byte records by their 10-byte key.
//!
//! The identity map/reduce make Terasort a pure test of the shuffle/merge
//! pipeline — which is why the paper uses it for the amplification and
//! replication experiments (its intermediate data equals its input data).

use rand::{RngCore, SeedableRng};
use std::cmp::Ordering;

use crate::model::{constants::*, WorkloadModel};
use crate::record::Record;
use crate::Workload;

/// Terasort with a configurable split size (records per split).
#[derive(Debug, Clone)]
pub struct Terasort {
    pub records_per_split: u32,
}

impl Terasort {
    pub fn new(records_per_split: u32) -> Terasort {
        Terasort { records_per_split }
    }

    /// A small instance for tests: 1000 records (~100 KB) per split.
    pub fn small() -> Terasort {
        Terasort::new(1000)
    }
}

impl Workload for Terasort {
    fn name(&self) -> &'static str {
        "terasort"
    }

    fn gen_split(&self, split_index: u32, seed: u64) -> Vec<Record> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ ((split_index as u64) << 20));
        (0..self.records_per_split)
            .map(|_| {
                let mut key = vec![0u8; TERASORT_KEY_LEN];
                rng.fill_bytes(&mut key);
                let mut value = vec![0u8; TERASORT_VALUE_LEN];
                rng.fill_bytes(&mut value);
                Record { key, value }
            })
            .collect()
    }

    fn map(&self, rec: &Record, emit: &mut dyn FnMut(Record)) {
        emit(rec.clone()); // identity map
    }

    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Record)) {
        for v in values {
            emit(Record::new(key.to_vec(), v.clone())); // identity reduce
        }
    }

    /// Total-order partitioner: uniform random keys split the key space
    /// into equal ranges by the first bytes (TeraSort samples to find these
    /// boundaries; uniform generation makes the boundaries analytic).
    fn partition(&self, key: &[u8], num_reduces: u32) -> u32 {
        if num_reduces <= 1 {
            return 0;
        }
        // Use the first 8 bytes as a big-endian fraction of the key space.
        let mut prefix = [0u8; 8];
        for (i, b) in key.iter().take(8).enumerate() {
            prefix[i] = *b;
        }
        let x = u64::from_be_bytes(prefix);
        // Map [0, 2^64) onto [0, num_reduces) order-preservingly.
        ((x as u128 * num_reduces as u128) >> 64) as u32
    }

    fn compare_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    fn model(&self) -> WorkloadModel {
        WorkloadModel {
            name: "terasort",
            map_output_ratio: 1.0,
            reduce_output_ratio: 1.0,
            record_size: TERASORT_RECORD_WIRE,
            map_cpu_secs_per_gb: 12.0,
            reduce_cpu_secs_per_gb: 2.0,
            deser_secs_per_record: 1.5e-7,
            partition_imbalance: 1.05,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let w = Terasort::small();
        assert_eq!(w.gen_split(3, 42), w.gen_split(3, 42));
        assert_ne!(w.gen_split(3, 42), w.gen_split(4, 42));
        assert_ne!(w.gen_split(3, 42), w.gen_split(3, 43));
    }

    #[test]
    fn record_layout() {
        let w = Terasort::new(10);
        let recs = w.gen_split(0, 1);
        assert_eq!(recs.len(), 10);
        for r in recs {
            assert_eq!(r.key.len(), TERASORT_KEY_LEN);
            assert_eq!(r.value.len(), TERASORT_VALUE_LEN);
            assert_eq!(r.wire_size(), TERASORT_RECORD_WIRE);
        }
    }

    #[test]
    fn map_and_reduce_are_identity() {
        let w = Terasort::small();
        let r = Record::new(b"0123456789".to_vec(), vec![7u8; 90]);
        let mut out = Vec::new();
        w.map(&r, &mut |x| out.push(x));
        assert_eq!(out, vec![r.clone()]);
        let mut red = Vec::new();
        w.reduce(&r.key, std::slice::from_ref(&r.value), &mut |x| red.push(x));
        assert_eq!(red, vec![r]);
    }

    #[test]
    fn partitioner_is_order_preserving() {
        let w = Terasort::small();
        let lo = vec![0u8; 10];
        let hi = vec![0xffu8; 10];
        assert_eq!(w.partition(&lo, 20), 0);
        assert_eq!(w.partition(&hi, 20), 19);
    }

    #[test]
    fn partitioner_is_roughly_uniform() {
        let w = Terasort::new(20_000);
        let recs = w.gen_split(0, 7);
        let n_red = 20u32;
        let mut counts = vec![0u32; n_red as usize];
        for r in &recs {
            counts[w.partition(&r.key, n_red) as usize] += 1;
        }
        let mean = recs.len() as f64 / n_red as f64;
        for c in counts {
            assert!(
                (c as f64) > mean * 0.8 && (c as f64) < mean * 1.2,
                "partition count {c} too far from mean {mean}"
            );
        }
    }

    proptest! {
        /// Keys that compare lower never go to a higher partition.
        #[test]
        fn partition_monotone_in_key(a in proptest::collection::vec(0u8..=255, 10), b in proptest::collection::vec(0u8..=255, 10), n in 1u32..64) {
            let w = Terasort::small();
            let (pa, pb) = (w.partition(&a, n), w.partition(&b, n));
            match a.cmp(&b) {
                Ordering::Less => prop_assert!(pa <= pb),
                Ordering::Greater => prop_assert!(pa >= pb),
                Ordering::Equal => prop_assert_eq!(pa, pb),
            }
            prop_assert!(pa < n);
        }
    }
}
