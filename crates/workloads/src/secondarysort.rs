//! Secondarysort: group by a primary key, order each group by a secondary
//! key — the classic composite-key MapReduce pattern.
//!
//! Its reduce function does real per-group work (verifying/consuming the
//! secondary ordering), which makes it the workload where resuming logged
//! reduce progress pays off the most (the paper observes the largest
//! SFM+ALG gain, 25.8%, on Secondarysort — §V-E).

use rand::{Rng, RngCore, SeedableRng};
use std::cmp::Ordering;

use crate::model::{constants::*, WorkloadModel};
use crate::record::Record;
use crate::Workload;

/// Composite key layout: `primary: u32 (BE) | secondary: u32 (BE)`.
pub fn composite_key(primary: u32, secondary: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(8);
    k.extend_from_slice(&primary.to_be_bytes());
    k.extend_from_slice(&secondary.to_be_bytes());
    k
}

/// Split a composite key into `(primary, secondary)`.
pub fn split_key(key: &[u8]) -> (u32, u32) {
    let mut p = [0u8; 4];
    let mut s = [0u8; 4];
    p.copy_from_slice(&key[0..4]);
    s.copy_from_slice(&key[4..8]);
    (u32::from_be_bytes(p), u32::from_be_bytes(s))
}

#[derive(Debug, Clone)]
pub struct SecondarySort {
    pub records_per_split: u32,
}

impl SecondarySort {
    pub fn new(records_per_split: u32) -> SecondarySort {
        SecondarySort { records_per_split }
    }

    pub fn small() -> SecondarySort {
        SecondarySort::new(1000)
    }
}

impl Workload for SecondarySort {
    fn name(&self) -> &'static str {
        "secondarysort"
    }

    fn gen_split(&self, split_index: u32, seed: u64) -> Vec<Record> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ ((split_index as u64) << 20) ^ 0x2a2a);
        (0..self.records_per_split)
            .map(|_| {
                let primary = rng.random_range(0..SECONDARYSORT_PRIMARIES);
                let secondary: u32 = rng.random();
                let mut payload = vec![0u8; SECONDARYSORT_PAYLOAD_LEN];
                rng.fill_bytes(&mut payload);
                Record::new(composite_key(primary, secondary), payload)
            })
            .collect()
    }

    fn map(&self, rec: &Record, emit: &mut dyn FnMut(Record)) {
        emit(rec.clone()); // the key already carries (primary, secondary)
    }

    /// Emit the group's values in secondary order, tagged with the primary.
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Record)) {
        let (primary, _) = split_key(key);
        for v in values {
            emit(Record::new(primary.to_be_bytes().to_vec(), v.clone()));
        }
    }

    /// Partition by primary key only, so one group lands on one reducer.
    fn partition(&self, key: &[u8], num_reduces: u32) -> u32 {
        if num_reduces <= 1 {
            return 0;
        }
        let (primary, _) = split_key(key);
        primary % num_reduces
    }

    /// Order by the full composite key: primary, then secondary.
    fn compare_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        split_key(a).cmp(&split_key(b))
    }

    /// Group by primary only: adjacent keys with the same primary reduce
    /// together, receiving values in secondary order.
    fn same_group(&self, a: &[u8], b: &[u8]) -> bool {
        split_key(a).0 == split_key(b).0
    }

    fn model(&self) -> WorkloadModel {
        WorkloadModel {
            name: "secondarysort",
            map_output_ratio: 1.0,
            reduce_output_ratio: 0.95,
            record_size: 8 + SECONDARYSORT_PAYLOAD_LEN as u64 + 8,
            map_cpu_secs_per_gb: 15.0,
            // Heavy reduce: per-group processing of ordered secondaries.
            reduce_cpu_secs_per_gb: 45.0,
            deser_secs_per_record: 1.2e-6,
            partition_imbalance: 1.15,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn key_codec_round_trips() {
        let k = composite_key(7, 99);
        assert_eq!(split_key(&k), (7, 99));
        assert_eq!(k.len(), 8);
    }

    #[test]
    fn composite_ordering_primary_then_secondary() {
        let w = SecondarySort::small();
        let a = composite_key(1, 500);
        let b = composite_key(2, 0);
        let c = composite_key(2, 1);
        assert_eq!(w.compare_keys(&a, &b), Ordering::Less);
        assert_eq!(w.compare_keys(&b, &c), Ordering::Less);
        assert_eq!(w.compare_keys(&c, &c), Ordering::Equal);
    }

    #[test]
    fn grouping_ignores_secondary() {
        let w = SecondarySort::small();
        assert!(w.same_group(&composite_key(5, 1), &composite_key(5, 900)));
        assert!(!w.same_group(&composite_key(5, 1), &composite_key(6, 1)));
    }

    #[test]
    fn partition_constant_within_group() {
        let w = SecondarySort::small();
        let p1 = w.partition(&composite_key(42, 0), 7);
        let p2 = w.partition(&composite_key(42, u32::MAX), 7);
        assert_eq!(p1, p2);
    }

    #[test]
    fn generation_deterministic() {
        let w = SecondarySort::small();
        assert_eq!(w.gen_split(1, 5), w.gen_split(1, 5));
        assert_ne!(w.gen_split(1, 5), w.gen_split(2, 5));
    }

    proptest! {
        #[test]
        fn key_codec_prop(p in proptest::num::u32::ANY, s in proptest::num::u32::ANY) {
            prop_assert_eq!(split_key(&composite_key(p, s)), (p, s));
        }

        /// Byte-wise ordering of the BE composite key matches the semantic
        /// composite ordering (so generic sorters can compare bytes).
        #[test]
        fn bytes_order_matches_semantic(p1 in proptest::num::u32::ANY, s1 in proptest::num::u32::ANY,
                                        p2 in proptest::num::u32::ANY, s2 in proptest::num::u32::ANY) {
            let (a, b) = (composite_key(p1, s1), composite_key(p2, s2));
            prop_assert_eq!(a.cmp(&b), (p1, s1).cmp(&(p2, s2)));
        }
    }
}
