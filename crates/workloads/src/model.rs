//! Analytic workload models for the simulator.
//!
//! The discrete-event simulator never materialises records for paper-scale
//! inputs; it needs only the *sizes* that flow through each pipeline stage
//! and the CPU time each stage burns. [`WorkloadModel`] captures those, and
//! the derivation helpers compute per-map / per-partition byte counts the
//! same way the real engine's partitioner would.

use serde::{Deserialize, Serialize};

/// Size ratios and cost coefficients of one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    pub name: &'static str,
    /// Map output bytes per input byte, *after* combining. Terasort ≈ 1.0
    /// (identity), Wordcount ≪ 1 (combiner collapses repeated words),
    /// Secondarysort ≈ 1.0.
    pub map_output_ratio: f64,
    /// Reduce output bytes per shuffled byte. Terasort 1.0 (identity),
    /// Wordcount ≈ 1.0 of its (already tiny) shuffled data,
    /// Secondarysort ≈ 1.0.
    pub reduce_output_ratio: f64,
    /// Mean intermediate record wire size, bytes.
    pub record_size: u64,
    /// Map-function CPU seconds per GB of input (excludes I/O, which the
    /// simulator charges separately against disk/NIC resources).
    pub map_cpu_secs_per_gb: f64,
    /// Reduce-function CPU seconds per GB of shuffled data. Secondarysort
    /// is the most compute-heavy (per-group sorting of secondaries).
    pub reduce_cpu_secs_per_gb: f64,
    /// Per-record deserialization CPU cost, seconds — the cost ALG's log
    /// resume avoids re-paying (§V-E, Fig. 15 discussion).
    pub deser_secs_per_record: f64,
    /// Relative spread of partition sizes (max/mean). 1.0 = perfectly even
    /// (Terasort with a sampled total-order partitioner); Wordcount's
    /// zipf-hash partitions are mildly uneven.
    pub partition_imbalance: f64,
}

impl WorkloadModel {
    /// Intermediate bytes produced by mapping `input_bytes`.
    pub fn intermediate_bytes(&self, input_bytes: u64) -> u64 {
        (input_bytes as f64 * self.map_output_ratio).round() as u64
    }

    /// Bytes of one reduce partition given total intermediate bytes, for
    /// the mean partition; the `largest` flag applies the imbalance factor.
    pub fn partition_bytes(&self, intermediate_bytes: u64, num_reduces: u32, largest: bool) -> u64 {
        if num_reduces == 0 {
            return 0;
        }
        let mean = intermediate_bytes as f64 / num_reduces as f64;
        let v = if largest { mean * self.partition_imbalance } else { mean };
        v.round() as u64
    }

    /// Records in `bytes` of intermediate data.
    pub fn records_in(&self, bytes: u64) -> u64 {
        bytes.checked_div(self.record_size).unwrap_or(0)
    }

    /// Final output bytes of one reducer that shuffled `partition_bytes`.
    pub fn reduce_output_bytes(&self, partition_bytes: u64) -> u64 {
        (partition_bytes as f64 * self.reduce_output_ratio).round() as u64
    }
}

/// Constants shared between the executable and analytic forms.
pub mod constants {
    /// Terasort record layout (the classic 100-byte record).
    pub const TERASORT_KEY_LEN: usize = 10;
    pub const TERASORT_VALUE_LEN: usize = 90;
    pub const TERASORT_RECORD_WIRE: u64 = 10 + 90 + 8;

    /// Wordcount vocabulary and zipf skew used by the generator.
    pub const WORDCOUNT_VOCABULARY: usize = 50_000;
    pub const WORDCOUNT_ZIPF_S: f64 = 1.1;
    pub const WORDCOUNT_MEAN_WORD_LEN: usize = 8;

    /// Secondarysort composite key: primary u32 + secondary u32 (big-endian)
    /// and a payload.
    pub const SECONDARYSORT_PAYLOAD_LEN: usize = 56;
    pub const SECONDARYSORT_PRIMARIES: u32 = 1 << 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WorkloadModel {
        WorkloadModel {
            name: "test",
            map_output_ratio: 1.0,
            reduce_output_ratio: 1.0,
            record_size: 108,
            map_cpu_secs_per_gb: 2.0,
            reduce_cpu_secs_per_gb: 2.0,
            deser_secs_per_record: 1e-7,
            partition_imbalance: 1.2,
        }
    }

    #[test]
    fn byte_flow() {
        let m = model();
        assert_eq!(m.intermediate_bytes(1000), 1000);
        assert_eq!(m.partition_bytes(1000, 10, false), 100);
        assert_eq!(m.partition_bytes(1000, 10, true), 120);
        assert_eq!(m.partition_bytes(1000, 0, false), 0);
        assert_eq!(m.records_in(1080), 10);
        assert_eq!(m.reduce_output_bytes(500), 500);
    }

    #[test]
    fn shrinking_workload() {
        let m = WorkloadModel { map_output_ratio: 0.05, ..model() };
        assert_eq!(m.intermediate_bytes(10_000), 500);
    }
}
