//! Wordcount: count occurrences of zipf-distributed words.
//!
//! Wordcount's combiner collapses the map output dramatically, so its
//! shuffle is tiny relative to its input — which is why the paper runs it
//! with a *single* ReduceTask and uses it for the temporal-amplification
//! timeline (Figs. 3 and 10): one long-running reducer whose failure stalls
//! the whole job.

use rand::distr::Distribution;
use rand::SeedableRng;
use rand_distr::Zipf;

use crate::model::{constants::*, WorkloadModel};
use crate::record::Record;
use crate::Workload;

/// Wordcount over synthetic zipf text.
#[derive(Debug, Clone)]
pub struct Wordcount {
    /// Words per input split (each input record is a "line" of words).
    pub words_per_split: u32,
    pub words_per_line: u32,
}

impl Wordcount {
    pub fn new(words_per_split: u32, words_per_line: u32) -> Wordcount {
        Wordcount { words_per_split, words_per_line: words_per_line.max(1) }
    }

    pub fn small() -> Wordcount {
        Wordcount::new(5_000, 20)
    }

    /// Deterministic word spelling for a vocabulary rank.
    fn word(rank: u64) -> Vec<u8> {
        format!("w{rank:07}").into_bytes()
    }
}

fn parse_count(v: &[u8]) -> u64 {
    let mut arr = [0u8; 8];
    arr[..v.len().min(8)].copy_from_slice(&v[..v.len().min(8)]);
    u64::from_be_bytes(arr)
}

fn encode_count(c: u64) -> Vec<u8> {
    c.to_be_bytes().to_vec()
}

impl Workload for Wordcount {
    fn name(&self) -> &'static str {
        "wordcount"
    }

    fn gen_split(&self, split_index: u32, seed: u64) -> Vec<Record> {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed ^ ((split_index as u64) << 20) ^ 0x5eed);
        let zipf = Zipf::new(WORDCOUNT_VOCABULARY as f64, WORDCOUNT_ZIPF_S).expect("valid zipf parameters");
        let lines = self.words_per_split.div_ceil(self.words_per_line);
        (0..lines)
            .map(|i| {
                let mut line =
                    Vec::with_capacity((self.words_per_line as usize) * (WORDCOUNT_MEAN_WORD_LEN + 1));
                for j in 0..self.words_per_line {
                    if i * self.words_per_line + j >= self.words_per_split {
                        break;
                    }
                    let rank = zipf.sample(&mut rng) as u64;
                    line.extend_from_slice(&Wordcount::word(rank));
                    line.push(b' ');
                }
                Record::new(format!("line{i}").into_bytes(), line)
            })
            .collect()
    }

    fn map(&self, rec: &Record, emit: &mut dyn FnMut(Record)) {
        for word in rec.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            emit(Record::new(word.to_vec(), encode_count(1)));
        }
    }

    fn combine(&self, _key: &[u8], values: &[Vec<u8>]) -> Option<Vec<u8>> {
        Some(encode_count(values.iter().map(|v| parse_count(v)).sum()))
    }

    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Record)) {
        let total: u64 = values.iter().map(|v| parse_count(v)).sum();
        emit(Record::new(key.to_vec(), encode_count(total)));
    }

    /// Hash partitioner (Hadoop default for Wordcount).
    fn partition(&self, key: &[u8], num_reduces: u32) -> u32 {
        if num_reduces <= 1 {
            return 0;
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in key {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % num_reduces as u64) as u32
    }

    fn model(&self) -> WorkloadModel {
        WorkloadModel {
            name: "wordcount",
            // After map-side combining, intermediate data is a small
            // fraction of input: bounded by vocabulary x maps, empirically
            // ~6% for 10 GB over this vocabulary.
            map_output_ratio: 0.06,
            reduce_output_ratio: 0.9,
            record_size: (WORDCOUNT_MEAN_WORD_LEN + 8 + 8) as u64,
            map_cpu_secs_per_gb: 60.0, // tokenisation + combining dominate
            reduce_cpu_secs_per_gb: 30.0,
            deser_secs_per_record: 8e-7,
            partition_imbalance: 1.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_deterministic_and_nonempty() {
        let w = Wordcount::small();
        let a = w.gen_split(0, 9);
        assert_eq!(a, w.gen_split(0, 9));
        assert!(!a.is_empty());
        let words: usize =
            a.iter().map(|r| r.value.split(|&b| b == b' ').filter(|w| !w.is_empty()).count()).sum();
        assert_eq!(words, 5_000);
    }

    #[test]
    fn map_emits_one_per_word() {
        let w = Wordcount::small();
        let rec = Record::new(b"l".to_vec(), b"a b a ".to_vec());
        let mut out = Vec::new();
        w.map(&rec, &mut |r| out.push(r));
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].key, b"a");
        assert_eq!(parse_count(&out[0].value), 1);
    }

    #[test]
    fn combine_and_reduce_sum() {
        let w = Wordcount::small();
        let vals = vec![encode_count(2), encode_count(3)];
        assert_eq!(parse_count(&w.combine(b"x", &vals).unwrap()), 5);
        let mut out = Vec::new();
        w.reduce(b"x", &vals, &mut |r| out.push(r));
        assert_eq!(out.len(), 1);
        assert_eq!(parse_count(&out[0].value), 5);
    }

    #[test]
    fn zipf_skews_counts() {
        // The most common word should appear far more often than the median.
        let w = Wordcount::new(20_000, 50);
        let recs = w.gen_split(0, 3);
        let mut counts = std::collections::HashMap::new();
        for r in &recs {
            let mut emit = |rec: Record| {
                *counts.entry(rec.key).or_insert(0u64) += 1;
            };
            w.map(r, &mut emit);
        }
        let max = *counts.values().max().unwrap();
        let distinct = counts.len() as u64;
        assert!(max > 20_000 / distinct * 10, "zipf head should dominate: max={max}, distinct={distinct}");
    }

    #[test]
    fn partitioner_covers_range() {
        let w = Wordcount::small();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(w.partition(&Wordcount::word(i), 8));
        }
        assert_eq!(seen.len(), 8, "all partitions receive keys");
        assert!(seen.iter().all(|&p| p < 8));
    }
}
