//! Pagerank: the canonical iterative workload (M3R's motivating shape).
//!
//! One iteration is one MapReduce job: the map scatters each vertex's
//! current rank across its out-edges, the reduce gathers contributions and
//! applies the damping update. The chain layer (`alm-mem`) re-instantiates
//! the workload each iteration with the folded rank vector, so a single
//! instance stays a deterministic function of `(split, seed)` — the
//! property map re-execution relies on.
//!
//! All arithmetic is fixed-point (micro-units, `u64`) so iteration state is
//! byte-stable across runs, engines and resident-cache capacities.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::iterative::{be_u32, be_u64, mix64, IterativeWorkload, RANK_ONE_MICRO};
use crate::model::WorkloadModel;
use crate::record::Record;
use crate::Workload;

/// Out-degree of every vertex (targets drawn by a seeded mixer).
pub const PAGERANK_OUT_DEGREE: u32 = 8;
/// Damping factor in percent (the classic 0.85).
pub const PAGERANK_DAMPING_PCT: u64 = 85;

/// Pagerank over a synthetic graph of `num_splits * vertices_per_split`
/// vertices, carrying the current iteration's rank vector.
#[derive(Debug, Clone)]
pub struct Pagerank {
    pub vertices_per_split: u32,
    pub num_splits: u32,
    /// Edge-target derivation seed (fixed for the whole chain so the graph
    /// never changes between iterations).
    pub graph_seed: u64,
    /// Current ranks in micro-units, one per vertex.
    pub ranks: Arc<Vec<u64>>,
}

impl Pagerank {
    /// Iteration-0 instance: uniform ranks of 1.0 per vertex.
    pub fn initial(vertices_per_split: u32, num_splits: u32, graph_seed: u64) -> Pagerank {
        let n = (vertices_per_split as usize) * (num_splits as usize);
        Pagerank { vertices_per_split, num_splits, graph_seed, ranks: Arc::new(vec![RANK_ONE_MICRO; n]) }
    }

    /// A small instance for tests and kind-level plumbing.
    pub fn small() -> Pagerank {
        Pagerank::initial(200, 4, 7)
    }

    fn num_vertices(&self) -> u32 {
        self.vertices_per_split * self.num_splits
    }

    /// The `j`-th out-edge target of vertex `u` — a pure mixer so maps can
    /// re-derive the (static) graph without carrying an edge list.
    fn edge_target(&self, u: u32, j: u32) -> u32 {
        let n = self.num_vertices().max(1);
        (mix64(self.graph_seed ^ ((u as u64) << 32) ^ j as u64) % n as u64) as u32
    }
}

impl Workload for Pagerank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn gen_split(&self, split_index: u32, _seed: u64) -> Vec<Record> {
        // Input = the vertex's current rank. The rank vector is chain state
        // (constructor-injected), so the per-job seed plays no role here —
        // re-executed maps of the same job instance regenerate identically.
        let base = split_index * self.vertices_per_split;
        (0..self.vertices_per_split)
            .map(|i| {
                let u = base + i;
                let rank = self.ranks.get(u as usize).copied().unwrap_or(RANK_ONE_MICRO);
                Record::new(be_u32(u), be_u64(rank))
            })
            .collect()
    }

    fn map(&self, rec: &Record, emit: &mut dyn FnMut(Record)) {
        let u = u32::from_be_bytes([rec.key[0], rec.key[1], rec.key[2], rec.key[3]]);
        let mut rank = [0u8; 8];
        rank.copy_from_slice(&rec.value[..8]);
        let rank = u64::from_be_bytes(rank);
        let share = rank / PAGERANK_OUT_DEGREE as u64;
        for j in 0..PAGERANK_OUT_DEGREE {
            emit(Record::new(be_u32(self.edge_target(u, j)), be_u64(share)));
        }
        // A zero self-contribution guarantees every vertex reaches its
        // reducer even with no in-edges, so the output covers all vertices.
        emit(Record::new(be_u32(u), be_u64(0)));
    }

    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Record)) {
        let mut sum: u64 = 0;
        for v in values {
            let mut b = [0u8; 8];
            b.copy_from_slice(&v[..8]);
            sum = sum.saturating_add(u64::from_be_bytes(b));
        }
        let new_rank =
            (RANK_ONE_MICRO * (100 - PAGERANK_DAMPING_PCT) + sum.saturating_mul(PAGERANK_DAMPING_PCT)) / 100;
        emit(Record::new(key.to_vec(), be_u64(new_rank)));
    }

    /// Partition-stable by construction: vertex `u` always reduces in
    /// partition `u % R`, which is what lets the chain keep per-partition
    /// state resident on a fixed home node.
    fn partition(&self, key: &[u8], num_reduces: u32) -> u32 {
        if num_reduces <= 1 {
            return 0;
        }
        u32::from_be_bytes([key[0], key[1], key[2], key[3]]) % num_reduces
    }

    fn compare_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    fn combine(&self, _key: &[u8], values: &[Vec<u8>]) -> Option<Vec<u8>> {
        // Contribution sums are associative, so partial map-side sums fold
        // safely before the damping update (applied once, at reduce).
        let mut sum: u64 = 0;
        for v in values {
            let mut b = [0u8; 8];
            b.copy_from_slice(v.get(..8)?);
            sum = sum.saturating_add(u64::from_be_bytes(b));
        }
        Some(be_u64(sum).to_vec())
    }

    fn model(&self) -> WorkloadModel {
        WorkloadModel {
            name: "pagerank",
            // Each 20-byte input record scatters OUT_DEGREE + 1 same-sized
            // records; the combiner collapses roughly half the duplicates.
            map_output_ratio: (PAGERANK_OUT_DEGREE + 1) as f64 * 0.5,
            reduce_output_ratio: 1.0 / ((PAGERANK_OUT_DEGREE + 1) as f64 * 0.5),
            record_size: 4 + 8 + 8,
            map_cpu_secs_per_gb: 6.0,
            reduce_cpu_secs_per_gb: 3.0,
            deser_secs_per_record: 1.0e-7,
            partition_imbalance: 1.03,
        }
    }
}

impl IterativeWorkload for Pagerank {
    fn iter_name(&self) -> &'static str {
        "pagerank"
    }

    fn state_len(&self) -> usize {
        self.num_vertices() as usize
    }

    fn initial_state(&self) -> Vec<u64> {
        vec![RANK_ONE_MICRO; self.state_len()]
    }

    fn instantiate(&self, state: &[u64]) -> Arc<dyn Workload> {
        Arc::new(Pagerank { ranks: Arc::new(state.to_vec()), ..self.clone() })
    }

    fn fold(&self, prev: &[u64], outputs: &[Record]) -> Vec<u64> {
        let mut next = prev.to_vec();
        for r in outputs {
            if r.key.len() >= 4 && r.value.len() >= 8 {
                let u = u32::from_be_bytes([r.key[0], r.key[1], r.key[2], r.key[3]]) as usize;
                let mut b = [0u8; 8];
                b.copy_from_slice(&r.value[..8]);
                if let Some(slot) = next.get_mut(u) {
                    *slot = u64::from_be_bytes(b);
                }
            }
        }
        next
    }

    fn num_maps(&self) -> u32 {
        self.num_splits
    }

    fn iter_model(&self) -> WorkloadModel {
        self.model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_independent() {
        let w = Pagerank::small();
        assert_eq!(w.gen_split(1, 42), w.gen_split(1, 43), "state, not the seed, drives input");
        assert_ne!(w.gen_split(1, 42), w.gen_split(2, 42));
    }

    #[test]
    fn graph_is_static_across_instances() {
        let a = Pagerank::small();
        let b = a.instantiate(&a.initial_state());
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.map(&a.gen_split(0, 1)[0], &mut |r| out_a.push(r));
        b.map(&a.gen_split(0, 1)[0], &mut |r| out_b.push(r));
        assert_eq!(out_a, out_b, "edge targets must not depend on the rank vector");
    }

    #[test]
    fn one_iteration_preserves_total_rank_mass_roughly() {
        let w = Pagerank::initial(50, 2, 3);
        let state = w.initial_state();
        // Run map+reduce by hand over all splits.
        let mut by_key: std::collections::BTreeMap<Vec<u8>, Vec<Vec<u8>>> = Default::default();
        for s in 0..w.num_splits {
            for rec in w.gen_split(s, 9) {
                w.map(&rec, &mut |r| by_key.entry(r.key).or_default().push(r.value));
            }
        }
        let mut outputs = Vec::new();
        for (k, vals) in &by_key {
            w.reduce(k, vals, &mut |r| outputs.push(r));
        }
        let next = w.fold(&state, &outputs);
        assert_eq!(next.len(), state.len());
        let total: u64 = next.iter().sum();
        let expect = RANK_ONE_MICRO * state.len() as u64;
        // Damping keeps total mass near N (integer division loses slivers).
        assert!(total > expect * 9 / 10 && total < expect * 11 / 10, "total {total} vs {expect}");
        assert_ne!(next, state, "the update must move ranks off uniform");
    }

    #[test]
    fn partitioning_is_stable_mod_r() {
        let w = Pagerank::small();
        for u in [0u32, 1, 99, 799] {
            assert_eq!(w.partition(&be_u32(u), 4), u % 4);
        }
        assert_eq!(w.partition(&be_u32(7), 1), 0);
    }

    #[test]
    fn combiner_sums_shares() {
        let w = Pagerank::small();
        let out = w.combine(&be_u32(0), &[be_u64(10).to_vec(), be_u64(32).to_vec()]).unwrap();
        assert_eq!(out, be_u64(42).to_vec());
    }
}
