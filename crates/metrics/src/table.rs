//! Aligned text tables — the unit a paper "table" is made of.

use serde::{Deserialize, Serialize};

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TextTable {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> TextTable {
        TextTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics in debug builds if the arity mismatches the
    /// header (a malformed table is a harness bug, not a data condition).
    pub fn row(&mut self, cells: &[String]) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity must match header");
        self.rows.push(cells.to_vec());
    }

    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Render as a GitHub-flavoured markdown table (title as a heading),
    /// for reports destined for READMEs / PR bodies rather than consoles.
    pub fn render_markdown(&self) -> String {
        let cell = |c: &str| c.replace('|', "\\|");
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!(
            "| {} |\n",
            self.headers.iter().map(|h| cell(h)).collect::<Vec<_>>().join(" | ")
        ));
        out.push_str(&format!("|{}\n", " --- |".repeat(self.headers.len())));
        for r in &self.rows {
            out.push_str(&format!("| {} |\n", r.iter().map(|c| cell(c)).collect::<Vec<_>>().join(" | ")));
        }
        out
    }

    /// Render with columns padded to their widest cell.
    pub fn render_text(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("## {}\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate().take(ncols) {
                line.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Table II", &["Type", "Point", "Additional Failures", "Execution Time"]);
        t.row(&["YARN".into(), "10%".into(), "2".into(), "429 s".into()]);
        t.row(&["SFM".into(), "10%".into(), "0".into(), "435 s".into()]);
        let txt = t.render_text();
        assert!(txt.contains("Table II"));
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
                                    // Header columns align with row columns.
        let hpos = lines[1].find("Point").unwrap();
        assert_eq!(&lines[3][hpos..hpos + 3], "10%");
    }

    #[test]
    fn renders_markdown() {
        let mut t = TextTable::new("Table II", &["Type", "Additional Failures"]);
        t.row(&["YARN".into(), "2".into()]);
        t.row(&["SFM|ALG".into(), "0".into()]);
        let md = t.render_markdown();
        assert!(md.starts_with("### Table II\n"));
        assert!(md.contains("| Type | Additional Failures |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("| SFM\\|ALG | 0 |"), "pipes must be escaped: {md}");
    }

    #[test]
    fn row_display_converts() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.row_display(&[&1.5f64, &"x"]);
        assert_eq!(t.rows[0], vec!["1.5".to_string(), "x".to_string()]);
    }
}
