//! Event timelines for the profiling figures.
//!
//! Figures 3, 4 and 10 of the paper are *timelines*: reduce-phase progress
//! over wall-clock time annotated with failure events ("node crashes at
//! 48 s", "scheduler detects at 129 s", "second failure at 180 s").
//! [`Timeline`] captures both the sampled progress curve and the discrete
//! annotations.

use serde::{Deserialize, Serialize};

/// A discrete annotated moment on a timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    pub at_secs: f64,
    pub label: String,
}

/// Progress-over-time with annotations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Timeline {
    pub name: String,
    /// `(seconds, progress in [0,1])` samples, in time order.
    pub samples: Vec<(f64, f64)>,
    pub annotations: Vec<Annotation>,
}

impl Timeline {
    pub fn new(name: impl Into<String>) -> Timeline {
        Timeline { name: name.into(), ..Timeline::default() }
    }

    /// Record a progress sample; out-of-order samples are rejected
    /// (debug-asserted) to keep the curve well-formed.
    pub fn sample(&mut self, at_secs: f64, progress: f64) {
        debug_assert!(
            self.samples.last().is_none_or(|&(t, _)| t <= at_secs),
            "timeline samples must be appended in time order"
        );
        self.samples.push((at_secs, progress.clamp(0.0, 1.0)));
    }

    pub fn annotate(&mut self, at_secs: f64, label: impl Into<String>) {
        self.annotations.push(Annotation { at_secs, label: label.into() });
    }

    /// Time of the last sample.
    pub fn end_secs(&self) -> f64 {
        self.samples.last().map_or(0.0, |&(t, _)| t)
    }

    /// First time progress reached `p`, by linear scan.
    pub fn time_to_progress(&self, p: f64) -> Option<f64> {
        self.samples.iter().find(|&&(_, v)| v >= p).map(|&(t, _)| t)
    }

    /// Longest interval during which progress did not increase — the
    /// "stall" the temporal-amplification analysis highlights.
    pub fn longest_stall_secs(&self) -> f64 {
        let mut best = 0.0f64;
        let mut stall_start: Option<f64> = None;
        let mut last_progress = f64::NEG_INFINITY;
        for &(t, p) in &self.samples {
            if p > last_progress {
                if let Some(s) = stall_start.take() {
                    best = best.max(t - s);
                }
                last_progress = p;
                stall_start = Some(t);
            }
        }
        if let (Some(s), Some(&(t, _))) = (stall_start, self.samples.last()) {
            best = best.max(t - s);
        }
        best
    }

    /// ASCII rendering: a coarse progress strip plus the annotations.
    pub fn render_text(&self) -> String {
        let mut out = format!("## timeline: {}\n", self.name);
        for &(t, p) in &self.samples {
            let cols = (p * 50.0).round() as usize;
            out.push_str(&format!(
                "{t:>8.1}s |{}{}| {:5.1}%\n",
                "#".repeat(cols),
                " ".repeat(50 - cols),
                p * 100.0
            ));
        }
        for a in &self.annotations {
            out.push_str(&format!("  @ {:>7.1}s  {}\n", a.at_secs, a.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_and_queries() {
        let mut tl = Timeline::new("wordcount reduce");
        tl.sample(0.0, 0.0);
        tl.sample(10.0, 0.2);
        tl.sample(48.0, 0.5);
        tl.sample(129.0, 0.5); // stall: crash + detection window
        tl.sample(180.0, 0.8);
        tl.sample(200.0, 1.0);
        tl.annotate(48.0, "node crash");
        assert_eq!(tl.end_secs(), 200.0);
        assert_eq!(tl.time_to_progress(1.0), Some(200.0));
        assert_eq!(tl.time_to_progress(0.5), Some(48.0));
        // The stall runs from the sample at 48 until progress rises at 180.
        assert!((tl.longest_stall_secs() - 132.0).abs() < 1e-9);
    }

    #[test]
    fn stall_of_monotone_curve_is_sample_gap() {
        let mut tl = Timeline::new("t");
        tl.sample(0.0, 0.1);
        tl.sample(1.0, 0.2);
        tl.sample(2.0, 0.3);
        assert!(tl.longest_stall_secs() <= 1.0 + 1e-9);
    }

    #[test]
    fn progress_clamped() {
        let mut tl = Timeline::new("t");
        tl.sample(0.0, -3.0);
        tl.sample(1.0, 7.0);
        assert_eq!(tl.samples[0].1, 0.0);
        assert_eq!(tl.samples[1].1, 1.0);
    }

    #[test]
    fn render_has_all_rows() {
        let mut tl = Timeline::new("t");
        tl.sample(0.0, 0.0);
        tl.sample(5.0, 1.0);
        tl.annotate(2.5, "failure injected");
        let txt = tl.render_text();
        assert!(txt.contains("failure injected"));
        assert_eq!(txt.lines().count(), 4);
    }
}
