//! Summary statistics over repeated runs.
//!
//! The paper reports "the average of three test runs" (§V-B); [`Summary`]
//! is that aggregation, with enough extra (std-dev, min/max) to judge run
//! stability.

use serde::{Deserialize, Serialize};

/// Aggregate of a set of samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarise samples; empty input yields an all-zero summary with n=0.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, std_dev: var.sqrt(), min, max }
    }
}

/// Percentage improvement of `candidate` over `baseline` where *smaller is
/// better* (execution / recovery time): `(baseline - candidate) / baseline`.
///
/// Returns 0 for a non-positive baseline.
pub fn improvement_pct(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - candidate) / baseline * 100.0
    }
}

/// Percentage slowdown of `candidate` relative to `baseline` (positive when
/// candidate is slower).
pub fn slowdown_pct(baseline: f64, candidate: f64) -> f64 {
    -improvement_pct(baseline, candidate)
}

/// Nearest-rank percentile of `samples` (`p` in 0..=100). Sorts a copy —
/// callers keep their ordering. Empty input yields 0; NaNs sort last.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank: the smallest value with at least p% of samples <= it.
    let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Median (50th percentile, nearest-rank).
pub fn p50(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Tail latency (99th percentile, nearest-rank).
pub fn p99(samples: &[f64]) -> f64 {
    percentile(samples, 99.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn improvement_direction() {
        // Candidate twice as fast: 50% improvement.
        assert!((improvement_pct(100.0, 50.0) - 50.0).abs() < 1e-12);
        // Candidate slower: negative improvement, positive slowdown.
        assert!(improvement_pct(100.0, 150.0) < 0.0);
        assert!((slowdown_pct(100.0, 150.0) - 50.0).abs() < 1e-12);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(p50(&v), 3.0);
        assert_eq!(p99(&v), 5.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(p50(&[7.0]), 7.0);
    }

    proptest! {
        #[test]
        fn mean_within_min_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = Summary::of(&samples);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
        }

        #[test]
        fn percentile_is_a_sample_and_monotone(
            samples in proptest::collection::vec(-1e6f64..1e6, 1..50),
            lo in 0.0f64..100.0,
            hi in 0.0f64..100.0,
        ) {
            let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
            let a = percentile(&samples, lo);
            let b = percentile(&samples, hi);
            prop_assert!(samples.contains(&a));
            prop_assert!(a <= b);
        }
    }
}
