//! Summary statistics over repeated runs.
//!
//! The paper reports "the average of three test runs" (§V-B); [`Summary`]
//! is that aggregation, with enough extra (std-dev, min/max) to judge run
//! stability.

use serde::{Deserialize, Serialize};

/// Aggregate of a set of samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarise samples; empty input yields an all-zero summary with n=0.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary { n: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0 };
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary { n, mean, std_dev: var.sqrt(), min, max }
    }
}

/// Percentage improvement of `candidate` over `baseline` where *smaller is
/// better* (execution / recovery time): `(baseline - candidate) / baseline`.
///
/// Returns 0 for a non-positive baseline.
pub fn improvement_pct(baseline: f64, candidate: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - candidate) / baseline * 100.0
    }
}

/// Percentage slowdown of `candidate` relative to `baseline` (positive when
/// candidate is slower).
pub fn slowdown_pct(baseline: f64, candidate: f64) -> f64 {
    -improvement_pct(baseline, candidate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std_dev - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn improvement_direction() {
        // Candidate twice as fast: 50% improvement.
        assert!((improvement_pct(100.0, 50.0) - 50.0).abs() < 1e-12);
        // Candidate slower: negative improvement, positive slowdown.
        assert!(improvement_pct(100.0, 150.0) < 0.0);
        assert!((slowdown_pct(100.0, 150.0) - 50.0).abs() < 1e-12);
        assert_eq!(improvement_pct(0.0, 5.0), 0.0);
    }

    proptest! {
        #[test]
        fn mean_within_min_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = Summary::of(&samples);
            prop_assert!(s.min <= s.mean + 1e-9);
            prop_assert!(s.mean <= s.max + 1e-9);
            prop_assert!(s.std_dev >= 0.0);
        }
    }
}
