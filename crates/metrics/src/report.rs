//! Whole-experiment reports.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::series::Series;
use crate::table::TextTable;
use crate::timeline::Timeline;

/// Everything one figure/table reproduction produced: parameterisation,
/// series/tables/timelines, and free-form observations. Renders as text for
/// the console and serialises to JSON for EXPERIMENTS.md bookkeeping.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "fig8" or "table2".
    pub id: String,
    /// Human title, e.g. "ALG vs YARN under single ReduceTask failures".
    pub title: String,
    /// Parameters the run used (workload, sizes, seed, modes).
    pub params: BTreeMap<String, String>,
    pub series: Vec<Series>,
    pub tables: Vec<TextTable>,
    pub timelines: Vec<Timeline>,
    /// Headline observations, e.g. computed average improvements.
    pub notes: Vec<String>,
}

impl ExperimentReport {
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> ExperimentReport {
        ExperimentReport { id: id.into(), title: title.into(), ..ExperimentReport::default() }
    }

    pub fn param(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.params.insert(key.into(), value.to_string());
        self
    }

    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    pub fn render_text(&self) -> String {
        let mut out = format!("==== {} — {} ====\n", self.id, self.title);
        if !self.params.is_empty() {
            out.push_str("params: ");
            out.push_str(&self.params.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(", "));
            out.push('\n');
        }
        for t in &self.tables {
            out.push('\n');
            out.push_str(&t.render_text());
        }
        for s in &self.series {
            out.push('\n');
            out.push_str(&s.render_text());
        }
        for tl in &self.timelines {
            out.push('\n');
            out.push_str(&tl.render_text());
        }
        if !self.notes.is_empty() {
            out.push_str("\nnotes:\n");
            for n in &self.notes {
                out.push_str(&format!("  - {n}\n"));
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_json() {
        let mut r = ExperimentReport::new("fig8", "ALG vs YARN");
        r.param("workload", "terasort").param("seed", 42);
        let mut s = Series::new("yarn", "progress (%)", "time (s)");
        s.push(10.0, 100.0);
        r.series.push(s);
        r.note("avg improvement 15.4%");
        let json = r.to_json();
        let back: ExperimentReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn render_includes_everything() {
        let mut r = ExperimentReport::new("fig3", "temporal amplification");
        r.param("workload", "wordcount");
        let mut tl = Timeline::new("reduce progress");
        tl.sample(0.0, 0.0);
        tl.annotate(48.0, "node crash");
        r.timelines.push(tl);
        r.note("second failure observed");
        let txt = r.render_text();
        for needle in ["fig3", "workload=wordcount", "node crash", "second failure"] {
            assert!(txt.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn series_lookup() {
        let mut r = ExperimentReport::new("x", "y");
        r.series.push(Series::new("alg", "x", "y"));
        assert!(r.series_named("alg").is_some());
        assert!(r.series_named("nope").is_none());
    }
}
