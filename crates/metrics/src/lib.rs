//! Experiment measurement and reporting.
//!
//! The benchmark harness reproduces every figure and table of the paper; to
//! do that uniformly each experiment produces an [`report::ExperimentReport`]
//! made of named [`series::Series`] (figures) and [`table::TextTable`]s
//! (tables), which render both as aligned text for the console and as JSON
//! for EXPERIMENTS.md bookkeeping.

#![forbid(unsafe_code)]

pub mod report;
pub mod series;
pub mod stats;
pub mod table;
pub mod timeline;

pub use report::ExperimentReport;
pub use series::Series;
pub use stats::{p50, p99, percentile, Summary};
pub use table::TextTable;
pub use timeline::Timeline;
