//! Named data series — the unit a "figure" is made of.

use serde::{Deserialize, Serialize};

/// A named sequence of `(x, y)` points, e.g. "YARN execution time vs
/// failure-injection progress".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    pub name: String,
    /// Axis labels for rendering ("progress (%)", "time (s)").
    pub x_label: String,
    pub y_label: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>, x_label: impl Into<String>, y_label: impl Into<String>) -> Series {
        Series { name: name.into(), x_label: x_label.into(), y_label: y_label.into(), points: Vec::new() }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at a given x, if a point with exactly that x exists.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }

    pub fn min_y(&self) -> Option<f64> {
        self.points.iter().map(|&(_, y)| y).fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.min(y))))
    }

    /// Mean of y values (used to report "on average X% improvement").
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            0.0
        } else {
            self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
        }
    }

    /// Render as aligned two-column text.
    pub fn render_text(&self) -> String {
        let mut out = format!("# {}  [{} vs {}]\n", self.name, self.y_label, self.x_label);
        for (x, y) in &self.points {
            out.push_str(&format!("{x:>12.3}  {y:>12.3}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Series {
        let mut s = Series::new("yarn", "progress", "seconds");
        s.push(10.0, 100.0);
        s.push(50.0, 130.0);
        s.push(90.0, 160.0);
        s
    }

    #[test]
    fn accessors() {
        let s = s();
        assert_eq!(s.len(), 3);
        assert_eq!(s.y_at(50.0), Some(130.0));
        assert_eq!(s.y_at(51.0), None);
        assert_eq!(s.max_y(), Some(160.0));
        assert_eq!(s.min_y(), Some(100.0));
        assert!((s.mean_y() - 130.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = Series::new("e", "x", "y");
        assert!(s.is_empty());
        assert_eq!(s.max_y(), None);
        assert_eq!(s.mean_y(), 0.0);
    }

    #[test]
    fn text_rendering_contains_points() {
        let txt = s().render_text();
        assert!(txt.contains("yarn"));
        assert!(txt.contains("100.000"));
        assert_eq!(txt.lines().count(), 4);
    }
}
