//! `alm-sched`: multi-tenant scheduling over the ALM failure models.
//!
//! The single-job engines answer *how long does recovery take*; this crate
//! answers the warehouse question the paper's motivation opens with: when a
//! node dies in a **shared** cluster, who pays? A tenant whose reducers are
//! preempted by `FetchFailureLimit` re-queues work through the same
//! scheduler every other tenant is waiting on, so amplification escapes the
//! wounded job and becomes a cross-tenant phenomenon — and how far it
//! spreads depends on the scheduling policy in force.
//!
//! Layers:
//!
//! * [`config`] — [`SchedConfig`] / [`TenantSpec`], validated under the
//!   same C1 config-coverage lint as `YarnConfig`.
//! * [`policy`] — the [`SchedPolicy`] trait and its three implementations:
//!   global [`FifoPolicy`], guaranteed-share [`CapacityPolicy`], weighted
//!   max-min [`FairPolicy`].
//! * [`engine`] — the task-level warehouse DES: slot contention on
//!   1000+-node topologies, node/rack crashes, MOF-loss semantics per
//!   [`alm_types::RecoveryMode`].
//! * [`report`] — per-job and per-tenant results, cross-tenant
//!   amplification, byte-stable canonical JSON.
//! * [`campaign`] — reproducible synthetic campaigns and the
//!   deterministic parallel seed executor [`run_seeds`].

#![forbid(unsafe_code)]

pub mod campaign;
pub mod config;
pub mod engine;
pub mod policy;
pub mod report;

pub use campaign::{run_seeds, WarehouseCampaign};
pub use config::{validate_tenants, SchedConfig, SchedPolicyKind, TenantSpec};
pub use engine::{Warehouse, WarehouseFault, WarehouseJob, WarehouseSpec};
pub use policy::{CapacityPolicy, FairPolicy, FifoPolicy, SchedPolicy, SchedView, TenantId, TenantView};
pub use report::{JobOutcome, TenantRow, WarehouseReport};
