//! Scheduler configuration surface.
//!
//! Like `YarnConfig`, these structs are an *experiment surface*: every
//! field shifts which tenant wins a slot, and therefore how failure
//! amplification spreads across tenants. The C1 `config-coverage` lint
//! holds both structs to the same discipline as `YarnConfig`: every field
//! must be named in `validate()` (and, for [`SchedConfig`], pinned
//! explicitly in `scaled_for_tests()`).

use serde::{Deserialize, Serialize};

/// Which scheduling policy arbitrates free slots between tenant queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SchedPolicyKind {
    /// Global arrival order: the tenant whose head job arrived first gets
    /// every slot until that job drains. One elephant job starves the
    /// cluster — the baseline the other two policies are judged against.
    Fifo,
    /// Per-tenant guaranteed shares (`TenantSpec::guaranteed_share_pct`)
    /// with bounded work-conserving spillover of surplus slots.
    Capacity,
    /// Weighted max-min fairness on held slots: each free slot goes to the
    /// tenant with the smallest `running_slots / weight` ratio.
    Fair,
}

impl SchedPolicyKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            SchedPolicyKind::Fifo => "fifo",
            SchedPolicyKind::Capacity => "capacity",
            SchedPolicyKind::Fair => "fair",
        }
    }
}

/// Scheduler knobs, validated and test-scaled under the C1 lint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedConfig {
    pub policy: SchedPolicyKind,
    /// Hard admission cap on concurrently running jobs of one tenant.
    pub max_concurrent_jobs_per_tenant: u32,
    /// Periodic dispatch tick (virtual ms): bounds how long free slots sit
    /// idle when no completion/arrival event happens to trigger dispatch.
    pub dispatch_quantum_ms: u64,
    /// Capacity policy only: percentage of a tenant's *surplus* demand
    /// that may spill over its guaranteed share when other queues leave
    /// slots idle (0 = strict shares, 100 = fully work-conserving).
    pub capacity_spillover_pct: u32,
    /// Fair policy only: slots granted to the currently most-deficient
    /// tenant per dispatch round before deficits are re-evaluated.
    pub fair_burst_slots: u32,
}

impl Default for SchedConfig {
    fn default() -> SchedConfig {
        SchedConfig {
            policy: SchedPolicyKind::Fair,
            max_concurrent_jobs_per_tenant: 8,
            dispatch_quantum_ms: 3_000,
            capacity_spillover_pct: 100,
            fair_burst_slots: 1,
        }
    }
}

impl SchedConfig {
    pub fn with_policy(policy: SchedPolicyKind) -> SchedConfig {
        SchedConfig { policy, ..SchedConfig::default() }
    }

    /// Test-scale configuration. Every field is pinned explicitly — no
    /// `..Default::default()` — so a drifting default cannot silently
    /// change what the determinism tests and golden reports measure
    /// (C1 `config-coverage`).
    pub fn scaled_for_tests(policy: SchedPolicyKind) -> SchedConfig {
        SchedConfig {
            policy,
            max_concurrent_jobs_per_tenant: 4,
            dispatch_quantum_ms: 500,
            capacity_spillover_pct: 100,
            fair_burst_slots: 1,
        }
    }

    /// Every field checked, by name (C1 `config-coverage`).
    pub fn validate(&self) -> Result<(), String> {
        match self.policy {
            SchedPolicyKind::Fifo | SchedPolicyKind::Capacity | SchedPolicyKind::Fair => {}
        }
        if self.max_concurrent_jobs_per_tenant == 0 {
            return Err("max_concurrent_jobs_per_tenant must be >= 1".into());
        }
        if self.dispatch_quantum_ms == 0 {
            return Err("dispatch_quantum_ms must be >= 1".into());
        }
        if self.capacity_spillover_pct > 100 {
            return Err(format!(
                "capacity_spillover_pct must be <= 100, got {}",
                self.capacity_spillover_pct
            ));
        }
        if self.fair_burst_slots == 0 {
            return Err("fair_burst_slots must be >= 1".into());
        }
        Ok(())
    }
}

/// One tenant of the shared cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    pub name: String,
    /// Weight for the fair policy's max-min arbitration (>= 1).
    pub weight: u32,
    /// Guaranteed percentage of cluster slots for the capacity policy.
    /// Shares across tenants must sum to <= 100.
    pub guaranteed_share_pct: u32,
}

impl TenantSpec {
    pub fn new(name: impl Into<String>, weight: u32, guaranteed_share_pct: u32) -> TenantSpec {
        TenantSpec { name: name.into(), weight, guaranteed_share_pct }
    }

    /// Every field checked, by name (C1 `config-coverage`).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("tenant name must be non-empty".into());
        }
        if self.weight == 0 {
            return Err(format!("tenant {} weight must be >= 1", self.name));
        }
        if self.guaranteed_share_pct > 100 {
            return Err(format!("tenant {} guaranteed_share_pct must be <= 100", self.name));
        }
        Ok(())
    }
}

/// Validate a tenant set as a whole: at least one tenant, unique names,
/// capacity shares summing to at most 100%.
pub fn validate_tenants(tenants: &[TenantSpec]) -> Result<(), String> {
    if tenants.is_empty() {
        return Err("at least one tenant is required".into());
    }
    for t in tenants {
        t.validate()?;
    }
    let mut names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() != tenants.len() {
        return Err("tenant names must be unique".into());
    }
    let total: u32 = tenants.iter().map(|t| t.guaranteed_share_pct).sum();
    if total > 100 {
        return Err(format!("guaranteed shares sum to {total}% > 100%"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(SchedConfig::default().validate(), Ok(()));
        for p in [SchedPolicyKind::Fifo, SchedPolicyKind::Capacity, SchedPolicyKind::Fair] {
            assert_eq!(SchedConfig::scaled_for_tests(p).validate(), Ok(()));
            assert_eq!(SchedConfig::with_policy(p).policy, p);
        }
    }

    #[test]
    fn config_rules_fire() {
        let c = SchedConfig { max_concurrent_jobs_per_tenant: 0, ..SchedConfig::default() };
        assert!(c.validate().is_err());
        let c = SchedConfig { dispatch_quantum_ms: 0, ..SchedConfig::default() };
        assert!(c.validate().is_err());
        let c = SchedConfig { capacity_spillover_pct: 101, ..SchedConfig::default() };
        assert!(c.validate().is_err());
        let c = SchedConfig { fair_burst_slots: 0, ..SchedConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn tenant_rules_fire() {
        assert!(TenantSpec::new("", 1, 10).validate().is_err());
        assert!(TenantSpec::new("a", 0, 10).validate().is_err());
        assert!(TenantSpec::new("a", 1, 101).validate().is_err());
        assert_eq!(TenantSpec::new("a", 2, 30).validate(), Ok(()));
    }

    #[test]
    fn tenant_set_rules_fire() {
        assert!(validate_tenants(&[]).is_err());
        let dup = vec![TenantSpec::new("a", 1, 10), TenantSpec::new("a", 1, 10)];
        assert!(validate_tenants(&dup).is_err());
        let over = vec![TenantSpec::new("a", 1, 60), TenantSpec::new("b", 1, 60)];
        assert!(validate_tenants(&over).is_err());
        let ok = vec![TenantSpec::new("a", 1, 60), TenantSpec::new("b", 2, 40)];
        assert_eq!(validate_tenants(&ok), Ok(()));
    }

    #[test]
    fn serde_round_trip() {
        let c = SchedConfig::scaled_for_tests(SchedPolicyKind::Capacity);
        let back: SchedConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }
}
