//! Task-level warehouse simulator.
//!
//! Where `alm-sim` models *one* job at flow fidelity (per-fetch bandwidth
//! sharing on every NIC and disk), this engine models *many* jobs from
//! many tenants at task fidelity: each task has a closed-form duration
//! derived from the same [`alm_sim::Quantities`] byte model and the
//! cluster's bandwidth numbers, and jobs contend through **slots** — the
//! scheduler's resource — rather than through per-byte flows. That is the
//! deliberate abstraction ladder: slot contention is what multi-tenant
//! scheduling policies arbitrate, and it is what makes 1000-node,
//! dozens-of-jobs campaigns run in milliseconds while staying bitwise
//! deterministic.
//!
//! Failure amplification survives the abstraction. A node crash kills the
//! tasks on it, and — the paper's core mechanism — orphans the completed
//! map outputs (MOFs) it hosted:
//!
//! * **SFM modes** regenerate lost maps proactively at detection; running
//!   reducers of the wounded job *suspend* (they hold their containers)
//!   and resume once the maps are back — no failure records, only delay.
//! * **Baseline/ALG** discover the loss through the reducers' fetch
//!   treadmill: one liveness window after detection, every running
//!   reducer of the job is preempted with `FetchFailureLimit` (spatial
//!   amplification, now *cross-tenant visible* through slot contention)
//!   and only then do the lost maps re-queue. ALG restarts the preempted
//!   reducers from their logged progress; baseline restarts from zero.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use alm_des::{EventQueue, EventToken, SimDuration, SimTime};
use alm_sim::{Quantities, SimJobSpec};
use alm_types::{ClusterSpec, FailureKind, RecoveryMode, YarnConfig};
use serde::{Deserialize, Serialize};

use crate::config::{validate_tenants, SchedConfig, TenantSpec};
use crate::policy::{policy_for, SchedView, TenantId, TenantView};
use crate::report::{JobOutcome, WarehouseReport};

/// Runaway guard: no warehouse campaign at the scales this crate targets
/// comes near this event count.
const MAX_EVENTS: u64 = 20_000_000;

/// The shared cluster, its tenants, and the scheduler between them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseSpec {
    pub cluster: ClusterSpec,
    pub yarn: YarnConfig,
    pub mode: RecoveryMode,
    pub sched: SchedConfig,
    pub tenants: Vec<TenantSpec>,
}

impl WarehouseSpec {
    /// A warehouse-scale cluster: paper per-node hardware (Table I NICs,
    /// SSDs, slot counts) scaled out to `nodes` nodes in ~40-node racks.
    pub fn warehouse(
        nodes: u32,
        sched: SchedConfig,
        tenants: Vec<TenantSpec>,
        mode: RecoveryMode,
    ) -> WarehouseSpec {
        let cluster = ClusterSpec { nodes, racks: (nodes / 40).clamp(2, 32), ..ClusterSpec::default() };
        WarehouseSpec { cluster, yarn: YarnConfig::default(), mode, sched, tenants }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.cluster.worker_nodes() == 0 {
            return Err("cluster needs at least one worker node".into());
        }
        if self.cluster.map_slots_per_node == 0 || self.cluster.reduce_slots_per_node == 0 {
            return Err("per-node slot counts must be >= 1".into());
        }
        self.yarn.validate()?;
        self.sched.validate()?;
        validate_tenants(&self.tenants)
    }
}

/// One job submission: which tenant, when, and what job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseJob {
    /// Index into the spec's tenant list.
    pub tenant: u32,
    pub arrival_secs: f64,
    pub job: SimJobSpec,
}

/// Faults at warehouse granularity. Task-level kills and transient faults
/// live in the single-job engines; what crosses tenants is node and rack
/// loss, so that is the vocabulary here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WarehouseFault {
    CrashNode {
        node: u32,
        at_secs: f64,
    },
    /// Correlated loss: every node with `index % racks == rack` (the same
    /// placement convention `alm-chaos` lowers rack faults with).
    CrashRack {
        rack: u32,
        at_secs: f64,
    },
}

/// Closed-form per-task costs of one job, from the shared byte model.
#[derive(Debug, Clone)]
struct JobModel {
    num_maps: u32,
    num_reduces: u32,
    map_secs: f64,
    reduce_secs: f64,
    ideal_secs: f64,
}

impl JobModel {
    fn derive(spec: &SimJobSpec, cluster: &ClusterSpec, yarn: &YarnConfig) -> JobModel {
        let q = Quantities::derive(spec, &spec.workload.model(), yarn);
        let launch = cluster.container_launch_ms as f64 / 1000.0;
        let map_secs = launch
            + q.split_bytes as f64 / cluster.disk_read_bandwidth as f64
            + q.map_cpu_secs
            + q.map_out_bytes as f64 / cluster.disk_write_bandwidth as f64;
        // A reducer's shuffle drains its partition through its inbound
        // NIC (half-duplex share, matching the single-job engine's
        // observed steady state); spilled bytes take extra disk passes
        // per merge round.
        let shuffle_secs = q.partition_bytes as f64 / (cluster.nic_bandwidth as f64 / 2.0);
        let spill_secs = q.spilled_bytes as f64
            * (1.0 / cluster.disk_write_bandwidth as f64 + 1.0 / cluster.disk_read_bandwidth as f64)
            * (1 + q.merge_rounds) as f64;
        let reduce_secs = launch
            + shuffle_secs
            + spill_secs
            + q.reduce_cpu_secs
            + q.reduce_out_bytes as f64 / cluster.disk_write_bandwidth as f64;
        let map_slots = (cluster.worker_nodes() as u64 * cluster.map_slots_per_node as u64).max(1);
        let reduce_slots = (cluster.worker_nodes() as u64 * cluster.reduce_slots_per_node as u64).max(1);
        let map_waves = (q.num_maps as u64).div_ceil(map_slots);
        let reduce_waves = (q.num_reduces as u64).div_ceil(reduce_slots);
        JobModel {
            num_maps: q.num_maps,
            num_reduces: q.num_reduces,
            map_secs,
            reduce_secs,
            // The job alone on an empty, healthy cluster: the slowdown
            // denominator.
            ideal_secs: map_waves as f64 * map_secs + reduce_waves as f64 * reduce_secs,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RunningTask {
    node: u32,
    token: EventToken,
    started: SimTime,
    work_secs: f64,
}

impl RunningTask {
    fn remaining_at(&self, now: SimTime) -> f64 {
        (self.work_secs - now.since(self.started).as_secs_f64()).max(0.0)
    }
}

#[derive(Debug)]
struct JobState {
    tenant: TenantId,
    model: JobModel,
    /// Global arrival sequence (FIFO key).
    seq: u64,
    admitted: bool,
    started: Option<SimTime>,
    finished: Option<SimTime>,
    pending_maps: VecDeque<u32>,
    running_maps: BTreeMap<u32, RunningTask>,
    /// Completed map index -> node hosting its MOF.
    map_home: BTreeMap<u32, u32>,
    reduces_started: bool,
    /// (reduce index, remaining work secs).
    pending_reduces: VecDeque<(u32, f64)>,
    running_reduces: BTreeMap<u32, RunningTask>,
    /// Reducers parked on lost map output (SFM path): they keep their
    /// node's container slot while the maps regenerate.
    suspended_reduces: BTreeMap<u32, (u32, f64)>,
    reduces_done: u32,
    /// Lost maps a baseline-mode job has not yet noticed (they re-queue
    /// when the fetch treadmill bites, one liveness window later).
    deferred_maps: Vec<u32>,
    /// When the deferred loss happened (the crash instant): logged reducer
    /// progress stops there, so ALG restart points are measured there.
    deferred_since: Option<SimTime>,
    map_attempts: u32,
    reduce_attempts: u32,
    failures: Vec<(f64, FailureKind)>,
    fcm_attempts: u32,
}

impl JobState {
    fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    fn maps_done(&self) -> bool {
        self.map_home.len() as u32 == self.model.num_maps
            && self.pending_maps.is_empty()
            && self.running_maps.is_empty()
            && self.deferred_maps.is_empty()
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Instant the node died; `None` while healthy. Completion events of
    /// tasks on a dead node are phantoms and must be ignored — the work
    /// stopped at the crash, the AM just doesn't know yet.
    crashed_at: Option<SimTime>,
    free_map_slots: u32,
    free_reduce_slots: u32,
}

impl NodeState {
    fn alive(&self) -> bool {
        self.crashed_at.is_none()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotKind {
    Map,
    Reduce,
}

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Arrive(u32),
    MapDone {
        job: u32,
        index: u32,
    },
    ReduceDone {
        job: u32,
        index: u32,
    },
    Crash(u32),
    Detect(u32),
    /// Baseline path: the fetch treadmill of `job`'s reducers exhausts its
    /// budget against the MOFs a detected crash orphaned.
    SourceLoss {
        job: u32,
    },
    Tick,
}

/// The multi-tenant warehouse simulation. Build with [`Warehouse::new`],
/// consume with [`Warehouse::run`].
pub struct Warehouse {
    spec: WarehouseSpec,
    seed: u64,
    q: EventQueue<Ev>,
    jobs: Vec<JobState>,
    arrivals: Vec<f64>,
    nodes: Vec<NodeState>,
    /// Per-tenant arrival queues awaiting admission, in arrival order.
    waiting: BTreeMap<TenantId, VecDeque<u32>>,
    running_jobs: BTreeMap<TenantId, u32>,
    held_slots: BTreeMap<TenantId, u64>,
    total_map_slots: u64,
    total_reduce_slots: u64,
    rr_cursor: u32,
}

impl Warehouse {
    /// Validate the spec and lay out the simulation. `jobs` may arrive in
    /// any order; the global FIFO sequence is (arrival time, input index).
    pub fn new(
        spec: WarehouseSpec,
        seed: u64,
        jobs: &[WarehouseJob],
        faults: &[WarehouseFault],
    ) -> Result<Warehouse, String> {
        spec.validate()?;
        for j in jobs {
            if j.tenant as usize >= spec.tenants.len() {
                return Err(format!("job references tenant {} of {}", j.tenant, spec.tenants.len()));
            }
            if !j.arrival_secs.is_finite() || j.arrival_secs < 0.0 {
                return Err(format!("job arrival {} must be finite and >= 0", j.arrival_secs));
            }
        }
        let workers = spec.cluster.worker_nodes();
        let nodes = vec![
            NodeState {
                crashed_at: None,
                free_map_slots: spec.cluster.map_slots_per_node,
                free_reduce_slots: spec.cluster.reduce_slots_per_node,
            };
            workers as usize
        ];
        // Global FIFO sequence: arrival time, ties by submission order.
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .arrival_secs
                .partial_cmp(&jobs[b].arrival_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut seq_of = vec![0u64; jobs.len()];
        for (seq, &idx) in order.iter().enumerate() {
            seq_of[idx] = seq as u64;
        }
        let mut q = EventQueue::new();
        let states: Vec<JobState> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| {
                q.schedule_at(SimTime::from_secs_f64(j.arrival_secs), Ev::Arrive(i as u32));
                JobState {
                    tenant: TenantId(j.tenant),
                    model: JobModel::derive(&j.job, &spec.cluster, &spec.yarn),
                    seq: seq_of[i],
                    admitted: false,
                    started: None,
                    finished: None,
                    pending_maps: VecDeque::new(),
                    running_maps: BTreeMap::new(),
                    map_home: BTreeMap::new(),
                    reduces_started: false,
                    pending_reduces: VecDeque::new(),
                    running_reduces: BTreeMap::new(),
                    suspended_reduces: BTreeMap::new(),
                    reduces_done: 0,
                    deferred_maps: Vec::new(),
                    deferred_since: None,
                    map_attempts: 0,
                    reduce_attempts: 0,
                    failures: Vec::new(),
                    fcm_attempts: 0,
                }
            })
            .collect();
        // Expand rack faults with the shared `node % racks` placement and
        // dedupe coinciding crash targets, mirroring chaos lowering.
        let racks = spec.cluster.racks.max(1);
        let mut seen: BTreeSet<(u32, u64)> = BTreeSet::new();
        for f in faults {
            let mut crash = |node: u32, at_secs: f64, q: &mut EventQueue<Ev>| {
                let node = node % workers.max(1);
                let at = SimTime::from_secs_f64(at_secs.max(0.0));
                if seen.insert((node, at.as_nanos())) {
                    q.schedule_at(at, Ev::Crash(node));
                }
            };
            match f {
                WarehouseFault::CrashNode { node, at_secs } => crash(*node, *at_secs, &mut q),
                WarehouseFault::CrashRack { rack, at_secs } => {
                    for n in (0..workers).filter(|n| n % racks == rack % racks) {
                        crash(n, *at_secs, &mut q);
                    }
                }
            }
        }
        q.schedule_after(SimDuration::from_ms(spec.sched.dispatch_quantum_ms), Ev::Tick);
        let tenant_ids: Vec<TenantId> = (0..spec.tenants.len() as u32).map(TenantId).collect();
        Ok(Warehouse {
            total_map_slots: workers as u64 * spec.cluster.map_slots_per_node as u64,
            total_reduce_slots: workers as u64 * spec.cluster.reduce_slots_per_node as u64,
            waiting: tenant_ids.iter().map(|t| (*t, VecDeque::new())).collect(),
            running_jobs: tenant_ids.iter().map(|t| (*t, 0)).collect(),
            held_slots: tenant_ids.iter().map(|t| (*t, 0)).collect(),
            spec,
            seed,
            q,
            jobs: states,
            arrivals: jobs.iter().map(|j| j.arrival_secs).collect(),
            nodes,
            rr_cursor: 0,
        })
    }

    /// Run to completion and reduce to a [`WarehouseReport`].
    pub fn run(mut self) -> WarehouseReport {
        while let Some((_, ev)) = self.q.pop() {
            if self.q.popped_count() > MAX_EVENTS {
                break;
            }
            match ev {
                Ev::Arrive(j) => self.on_arrive(j),
                Ev::MapDone { job, index } => self.on_map_done(job, index),
                Ev::ReduceDone { job, index } => self.on_reduce_done(job, index),
                Ev::Crash(n) => self.on_crash(n),
                Ev::Detect(n) => self.on_detect(n),
                Ev::SourceLoss { job } => self.on_source_loss(job),
                Ev::Tick => self.on_tick(),
            }
        }
        self.report()
    }

    fn on_arrive(&mut self, j: u32) {
        let tenant = self.jobs[j as usize].tenant;
        self.waiting.entry(tenant).or_default().push_back(j);
        self.dispatch();
    }

    fn on_tick(&mut self) {
        self.dispatch();
        let work_left = self.jobs.iter().any(|j| !j.is_finished());
        let capacity_left = self.total_map_slots > 0 && self.total_reduce_slots > 0;
        if work_left && capacity_left {
            self.q.schedule_after(SimDuration::from_ms(self.spec.sched.dispatch_quantum_ms), Ev::Tick);
        }
    }

    fn on_map_done(&mut self, job: u32, index: u32) {
        let now = self.q.now();
        let job_idx = job as usize;
        // Phantom completion: the node died mid-task. Leave the task in
        // `running_maps`; detection will requeue it.
        if self.jobs[job_idx].running_maps.get(&index).is_some_and(|t| !self.nodes[t.node as usize].alive()) {
            return;
        }
        let Some(task) = self.jobs[job_idx].running_maps.remove(&index) else { return };
        self.release_slot(task.node, SlotKind::Map, self.jobs[job_idx].tenant);
        self.jobs[job_idx].map_home.insert(index, task.node);
        if self.jobs[job_idx].maps_done() {
            if !self.jobs[job_idx].reduces_started {
                let st = &mut self.jobs[job_idx];
                st.reduces_started = true;
                let reduce_secs = st.model.reduce_secs;
                st.pending_reduces = (0..st.model.num_reduces).map(|r| (r, reduce_secs)).collect();
            } else {
                // Regenerated the lost sources: wake the parked reducers
                // (they kept their slots; no new attempt is charged).
                let resumed: Vec<(u32, (u32, f64))> =
                    std::mem::take(&mut self.jobs[job_idx].suspended_reduces).into_iter().collect();
                for (r, (node, remaining)) in resumed {
                    let token = self.q.schedule_after(
                        SimDuration::from_secs_f64(remaining),
                        Ev::ReduceDone { job, index: r },
                    );
                    self.jobs[job_idx]
                        .running_reduces
                        .insert(r, RunningTask { node, token, started: now, work_secs: remaining });
                }
            }
        }
        self.dispatch();
    }

    fn on_reduce_done(&mut self, job: u32, index: u32) {
        let job_idx = job as usize;
        // Phantom completion on a dead node: detection will requeue it.
        if self.jobs[job_idx]
            .running_reduces
            .get(&index)
            .is_some_and(|t| !self.nodes[t.node as usize].alive())
        {
            return;
        }
        // Wedged on lost sources: a reducer cannot finish while some of
        // its job's map outputs are gone and not yet regenerated — it is
        // stuck in the fetch-retry treadmill. `SourceLoss` decides its
        // fate (FetchFailureLimit preemption).
        if !self.jobs[job_idx].deferred_maps.is_empty() {
            return;
        }
        let Some(task) = self.jobs[job_idx].running_reduces.remove(&index) else { return };
        let tenant = self.jobs[job_idx].tenant;
        self.release_slot(task.node, SlotKind::Reduce, tenant);
        self.jobs[job_idx].reduces_done += 1;
        if self.jobs[job_idx].reduces_done == self.jobs[job_idx].model.num_reduces {
            self.jobs[job_idx].finished = Some(self.q.now());
            if let Some(r) = self.running_jobs.get_mut(&tenant) {
                *r = r.saturating_sub(1);
            }
        }
        self.dispatch();
    }

    fn on_crash(&mut self, node: u32) {
        let n = node as usize;
        if !self.nodes[n].alive() {
            return;
        }
        // The node stops accepting work immediately; everything it was
        // holding dies at *detection*, one liveness window later.
        self.total_map_slots -= (self.nodes[n].free_map_slots
            + self
                .jobs
                .iter()
                .map(|j| j.running_maps.values().filter(|t| t.node == node).count() as u32)
                .sum::<u32>()) as u64;
        self.total_reduce_slots -= (self.nodes[n].free_reduce_slots
            + self
                .jobs
                .iter()
                .map(|j| {
                    j.running_reduces.values().filter(|t| t.node == node).count() as u32
                        + j.suspended_reduces.values().filter(|(sn, _)| *sn == node).count() as u32
                })
                .sum::<u32>()) as u64;
        self.nodes[n].crashed_at = Some(self.q.now());
        self.nodes[n].free_map_slots = 0;
        self.nodes[n].free_reduce_slots = 0;
        let liveness = SimDuration::from_ms(self.spec.yarn.node_liveness_timeout_ms);
        self.q.schedule_after(liveness, Ev::Detect(node));
    }

    fn on_detect(&mut self, node: u32) {
        let now = self.q.now();
        let now_secs = now.as_secs_f64();
        // Work on the dead node stopped at the crash, not at detection:
        // logged progress (and thus ALG restart points) is measured there.
        let crash_t = self.nodes[node as usize].crashed_at.unwrap_or(now);
        let sfm = self.spec.mode.sfm_enabled();
        let logs = self.spec.mode.logs_enabled();
        let treadmill_secs = self.spec.yarn.node_liveness_timeout_ms as f64 / 1000.0;
        for job_idx in 0..self.jobs.len() {
            let job = job_idx as u32;
            let tenant = self.jobs[job_idx].tenant;
            // Running maps on the dead node: relaunch from the front of
            // the queue (recovery work preempts fresh work).
            let killed_maps: Vec<u32> = self.jobs[job_idx]
                .running_maps
                .iter()
                .filter(|(_, t)| t.node == node)
                .map(|(i, _)| *i)
                .collect();
            for i in killed_maps {
                let Some(task) = self.jobs[job_idx].running_maps.remove(&i) else { continue };
                self.q.cancel(task.token);
                let st = &mut self.jobs[job_idx];
                st.failures.push((now_secs, FailureKind::NodeCrash));
                st.pending_maps.push_front(i);
                if let Some(h) = self.held_slots.get_mut(&tenant) {
                    *h = h.saturating_sub(1);
                }
            }
            // Running/suspended reduces on the dead node: relaunch, from
            // logged progress when ALG is on, from zero otherwise.
            let killed_reduces: Vec<u32> = self.jobs[job_idx]
                .running_reduces
                .iter()
                .filter(|(_, t)| t.node == node)
                .map(|(i, _)| *i)
                .chain(
                    self.jobs[job_idx]
                        .suspended_reduces
                        .iter()
                        .filter(|(_, (sn, _))| *sn == node)
                        .map(|(i, _)| *i),
                )
                .collect();
            for r in killed_reduces {
                let st = &mut self.jobs[job_idx];
                let remaining = if let Some(task) = st.running_reduces.remove(&r) {
                    self.q.cancel(task.token);
                    task.remaining_at(crash_t)
                } else if let Some((_, rem)) = st.suspended_reduces.remove(&r) {
                    rem
                } else {
                    continue;
                };
                st.failures.push((now_secs, FailureKind::NodeCrash));
                let restart = if logs { remaining } else { st.model.reduce_secs };
                st.pending_reduces.push_front((r, restart));
                if sfm {
                    st.fcm_attempts += 1;
                }
                if let Some(h) = self.held_slots.get_mut(&tenant) {
                    *h = h.saturating_sub(1);
                }
            }
            if self.jobs[job_idx].is_finished() {
                continue;
            }
            // Orphaned MOFs: completed maps that lived on the dead node
            // and are still needed by unfinished reducers.
            let lost_mofs: Vec<u32> =
                self.jobs[job_idx].map_home.iter().filter(|(_, n)| **n == node).map(|(i, _)| *i).collect();
            if lost_mofs.is_empty() {
                continue;
            }
            let st = &mut self.jobs[job_idx];
            for i in &lost_mofs {
                st.map_home.remove(i);
            }
            if sfm || !st.reduces_started {
                // Proactive regeneration (or nothing is fetching yet):
                // the maps re-queue immediately.
                for i in lost_mofs {
                    st.pending_maps.push_front(i);
                }
                if sfm && st.reduces_started {
                    // Park the job's running reducers on the missing
                    // source; they keep their containers.
                    let parked: Vec<(u32, RunningTask)> =
                        std::mem::take(&mut st.running_reduces).into_iter().collect();
                    for (r, task) in parked {
                        self.q.cancel(task.token);
                        st.suspended_reduces.insert(r, (task.node, task.remaining_at(now)));
                        st.fcm_attempts += 1;
                    }
                }
            } else {
                // Baseline/ALG: the AM only learns through the reducers'
                // fetch treadmill, one more liveness window from now.
                st.deferred_maps.extend(lost_mofs);
                st.deferred_since.get_or_insert(crash_t);
                self.q.schedule_after(SimDuration::from_secs_f64(treadmill_secs), Ev::SourceLoss { job });
            }
        }
        self.dispatch();
    }

    fn on_source_loss(&mut self, job: u32) {
        let now = self.q.now();
        let now_secs = now.as_secs_f64();
        let job_idx = job as usize;
        if self.jobs[job_idx].deferred_maps.is_empty() || self.jobs[job_idx].is_finished() {
            return;
        }
        let logs = self.spec.mode.logs_enabled();
        let tenant = self.jobs[job_idx].tenant;
        // Every running reducer of the job burned its retry budget against
        // the lost sources: FetchFailureLimit preemption — the spatial
        // amplification record.
        let preempted: Vec<(u32, RunningTask)> =
            std::mem::take(&mut self.jobs[job_idx].running_reduces).into_iter().collect();
        // Logged progress stops where the sources vanished (the crash
        // instant): time spent wedged in the fetch treadmill is not
        // restorable progress.
        let logged_until = self.jobs[job_idx].deferred_since.take().unwrap_or(now);
        for (r, task) in preempted {
            self.q.cancel(task.token);
            let st = &mut self.jobs[job_idx];
            st.failures.push((now_secs, FailureKind::FetchFailureLimit));
            let restart = if logs { task.remaining_at(logged_until) } else { st.model.reduce_secs };
            st.pending_reduces.push_back((r, restart));
            self.release_slot(task.node, SlotKind::Reduce, tenant);
        }
        let lost: Vec<u32> = std::mem::take(&mut self.jobs[job_idx].deferred_maps);
        for i in lost {
            self.jobs[job_idx].pending_maps.push_front(i);
        }
        self.dispatch();
    }

    fn release_slot(&mut self, node: u32, kind: SlotKind, tenant: TenantId) {
        let n = node as usize;
        if self.nodes[n].alive() {
            match kind {
                SlotKind::Map => self.nodes[n].free_map_slots += 1,
                SlotKind::Reduce => self.nodes[n].free_reduce_slots += 1,
            }
        }
        if let Some(h) = self.held_slots.get_mut(&tenant) {
            *h = h.saturating_sub(1);
        }
    }

    /// Round-robin placement over alive nodes with a free slot of `kind`.
    fn place(&mut self, kind: SlotKind) -> Option<u32> {
        let n = self.nodes.len() as u32;
        for step in 0..n {
            let node = (self.rr_cursor + step) % n;
            let s = &mut self.nodes[node as usize];
            let free = match kind {
                SlotKind::Map => &mut s.free_map_slots,
                SlotKind::Reduce => &mut s.free_reduce_slots,
            };
            if s.crashed_at.is_none() && *free > 0 {
                *free -= 1;
                self.rr_cursor = (node + 1) % n;
                return Some(node);
            }
        }
        None
    }

    fn admit(&mut self) {
        let cap = self.spec.sched.max_concurrent_jobs_per_tenant;
        let tenants: Vec<TenantId> = self.waiting.keys().copied().collect();
        for t in tenants {
            loop {
                let running = self.running_jobs.get(&t).copied().unwrap_or(0);
                if running >= cap {
                    break;
                }
                let Some(j) = self.waiting.get_mut(&t).and_then(|q| q.pop_front()) else { break };
                let st = &mut self.jobs[j as usize];
                st.admitted = true;
                st.pending_maps = (0..st.model.num_maps).collect();
                if let Some(r) = self.running_jobs.get_mut(&t) {
                    *r += 1;
                }
            }
        }
    }

    fn view_for(&self, kind: SlotKind) -> BTreeMap<TenantId, TenantView> {
        let mut view: BTreeMap<TenantId, TenantView> = BTreeMap::new();
        for st in &self.jobs {
            if !st.admitted || st.is_finished() {
                continue;
            }
            // A reduce is only runnable when every map output it will
            // fetch exists; launching it against lost sources would just
            // feed the fetch treadmill.
            let runnable = match kind {
                SlotKind::Map => st.pending_maps.len() as u64,
                SlotKind::Reduce if st.maps_done() => st.pending_reduces.len() as u64,
                SlotKind::Reduce => 0,
            };
            if runnable == 0 {
                continue;
            }
            let spec = &self.spec.tenants[st.tenant.0 as usize];
            let entry = view.entry(st.tenant).or_insert_with(|| TenantView {
                runnable_tasks: 0,
                running_slots: self.held_slots.get(&st.tenant).copied().unwrap_or(0),
                weight: spec.weight,
                guaranteed_share_pct: spec.guaranteed_share_pct,
                head_arrival_seq: u64::MAX,
            });
            entry.runnable_tasks += runnable;
            entry.head_arrival_seq = entry.head_arrival_seq.min(st.seq);
        }
        view
    }

    /// The earliest-arrived admitted job of `tenant` with pending work of
    /// `kind`.
    fn next_job_of(&self, tenant: TenantId, kind: SlotKind) -> Option<u32> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, st)| {
                st.admitted
                    && !st.is_finished()
                    && st.tenant == tenant
                    && match kind {
                        SlotKind::Map => !st.pending_maps.is_empty(),
                        SlotKind::Reduce => st.maps_done() && !st.pending_reduces.is_empty(),
                    }
            })
            .min_by_key(|(_, st)| st.seq)
            .map(|(i, _)| i as u32)
    }

    fn dispatch(&mut self) {
        self.admit();
        let mut policy = policy_for(&self.spec.sched);
        for kind in [SlotKind::Map, SlotKind::Reduce] {
            loop {
                let view = self.view_for(kind);
                if view.is_empty() {
                    break;
                }
                let total_slots = match kind {
                    SlotKind::Map => self.total_map_slots,
                    SlotKind::Reduce => self.total_reduce_slots,
                };
                let Some(winner) = policy.pick(&SchedView { tenants: &view, total_slots }) else { break };
                let Some(job) = self.next_job_of(winner, kind) else { break };
                let Some(node) = self.place(kind) else { break };
                let now = self.q.now();
                let job_idx = job as usize;
                match kind {
                    SlotKind::Map => {
                        let Some(index) = self.jobs[job_idx].pending_maps.pop_front() else {
                            self.release_slot(node, kind, winner);
                            break;
                        };
                        let work = self.jobs[job_idx].model.map_secs;
                        let token = self
                            .q
                            .schedule_after(SimDuration::from_secs_f64(work), Ev::MapDone { job, index });
                        let st = &mut self.jobs[job_idx];
                        st.running_maps
                            .insert(index, RunningTask { node, token, started: now, work_secs: work });
                        st.map_attempts += 1;
                    }
                    SlotKind::Reduce => {
                        let Some((index, work)) = self.jobs[job_idx].pending_reduces.pop_front() else {
                            self.release_slot(node, kind, winner);
                            break;
                        };
                        let token = self
                            .q
                            .schedule_after(SimDuration::from_secs_f64(work), Ev::ReduceDone { job, index });
                        let st = &mut self.jobs[job_idx];
                        st.running_reduces
                            .insert(index, RunningTask { node, token, started: now, work_secs: work });
                        st.reduce_attempts += 1;
                    }
                }
                let st = &mut self.jobs[job_idx];
                if st.started.is_none() {
                    st.started = Some(now);
                }
                if let Some(h) = self.held_slots.get_mut(&winner) {
                    *h += 1;
                }
            }
        }
    }

    fn report(self) -> WarehouseReport {
        let mut outcomes: Vec<JobOutcome> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let arrival_secs = self.arrivals[i];
                let finish_secs = st.finished.map(|t| t.as_secs_f64()).unwrap_or(-1.0);
                let latency_secs =
                    if finish_secs >= 0.0 { (finish_secs - arrival_secs).max(0.0) } else { -1.0 };
                let slowdown = if latency_secs >= 0.0 && st.model.ideal_secs > 0.0 {
                    latency_secs / st.model.ideal_secs
                } else {
                    -1.0
                };
                JobOutcome {
                    job: i as u32,
                    seq: st.seq,
                    tenant: st.tenant.0,
                    tenant_name: self.spec.tenants[st.tenant.0 as usize].name.clone(),
                    arrival_secs,
                    start_secs: st.started.map(|t| t.as_secs_f64()).unwrap_or(-1.0),
                    finish_secs,
                    latency_secs,
                    ideal_secs: st.model.ideal_secs,
                    slowdown,
                    map_attempts: st.map_attempts,
                    reduce_attempts: st.reduce_attempts,
                    failures: st.failures.len() as u32,
                    fetch_failures: st
                        .failures
                        .iter()
                        .filter(|(_, k)| *k == FailureKind::FetchFailureLimit)
                        .count() as u32,
                    node_loss_failures: st
                        .failures
                        .iter()
                        .filter(|(_, k)| *k == FailureKind::NodeCrash)
                        .count() as u32,
                    fcm_attempts: st.fcm_attempts,
                    succeeded: st.is_finished(),
                }
            })
            .collect();
        outcomes.sort_by_key(|o| (o.seq, o.job));
        WarehouseReport {
            policy: self.spec.sched.policy.as_str().to_string(),
            mode: self.spec.mode,
            seed: self.seed,
            nodes: self.spec.cluster.worker_nodes(),
            tenants: self.spec.tenants.iter().map(|t| t.name.clone()).collect(),
            jobs: outcomes,
            events: self.q.popped_count(),
            horizon_secs: self.q.now().as_secs_f64(),
        }
    }
}
