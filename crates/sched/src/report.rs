//! Warehouse campaign results.
//!
//! A [`WarehouseReport`] is the per-job record of one multi-tenant run plus
//! the aggregations the experiments read off it: per-tenant latency
//! percentiles and mean slowdown ([`WarehouseReport::per_tenant_rows`]) and
//! the *cross-tenant amplification* factor — how much a tenant that lost
//! **no** tasks to the fault still slowed down, purely through scheduler
//! contention with the wounded tenant's recovery work.
//!
//! `canonical_json` follows the repo's golden-gate discipline: hand-built
//! [`Value`] trees with a fixed key order and every time quantised to
//! integer milliseconds (ratios to parts-per-thousand), so equal runs are
//! byte-equal and goldens survive formatting churn.

use alm_metrics::{p50, p99, TextTable};
use alm_types::RecoveryMode;
use serde::{Deserialize, Serialize, Value};
use serde_json::to_string_pretty;

/// Outcome of one job submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Index in the submitted job list.
    pub job: u32,
    /// Global arrival sequence number (FIFO order).
    pub seq: u64,
    pub tenant: u32,
    pub tenant_name: String,
    pub arrival_secs: f64,
    /// First task launch; -1 if the job never started.
    pub start_secs: f64,
    /// Completion; -1 if the job never finished (e.g. the cluster died).
    pub finish_secs: f64,
    /// `finish - arrival`; -1 if unfinished.
    pub latency_secs: f64,
    /// The job alone on an empty, healthy cluster — the slowdown
    /// denominator.
    pub ideal_secs: f64,
    /// `latency / ideal`; -1 if unfinished. 1.0 means no queueing and no
    /// fault delay at all.
    pub slowdown: f64,
    pub map_attempts: u32,
    pub reduce_attempts: u32,
    /// Total task-failure records (node-loss + fetch-failure preemptions).
    pub failures: u32,
    /// `FetchFailureLimit` preemptions — the spatial amplification signal.
    pub fetch_failures: u32,
    pub node_loss_failures: u32,
    /// SFM reducer suspensions (paused, not failed).
    pub fcm_attempts: u32,
    pub succeeded: bool,
}

/// Per-tenant aggregation of a warehouse run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantRow {
    pub tenant: String,
    pub jobs: u32,
    pub finished: u32,
    pub p50_latency_secs: f64,
    pub p99_latency_secs: f64,
    /// Mean slowdown over *finished* jobs; -1 when none finished.
    pub mean_slowdown: f64,
    pub failures: u32,
    pub fetch_failures: u32,
    pub reduce_attempts: u32,
}

/// Result of one multi-tenant warehouse simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseReport {
    /// `SchedPolicyKind::as_str()` of the arbitrating policy.
    pub policy: String,
    pub mode: RecoveryMode,
    pub seed: u64,
    /// Worker nodes in the cluster.
    pub nodes: u32,
    /// Tenant names, in tenant-id order.
    pub tenants: Vec<String>,
    /// Per-job outcomes, in global arrival order.
    pub jobs: Vec<JobOutcome>,
    /// DES events processed — the denominator of events/sec.
    pub events: u64,
    /// Virtual time at which the simulation drained.
    pub horizon_secs: f64,
}

impl WarehouseReport {
    /// Per-tenant latency/slowdown aggregation, in tenant-id order.
    pub fn per_tenant_rows(&self) -> Vec<TenantRow> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(t, name)| {
                let mine: Vec<&JobOutcome> = self.jobs.iter().filter(|j| j.tenant == t as u32).collect();
                let latencies: Vec<f64> =
                    mine.iter().filter(|j| j.succeeded).map(|j| j.latency_secs).collect();
                let slowdowns: Vec<f64> = mine.iter().filter(|j| j.succeeded).map(|j| j.slowdown).collect();
                TenantRow {
                    tenant: name.clone(),
                    jobs: mine.len() as u32,
                    finished: latencies.len() as u32,
                    p50_latency_secs: p50(&latencies),
                    p99_latency_secs: p99(&latencies),
                    mean_slowdown: if slowdowns.is_empty() {
                        -1.0
                    } else {
                        slowdowns.iter().sum::<f64>() / slowdowns.len() as f64
                    },
                    failures: mine.iter().map(|j| j.failures).sum(),
                    fetch_failures: mine.iter().map(|j| j.fetch_failures).sum(),
                    reduce_attempts: mine.iter().map(|j| j.reduce_attempts).sum(),
                }
            })
            .collect()
    }

    /// Worst mean slowdown among tenants that recorded **zero** task
    /// failures: how hard the fault hit tenants it never touched, purely
    /// through scheduler contention. -1 when no such tenant finished work.
    pub fn cross_tenant_amplification(&self) -> f64 {
        self.per_tenant_rows()
            .iter()
            .filter(|r| r.failures == 0 && r.finished > 0)
            .map(|r| r.mean_slowdown)
            .fold(-1.0, f64::max)
    }

    /// All jobs finished.
    pub fn succeeded(&self) -> bool {
        self.jobs.iter().all(|j| j.succeeded)
    }

    /// Human-readable run summary: a header line, the per-tenant table,
    /// and the cross-tenant amplification factor.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(
            format!(
                "warehouse: policy={} mode={:?} seed={} nodes={} jobs={} events={} horizon={:.0}s",
                self.policy,
                self.mode,
                self.seed,
                self.nodes,
                self.jobs.len(),
                self.events,
                self.horizon_secs
            ),
            &[
                "tenant",
                "jobs",
                "done",
                "p50 lat (s)",
                "p99 lat (s)",
                "mean slowdown",
                "failures",
                "fetch-fail",
            ],
        );
        for r in self.per_tenant_rows() {
            t.row(&[
                r.tenant.clone(),
                r.jobs.to_string(),
                r.finished.to_string(),
                format!("{:.1}", r.p50_latency_secs),
                format!("{:.1}", r.p99_latency_secs),
                format!("{:.2}", r.mean_slowdown),
                r.failures.to_string(),
                r.fetch_failures.to_string(),
            ]);
        }
        let mut out = t.render_text();
        out.push_str(&format!("cross-tenant amplification: {:.2}\n", self.cross_tenant_amplification()));
        out
    }

    /// Byte-stable canonical form: fixed key order, times quantised to
    /// integer milliseconds, ratios to parts-per-thousand. Wall-clock
    /// quantities (there are none in this struct by design) never appear.
    pub fn canonical_json(&self) -> String {
        let ms = |s: f64| Value::I64(if s < 0.0 { -1 } else { (s * 1000.0).round() as i64 });
        let milli = |x: f64| Value::I64(if x < 0.0 { -1000 } else { (x * 1000.0).round() as i64 });
        let jobs: Vec<Value> = self
            .jobs
            .iter()
            .map(|j| {
                Value::Object(vec![
                    ("job".into(), Value::U64(j.job as u64)),
                    ("seq".into(), Value::U64(j.seq)),
                    ("tenant".into(), Value::Str(j.tenant_name.clone())),
                    ("arrival_ms".into(), ms(j.arrival_secs)),
                    ("start_ms".into(), ms(j.start_secs)),
                    ("finish_ms".into(), ms(j.finish_secs)),
                    ("latency_ms".into(), ms(j.latency_secs)),
                    ("ideal_ms".into(), ms(j.ideal_secs)),
                    ("slowdown_milli".into(), milli(j.slowdown)),
                    ("map_attempts".into(), Value::U64(j.map_attempts as u64)),
                    ("reduce_attempts".into(), Value::U64(j.reduce_attempts as u64)),
                    ("failures".into(), Value::U64(j.failures as u64)),
                    ("fetch_failures".into(), Value::U64(j.fetch_failures as u64)),
                    ("node_loss_failures".into(), Value::U64(j.node_loss_failures as u64)),
                    ("fcm_attempts".into(), Value::U64(j.fcm_attempts as u64)),
                    ("succeeded".into(), Value::Bool(j.succeeded)),
                ])
            })
            .collect();
        let tenants: Vec<Value> = self
            .per_tenant_rows()
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("tenant".into(), Value::Str(r.tenant.clone())),
                    ("jobs".into(), Value::U64(r.jobs as u64)),
                    ("finished".into(), Value::U64(r.finished as u64)),
                    ("p50_latency_ms".into(), ms(r.p50_latency_secs)),
                    ("p99_latency_ms".into(), ms(r.p99_latency_secs)),
                    ("mean_slowdown_milli".into(), milli(r.mean_slowdown)),
                    ("failures".into(), Value::U64(r.failures as u64)),
                    ("fetch_failures".into(), Value::U64(r.fetch_failures as u64)),
                    ("reduce_attempts".into(), Value::U64(r.reduce_attempts as u64)),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("policy".into(), Value::Str(self.policy.clone())),
            ("mode".into(), Value::Str(format!("{:?}", self.mode))),
            ("seed".into(), Value::U64(self.seed)),
            ("nodes".into(), Value::U64(self.nodes as u64)),
            ("horizon_ms".into(), ms(self.horizon_secs)),
            ("events".into(), Value::U64(self.events)),
            ("cross_tenant_amplification_milli".into(), milli(self.cross_tenant_amplification())),
            ("tenants".into(), Value::Array(tenants)),
            ("jobs".into(), Value::Array(jobs)),
        ]);
        to_string_pretty(&root).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(tenant: u32, name: &str, latency: f64, ideal: f64, failures: u32) -> JobOutcome {
        JobOutcome {
            job: 0,
            seq: 0,
            tenant,
            tenant_name: name.into(),
            arrival_secs: 0.0,
            start_secs: 1.0,
            finish_secs: latency,
            latency_secs: latency,
            ideal_secs: ideal,
            slowdown: latency / ideal,
            map_attempts: 1,
            reduce_attempts: 1,
            failures,
            fetch_failures: 0,
            node_loss_failures: failures,
            fcm_attempts: 0,
            succeeded: true,
        }
    }

    fn report() -> WarehouseReport {
        WarehouseReport {
            policy: "fair".into(),
            mode: RecoveryMode::Baseline,
            seed: 7,
            nodes: 100,
            tenants: vec!["a".into(), "b".into()],
            jobs: vec![job(0, "a", 200.0, 100.0, 3), job(1, "b", 150.0, 100.0, 0)],
            events: 42,
            horizon_secs: 200.0,
        }
    }

    #[test]
    fn tenant_rows_aggregate_in_tenant_order() {
        let rows = report().per_tenant_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, "a");
        assert_eq!(rows[0].failures, 3);
        assert!((rows[1].mean_slowdown - 1.5).abs() < 1e-12);
    }

    #[test]
    fn amplification_reads_untouched_tenants_only() {
        // Tenant b lost no tasks yet runs 1.5x slower: amplification 1.5.
        assert!((report().cross_tenant_amplification() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn canonical_json_is_stable_and_quantised() {
        let r = report();
        assert_eq!(r.canonical_json(), r.canonical_json());
        assert!(r.canonical_json().contains("\"slowdown_milli\": 2000"));
        assert!(r.canonical_json().contains("\"cross_tenant_amplification_milli\": 1500"));
    }

    #[test]
    fn render_text_mentions_each_tenant() {
        let txt = report().render_text();
        assert!(txt.contains("a"));
        assert!(txt.contains("cross-tenant amplification: 1.50"));
    }
}
