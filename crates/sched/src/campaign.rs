//! Multi-tenant campaign construction and the parallel seed executor.
//!
//! A [`WarehouseCampaign`] bundles a [`WarehouseSpec`] with a concrete job
//! mix and fault plan; [`WarehouseCampaign::synthetic`] generates the
//! standard mix deterministically from a seed via labelled RNG streams, so
//! the same `(topology, seed)` pair names the same campaign everywhere —
//! tests, benches, CI gates.
//!
//! [`run_seeds`] is the deterministic parallel executor: seeds are
//! partitioned over scoped threads, each runs its campaign independently
//! (campaigns share no state), and the merged result is sorted by seed —
//! so the output is a pure function of the seed list, byte-identical at
//! any thread count.

use alm_des::rng;
use alm_types::RecoveryMode;
use alm_workloads::WorkloadKind;
use rand::Rng;

use crate::config::{SchedConfig, SchedPolicyKind, TenantSpec};
use crate::engine::{Warehouse, WarehouseFault, WarehouseJob, WarehouseSpec};
use crate::report::WarehouseReport;

use alm_sim::SimJobSpec;

/// A reproducible multi-tenant scenario: topology + job mix + fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct WarehouseCampaign {
    pub spec: WarehouseSpec,
    pub seed: u64,
    pub jobs: Vec<WarehouseJob>,
    pub faults: Vec<WarehouseFault>,
}

impl WarehouseCampaign {
    /// The standard synthetic mix: `tenants` tenants with distinct weights
    /// and equal guaranteed shares, each submitting `jobs_per_tenant` jobs
    /// with log-uniform input sizes (1–64 GB) and staggered arrivals over
    /// a few minutes. Everything derives from labelled streams of `seed`.
    pub fn synthetic(
        nodes: u32,
        tenants: u32,
        jobs_per_tenant: u32,
        policy: SchedPolicyKind,
        mode: RecoveryMode,
        seed: u64,
    ) -> WarehouseCampaign {
        let tenants = tenants.max(1);
        let share = (100 / tenants.max(1)).min(100);
        let specs: Vec<TenantSpec> = (0..tenants)
            // Distinct weights (heaviest tenant first) make fair-vs-FIFO
            // contrasts visible without per-experiment tuning.
            .map(|t| TenantSpec::new(format!("tenant-{t}"), tenants - t, share))
            .collect();
        let mut sizes = rng::stream(seed, "warehouse-input-sizes");
        let mut gaps = rng::stream(seed, "warehouse-arrival-gaps");
        let workloads = [WorkloadKind::Terasort, WorkloadKind::Wordcount, WorkloadKind::SecondarySort];
        let gb = alm_types::units::GB;
        let mut jobs = Vec::new();
        for t in 0..tenants {
            let mut at = 0.0f64;
            for j in 0..jobs_per_tenant {
                // Log-uniform over 1..=64 GB: most jobs small, a few
                // elephants — the mix where policy choice matters.
                let input = (gb as f64 * 2f64.powf(sizes.random_range(0.0..6.0))) as u64;
                let workload = workloads[((t + j) % 3) as usize];
                let reduces = match workload {
                    WorkloadKind::Terasort => 20,
                    WorkloadKind::Wordcount => 4,
                    WorkloadKind::SecondarySort => 8,
                    // The warehouse mix draws from the paper's three
                    // single-job workloads only; iterative kinds are driven
                    // by the `alm-mem` chain layer, not this campaign.
                    WorkloadKind::Pagerank | WorkloadKind::KMeans => 8,
                };
                // Short gaps keep several jobs per tenant in flight, so
                // policies actually arbitrate contention.
                at += gaps.random_range(2.0..20.0);
                jobs.push(WarehouseJob {
                    tenant: t,
                    arrival_secs: at,
                    job: SimJobSpec::new(workload, input, reduces, seed ^ ((t as u64) << 32 | j as u64)),
                });
            }
        }
        WarehouseCampaign {
            spec: WarehouseSpec::warehouse(nodes, SchedConfig::with_policy(policy), specs, mode),
            seed,
            jobs,
            faults: Vec::new(),
        }
    }

    /// Add a fault to the plan (builder style).
    pub fn with_fault(mut self, fault: WarehouseFault) -> WarehouseCampaign {
        self.faults.push(fault);
        self
    }

    /// Run the campaign to completion.
    pub fn run(&self) -> Result<WarehouseReport, String> {
        Ok(Warehouse::new(self.spec.clone(), self.seed, &self.jobs, &self.faults)?.run())
    }
}

/// Run one campaign per seed on `threads` scoped threads and return the
/// reports **sorted by seed**. Campaigns share no state, so the merged
/// output is a pure function of the seed list — byte-identical whether
/// `threads` is 1 or 16. Per-campaign errors surface in seed order too.
pub fn run_seeds<F>(make: F, seeds: &[u64], threads: usize) -> Result<Vec<WarehouseReport>, String>
where
    F: Fn(u64) -> WarehouseCampaign + Sync,
{
    let threads = threads.max(1);
    let mut results: Vec<(u64, Result<WarehouseReport, String>)> = std::thread::scope(|scope| {
        let make = &make;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                // Static round-robin partition: seed i goes to thread
                // i % threads. The partition choice only affects who
                // computes what, never the merged order.
                let mine: Vec<u64> = seeds.iter().copied().skip(w).step_by(threads).collect();
                scope.spawn(move || mine.into_iter().map(|s| (s, make(s).run())).collect::<Vec<_>>())
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap_or_default()).collect()
    });
    results.sort_by_key(|(seed, _)| *seed);
    if results.len() != seeds.len() {
        return Err(format!("worker panic: {} of {} campaigns returned", results.len(), seeds.len()));
    }
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_reproducible() {
        let a = WarehouseCampaign::synthetic(50, 3, 4, SchedPolicyKind::Fair, RecoveryMode::Baseline, 7);
        let b = WarehouseCampaign::synthetic(50, 3, 4, SchedPolicyKind::Fair, RecoveryMode::Baseline, 7);
        assert_eq!(a, b);
        let c = WarehouseCampaign::synthetic(50, 3, 4, SchedPolicyKind::Fair, RecoveryMode::Baseline, 8);
        assert_ne!(a.jobs, c.jobs);
    }

    #[test]
    fn synthetic_job_mix_is_sane() {
        let c = WarehouseCampaign::synthetic(50, 3, 4, SchedPolicyKind::Fair, RecoveryMode::Baseline, 7);
        assert_eq!(c.jobs.len(), 12);
        assert!(c.spec.validate().is_ok());
        let gb = alm_types::units::GB;
        for j in &c.jobs {
            assert!(j.job.input_bytes >= gb && j.job.input_bytes <= 64 * gb);
            assert!(j.arrival_secs > 0.0);
        }
    }

    #[test]
    fn run_seeds_merges_in_seed_order_at_any_thread_count() {
        let make = |seed| {
            WarehouseCampaign::synthetic(30, 2, 2, SchedPolicyKind::Fifo, RecoveryMode::Baseline, seed)
        };
        let seeds = [11u64, 3, 7, 5];
        let one = run_seeds(make, &seeds, 1).expect("run");
        let four = run_seeds(make, &seeds, 4).expect("run");
        assert_eq!(one.len(), 4);
        let got: Vec<u64> = one.iter().map(|r| r.seed).collect();
        assert_eq!(got, vec![3, 5, 7, 11]);
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.canonical_json(), b.canonical_json());
        }
    }
}
