//! Pluggable slot-arbitration policies.
//!
//! The warehouse engine asks a [`SchedPolicy`] one question, once per free
//! slot: *which tenant gets it?* The policy sees a per-tenant view
//! (runnable work, held slots, weight, guaranteed share, oldest waiting
//! job) and answers with a [`TenantId`] or `None` (leave the slot idle —
//! only the strict capacity policy ever does). Job selection *within* the
//! winning tenant is the engine's job and is always oldest-job-first, so
//! policies stay engine-agnostic and trivially deterministic: every
//! tie breaks on the lower tenant id.
//!
//! The three policies span the design space mapped in "MapReduce
//! Scheduler: A 360-degree view": global FIFO (one elephant starves the
//! cluster), guaranteed capacity shares with bounded spillover, and
//! weighted max-min fair sharing.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::config::{SchedConfig, SchedPolicyKind};

/// Identifier of a tenant: its index in the campaign's tenant list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TenantId(pub u32);

/// One tenant's scheduling inputs for a single dispatch decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantView {
    /// Tasks runnable right now, of the slot kind under dispatch, across
    /// the tenant's admitted jobs.
    pub runnable_tasks: u64,
    /// Slots (map + reduce) the tenant holds cluster-wide.
    pub running_slots: u64,
    pub weight: u32,
    pub guaranteed_share_pct: u32,
    /// Global arrival sequence of the oldest admitted job with runnable
    /// work — the FIFO policy's sort key.
    pub head_arrival_seq: u64,
}

/// Everything a policy may look at. Tenants with no runnable work of the
/// dispatched kind are pre-filtered out by the engine.
pub struct SchedView<'a> {
    pub tenants: &'a BTreeMap<TenantId, TenantView>,
    /// Total slots of the dispatched kind on alive nodes.
    pub total_slots: u64,
}

/// A slot-arbitration policy. Implementations must be deterministic pure
/// functions of the view plus their own (deterministically updated) state.
pub trait SchedPolicy {
    fn kind(&self) -> SchedPolicyKind;
    /// Tenant to receive the next free slot; `None` leaves it idle.
    fn pick(&mut self, view: &SchedView) -> Option<TenantId>;
}

/// Global arrival order: the tenant owning the globally oldest admitted
/// job with runnable work wins every slot until that job drains.
#[derive(Debug, Default)]
pub struct FifoPolicy;

impl SchedPolicy for FifoPolicy {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::Fifo
    }

    fn pick(&mut self, view: &SchedView) -> Option<TenantId> {
        view.tenants
            .iter()
            .filter(|(_, t)| t.runnable_tasks > 0)
            .min_by_key(|(id, t)| (t.head_arrival_seq, **id))
            .map(|(id, _)| *id)
    }
}

/// Guaranteed per-tenant shares with bounded work-conserving spillover.
#[derive(Debug)]
pub struct CapacityPolicy {
    /// Percentage of the unguaranteed slot pool one tenant may absorb
    /// beyond its guarantee (0 = strict, 100 = fully work-conserving).
    pub spillover_pct: u32,
}

impl CapacityPolicy {
    fn guaranteed(total: u64, pct: u32) -> u64 {
        total * pct as u64 / 100
    }
}

impl SchedPolicy for CapacityPolicy {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::Capacity
    }

    fn pick(&mut self, view: &SchedView) -> Option<TenantId> {
        // Pass 1: the most-deficient tenant still under its guarantee,
        // deficits compared as fractions of the guarantee (cross-
        // multiplied to stay in integers).
        let under = view
            .tenants
            .iter()
            .filter(|(_, t)| {
                t.runnable_tasks > 0
                    && t.running_slots < Self::guaranteed(view.total_slots, t.guaranteed_share_pct)
            })
            .min_by(|(ida, a), (idb, b)| {
                let la = a.running_slots as u128 * b.guaranteed_share_pct as u128;
                let lb = b.running_slots as u128 * a.guaranteed_share_pct as u128;
                la.cmp(&lb).then(ida.cmp(idb))
            })
            .map(|(id, _)| *id);
        if under.is_some() {
            return under;
        }
        // Pass 2: spillover. The unguaranteed pool is what no tenant's
        // guarantee covers; each tenant may hold at most `spillover_pct`
        // of it beyond its own guarantee.
        let guaranteed_total: u64 =
            view.tenants.values().map(|t| Self::guaranteed(view.total_slots, t.guaranteed_share_pct)).sum();
        let pool = view.total_slots.saturating_sub(guaranteed_total);
        let allowed_extra = pool * self.spillover_pct as u64 / 100;
        view.tenants
            .iter()
            .filter(|(_, t)| {
                let cap = Self::guaranteed(view.total_slots, t.guaranteed_share_pct) + allowed_extra;
                t.runnable_tasks > 0 && t.running_slots < cap
            })
            .min_by_key(|(id, t)| {
                let over = t
                    .running_slots
                    .saturating_sub(Self::guaranteed(view.total_slots, t.guaranteed_share_pct));
                (over, **id)
            })
            .map(|(id, _)| *id)
    }
}

/// Weighted max-min fairness on held slots: each slot goes to the tenant
/// with the smallest `running_slots / weight`, granted in bursts of
/// `fair_burst_slots` before the deficit is re-evaluated.
#[derive(Debug)]
pub struct FairPolicy {
    pub burst: u32,
    burst_left: u32,
    last: Option<TenantId>,
}

impl FairPolicy {
    pub fn new(burst: u32) -> FairPolicy {
        FairPolicy { burst: burst.max(1), burst_left: 0, last: None }
    }
}

impl SchedPolicy for FairPolicy {
    fn kind(&self) -> SchedPolicyKind {
        SchedPolicyKind::Fair
    }

    fn pick(&mut self, view: &SchedView) -> Option<TenantId> {
        if self.burst_left > 0 {
            if let Some(last) = self.last {
                if view.tenants.get(&last).is_some_and(|t| t.runnable_tasks > 0) {
                    self.burst_left -= 1;
                    return Some(last);
                }
            }
        }
        let winner = view
            .tenants
            .iter()
            .filter(|(_, t)| t.runnable_tasks > 0)
            .min_by(|(ida, a), (idb, b)| {
                // a.slots/a.weight < b.slots/b.weight, cross-multiplied.
                let la = a.running_slots as u128 * b.weight as u128;
                let lb = b.running_slots as u128 * a.weight as u128;
                la.cmp(&lb).then(ida.cmp(idb))
            })
            .map(|(id, _)| *id)?;
        self.last = Some(winner);
        self.burst_left = self.burst - 1;
        Some(winner)
    }
}

/// Instantiate the policy a [`SchedConfig`] names.
pub fn policy_for(config: &SchedConfig) -> Box<dyn SchedPolicy> {
    match config.policy {
        SchedPolicyKind::Fifo => Box::new(FifoPolicy),
        SchedPolicyKind::Capacity => {
            Box::new(CapacityPolicy { spillover_pct: config.capacity_spillover_pct })
        }
        SchedPolicyKind::Fair => Box::new(FairPolicy::new(config.fair_burst_slots)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_of(rows: &[(u32, u64, u64, u32, u32, u64)]) -> BTreeMap<TenantId, TenantView> {
        rows.iter()
            .map(|&(id, runnable, running, weight, share, seq)| {
                (
                    TenantId(id),
                    TenantView {
                        runnable_tasks: runnable,
                        running_slots: running,
                        weight,
                        guaranteed_share_pct: share,
                        head_arrival_seq: seq,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn fifo_picks_globally_oldest_job() {
        let tenants = view_of(&[(0, 4, 10, 1, 0, 7), (1, 4, 0, 1, 0, 3), (2, 0, 0, 1, 0, 1)]);
        let mut p = FifoPolicy;
        // Tenant 2 has the oldest seq but no runnable work.
        assert_eq!(p.pick(&SchedView { tenants: &tenants, total_slots: 100 }), Some(TenantId(1)));
    }

    #[test]
    fn capacity_serves_deficit_first_then_spills_over() {
        // Tenant 0 is under its 50% guarantee; tenant 1 is over its 10%.
        let tenants = view_of(&[(0, 5, 10, 1, 50, 0), (1, 5, 30, 1, 10, 1)]);
        let mut p = CapacityPolicy { spillover_pct: 100 };
        assert_eq!(p.pick(&SchedView { tenants: &tenants, total_slots: 100 }), Some(TenantId(0)));
        // Both over guarantee: least-over tenant wins the spillover.
        let tenants = view_of(&[(0, 5, 60, 1, 50, 0), (1, 5, 30, 1, 10, 1)]);
        assert_eq!(p.pick(&SchedView { tenants: &tenants, total_slots: 100 }), Some(TenantId(0)));
        // Strict shares: nobody under guarantee, slot stays idle.
        let mut strict = CapacityPolicy { spillover_pct: 0 };
        assert_eq!(strict.pick(&SchedView { tenants: &tenants, total_slots: 100 }), None);
    }

    #[test]
    fn fair_is_weighted_max_min_with_id_ties() {
        // slots/weight: a=10/1=10, b=15/2=7.5 -> b wins.
        let tenants = view_of(&[(0, 5, 10, 1, 0, 0), (1, 5, 15, 2, 0, 1)]);
        let mut p = FairPolicy::new(1);
        assert_eq!(p.pick(&SchedView { tenants: &tenants, total_slots: 100 }), Some(TenantId(1)));
        // Exact tie on the ratio: lower id wins.
        let tenants = view_of(&[(0, 5, 10, 1, 0, 0), (1, 5, 20, 2, 0, 1)]);
        assert_eq!(p.pick(&SchedView { tenants: &tenants, total_slots: 100 }), Some(TenantId(0)));
    }

    #[test]
    fn fair_burst_sticks_to_the_winner() {
        let tenants = view_of(&[(0, 5, 0, 1, 0, 0), (1, 5, 1, 1, 0, 1)]);
        let mut p = FairPolicy::new(3);
        let view = SchedView { tenants: &tenants, total_slots: 100 };
        assert_eq!(p.pick(&view), Some(TenantId(0)));
        // The view is stale (slots unchanged) but the burst sticks anyway.
        assert_eq!(p.pick(&view), Some(TenantId(0)));
        assert_eq!(p.pick(&view), Some(TenantId(0)));
    }

    #[test]
    fn factory_maps_config_to_policy() {
        for (kind, expect) in [
            (SchedPolicyKind::Fifo, "fifo"),
            (SchedPolicyKind::Capacity, "capacity"),
            (SchedPolicyKind::Fair, "fair"),
        ] {
            let p = policy_for(&SchedConfig::with_policy(kind));
            assert_eq!(p.kind().as_str(), expect);
        }
    }
}
