//! Integration-level determinism and scale acceptance for the warehouse
//! engine.
//!
//! The whole subsystem's contract is that a `(spec, seed)` pair names one
//! exact simulation: same events, same report bytes, on any machine, at
//! any parallelism. These tests pin that contract at realistic scale —
//! the unit tests inside the crate cover it on small topologies.

use alm_sched::{run_seeds, SchedPolicyKind, WarehouseCampaign, WarehouseFault};
use alm_types::RecoveryMode;

/// The ISSUE acceptance campaign: 3 tenants, 8 concurrent jobs each, on a
/// 200-node cluster, with a rack crash mid-flight.
fn acceptance_200(policy: SchedPolicyKind, seed: u64) -> WarehouseCampaign {
    WarehouseCampaign::synthetic(200, 3, 8, policy, RecoveryMode::SfmAlg, seed)
        .with_fault(WarehouseFault::CrashRack { rack: 2, at_secs: 90.0 })
}

#[test]
fn multi_tenant_campaign_is_byte_identical_across_runs() {
    for policy in [SchedPolicyKind::Fifo, SchedPolicyKind::Capacity, SchedPolicyKind::Fair] {
        let a = acceptance_200(policy, 7).run().expect("run a");
        let b = acceptance_200(policy, 7).run().expect("run b");
        assert_eq!(a.canonical_json(), b.canonical_json(), "{policy:?} must be reproducible");
        assert!(a.succeeded(), "{policy:?} campaign must finish");
    }
}

#[test]
fn parallel_executor_is_thread_count_invariant() {
    let make = |seed| acceptance_200(SchedPolicyKind::Fair, seed);
    let seeds: Vec<u64> = (1..=6).collect();
    let serial = run_seeds(make, &seeds, 1).expect("serial");
    for threads in [2usize, 4, 8] {
        let parallel = run_seeds(make, &seeds, threads).expect("parallel");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.canonical_json(), p.canonical_json(), "threads={threads} seed={}", s.seed);
        }
    }
}

/// ISSUE acceptance: the fixed-seed 1000-node / 3-tenant / 24-job campaign
/// completes deterministically under both FIFO and fair policies.
#[test]
fn warehouse_1000_nodes_24_jobs_deterministic_under_fifo_and_fair() {
    for policy in [SchedPolicyKind::Fifo, SchedPolicyKind::Fair] {
        let mk = || {
            WarehouseCampaign::synthetic(1000, 3, 8, policy, RecoveryMode::SfmAlg, 42)
                .with_fault(WarehouseFault::CrashRack { rack: 3, at_secs: 120.0 })
        };
        let a = mk().run().expect("1000-node campaign");
        let b = mk().run().expect("1000-node campaign");
        assert_eq!(a.canonical_json(), b.canonical_json(), "{policy:?}");
        assert_eq!(a.jobs.len(), 24);
        assert!(a.succeeded(), "{policy:?}: all 24 jobs must finish");
        // worker_nodes(): one of the 1000 is the master.
        assert_eq!(a.nodes, 999);
    }
}

/// Recovery-mode ordering must survive scale and multi-tenancy: on the
/// crashed campaign, full treatment (SFM+ALG) cannot be slower than no
/// treatment (baseline) for the tenant that ate the crash.
#[test]
fn recovery_modes_keep_their_ordering_at_scale() {
    let slow = |mode: RecoveryMode| {
        let r = WarehouseCampaign::synthetic(200, 3, 8, SchedPolicyKind::Fair, mode, 7)
            .with_fault(WarehouseFault::CrashRack { rack: 2, at_secs: 90.0 })
            .run()
            .expect("run");
        let rows = r.per_tenant_rows();
        let hit = rows.iter().max_by(|a, b| a.failures.cmp(&b.failures)).expect("rows");
        hit.mean_slowdown
    };
    let baseline = slow(RecoveryMode::Baseline);
    let treated = slow(RecoveryMode::SfmAlg);
    assert!(
        treated <= baseline + 1e-9,
        "SFM+ALG must not slow the wounded tenant down: treated={treated} baseline={baseline}"
    );
}
