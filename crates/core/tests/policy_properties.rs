//! Property-based tests of Algorithm 1: for arbitrary failure reports and
//! scheduler contexts, the policy's invariants hold.

use proptest::prelude::*;
use std::collections::BTreeMap;

use alm_core::{schedule_recovery, ExecMode, PolicyCtx, SchedAction};
use alm_types::{FailureKind, FailureReport, JobId, NodeId, TaskId};

fn arb_report() -> impl Strategy<Value = FailureReport> {
    (
        0u32..30,
        proptest::bool::ANY,
        proptest::collection::btree_set(0u32..40, 0..12),
        proptest::collection::btree_set(0u32..200, 0..30),
    )
        .prop_map(|(node, alive, reduces, maps)| FailureReport {
            source_node: NodeId(node),
            node_alive: alive,
            kind: if alive { FailureKind::TaskOom } else { FailureKind::NodeCrash },
            failed_reduces: reduces.into_iter().map(|i| TaskId::reduce(JobId(0), i)).collect(),
            failed_maps: maps.into_iter().map(|i| TaskId::map(JobId(0), i)).collect(),
        })
}

fn arb_ctx(report: &FailureReport) -> impl Strategy<Value = PolicyCtx> {
    let reduces = report.failed_reduces.clone();
    (
        0u32..3,
        1usize..20,
        0usize..25,
        proptest::collection::vec(0u32..4, reduces.len()),
        proptest::collection::vec(0u32..4, reduces.len()),
    )
        .prop_map(move |(limit_local, fcm_cap, fcm_running, on_node, running)| {
            let mut attempts_on_source_node = BTreeMap::new();
            let mut running_attempts = BTreeMap::new();
            for (i, r) in reduces.iter().enumerate() {
                attempts_on_source_node.insert(*r, on_node[i]);
                running_attempts.insert(*r, running[i]);
            }
            PolicyCtx {
                limit_local,
                fcm_cap,
                max_running_for_speculation: 2,
                fcm_tasks_running: fcm_running,
                attempts_on_source_node,
                running_attempts,
            }
        })
}

proptest! {
    #[test]
    fn policy_invariants(report in arb_report().prop_flat_map(|r| {
        let ctx = arb_ctx(&r);
        (Just(r), ctx)
    })) {
        let (report, ctx) = report;
        report.validate().unwrap();
        let actions = schedule_recovery(&report, &ctx);

        // 1. Every failed map / lost MOF gets exactly one high-priority
        //    re-execution; nothing else launches maps.
        let map_launches: Vec<TaskId> = actions
            .iter()
            .filter_map(|a| match a {
                SchedAction::LaunchMap { task, high_priority } => Some((*task, *high_priority)),
                _ => None,
            })
            .map(|(task, high_priority)| {
                assert!(task.is_map());
                assert!(high_priority, "map regeneration must be high priority");
                task
            })
            .collect();
        prop_assert_eq!(map_launches, report.failed_maps.clone());

        // 2. Local relaunches only when the node lives and the budget allows.
        for a in &actions {
            if let SchedAction::RelaunchReduceOnOrigin { task, node } = a {
                prop_assert!(report.node_alive, "local relaunch on a dead node");
                prop_assert_eq!(*node, report.source_node);
                prop_assert!(ctx.attempts_on_source_node[task] < ctx.limit_local);
            }
        }

        // 3. New FCM admissions never exceed the remaining budget (the
        //    paper's `<=` admits one past the cap; tasks already running
        //    above the cap admit nothing new).
        let fcm_new = actions.iter().filter(|a| matches!(a, SchedAction::LaunchSpeculativeReduce { mode: ExecMode::Fcm, .. })).count();
        let budget = (ctx.fcm_cap + 1).saturating_sub(ctx.fcm_tasks_running);
        prop_assert!(fcm_new <= budget,
            "FCM budget blown: {} new admissions with running {} and cap {}", fcm_new, ctx.fcm_tasks_running, ctx.fcm_cap);

        // 4. At most one speculative attempt per failed reduce, always
        //    avoiding the failure's source node; none for maps.
        let mut spec_seen = std::collections::HashSet::new();
        for a in &actions {
            if let SchedAction::LaunchSpeculativeReduce { task, avoid, .. } = a {
                prop_assert!(task.is_reduce());
                prop_assert!(report.failed_reduces.contains(task));
                prop_assert_eq!(*avoid, Some(report.source_node));
                prop_assert!(spec_seen.insert(*task), "duplicate speculative attempt for {task}");
            }
        }

        // 5. Reduces with too many running attempts get no speculative copy.
        for r in &report.failed_reduces {
            let running = ctx.running_attempts[r]
                + actions.iter().filter(|a| matches!(a, SchedAction::RelaunchReduceOnOrigin { task, .. } if task == r)).count() as u32;
            let has_spec = actions.iter().any(|a| matches!(a, SchedAction::LaunchSpeculativeReduce { task, .. } if task == r));
            if running > ctx.max_running_for_speculation {
                prop_assert!(!has_spec, "speculation despite {running} running attempts of {r}");
            } else {
                prop_assert!(has_spec, "missing speculation for {r} with {running} running attempts");
            }
        }
    }

    /// The policy is a pure function: same inputs, same actions.
    #[test]
    fn policy_is_deterministic(pair in arb_report().prop_flat_map(|r| {
        let ctx = arb_ctx(&r);
        (Just(r), ctx)
    })) {
        let (report, ctx) = pair;
        prop_assert_eq!(schedule_recovery(&report, &ctx), schedule_recovery(&report, &ctx));
    }
}
