//! Algorithm 1: the Enhanced Failure Recovery Scheduling Policy.
//!
//! A pure function from a [`FailureReport`] plus scheduler context to a
//! list of scheduling actions, so both engines (threads and DES) execute
//! the identical policy and tests can enumerate its behaviour exhaustively.
//!
//! Line-by-line correspondence with the paper's listing is noted inline.

use alm_types::{AlmConfig, FailureReport, NodeId, TaskId};
use std::collections::BTreeMap;

/// How a recovery ReduceTask attempt executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Plain ReduceTask (fetch + merge + reduce itself).
    Regular,
    /// Fast Collective Merging: participants pre-merge and stream.
    Fcm,
}

/// One scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedAction {
    /// Lines 5–7: re-execute a MapTask (failed, or its MOF was lost) on a
    /// healthy node, at elevated priority, so MOFs are regenerated before
    /// reducers stall — this is what kills spatial/temporal amplification.
    LaunchMap { task: TaskId, high_priority: bool },
    /// Lines 9–12: the source node still lives, so re-launch the failed
    /// ReduceTask *there*, where its local analytics logs and intermediate
    /// files survive.
    RelaunchReduceOnOrigin { task: TaskId, node: NodeId },
    /// Lines 14–21: a speculative recovery attempt on a healthy node,
    /// in FCM mode while the job-wide FCM budget lasts.
    LaunchSpeculativeReduce { task: TaskId, mode: ExecMode, avoid: Option<NodeId> },
}

/// Scheduler-side context the policy needs.
#[derive(Debug, Clone)]
pub struct PolicyCtx {
    /// Algorithm 1 line 10: `limit_local`.
    pub limit_local: u32,
    /// Line 16: `FCM_cap`.
    pub fcm_cap: usize,
    /// Line 14: speculation threshold on running attempts (paper: 2).
    pub max_running_for_speculation: u32,
    /// FCM-mode recovery tasks currently running in the job.
    pub fcm_tasks_running: usize,
    /// Per failed ReduceTask: attempts already made on the source node.
    pub attempts_on_source_node: BTreeMap<TaskId, u32>,
    /// Per failed ReduceTask: attempts currently running elsewhere.
    pub running_attempts: BTreeMap<TaskId, u32>,
}

impl PolicyCtx {
    pub fn new(config: &AlmConfig, fcm_tasks_running: usize) -> PolicyCtx {
        PolicyCtx {
            limit_local: config.limit_local,
            fcm_cap: config.fcm_cap,
            max_running_for_speculation: config.max_running_attempts_for_speculation,
            fcm_tasks_running,
            attempts_on_source_node: BTreeMap::new(),
            running_attempts: BTreeMap::new(),
        }
    }

    fn attempts_on_node(&self, task: TaskId) -> u32 {
        self.attempts_on_source_node.get(&task).copied().unwrap_or(0)
    }

    fn running(&self, task: TaskId) -> u32 {
        self.running_attempts.get(&task).copied().unwrap_or(0)
    }
}

/// Execute Algorithm 1 over one failure report.
pub fn schedule_recovery(report: &FailureReport, ctx: &PolicyCtx) -> Vec<SchedAction> {
    let mut actions = Vec::new();
    let mut fcm_running = ctx.fcm_tasks_running;

    // Lines 5–7: every failed map / lost MOF is re-executed with higher
    // priority on a healthy node.
    for &m in &report.failed_maps {
        debug_assert!(m.is_map());
        actions.push(SchedAction::LaunchMap { task: m, high_priority: true });
    }

    // Lines 8–22.
    for &r in &report.failed_reduces {
        debug_assert!(r.is_reduce());
        let mut running = ctx.running(r);

        // Lines 9–13: local resume only while the node lives and the
        // local-attempt budget is not exhausted.
        if report.node_alive && ctx.attempts_on_node(r) < ctx.limit_local {
            actions.push(SchedAction::RelaunchReduceOnOrigin { task: r, node: report.source_node });
            running += 1; // the relaunched attempt counts as running below
        }

        // Line 14: spawn a speculative recovery attempt unless enough
        // attempts are already in flight.
        if running <= ctx.max_running_for_speculation {
            // Lines 15–20: FCM mode while the job-wide cap allows.
            let mode = if fcm_running <= ctx.fcm_cap {
                fcm_running += 1;
                ExecMode::Fcm
            } else {
                ExecMode::Regular
            };
            actions.push(SchedAction::LaunchSpeculativeReduce {
                task: r,
                mode,
                avoid: Some(report.source_node),
            });
        }
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::{FailureKind, JobId, RecoveryMode};

    fn cfg() -> AlmConfig {
        AlmConfig::with_mode(RecoveryMode::SfmAlg)
    }

    fn job() -> JobId {
        JobId(0)
    }

    fn node_crash_report(n_reduces: u32, n_maps: u32) -> FailureReport {
        FailureReport::node_crash(
            NodeId(3),
            (0..n_reduces).map(|i| TaskId::reduce(job(), i)),
            (0..n_maps).map(|i| TaskId::map(job(), i)),
        )
    }

    #[test]
    fn maps_always_relaunched_high_priority() {
        let report = node_crash_report(0, 5);
        let actions = schedule_recovery(&report, &PolicyCtx::new(&cfg(), 0));
        assert_eq!(actions.len(), 5);
        for a in &actions {
            assert!(matches!(a, SchedAction::LaunchMap { high_priority: true, .. }));
        }
    }

    #[test]
    fn dead_node_migrates_reduce_with_fcm() {
        let report = node_crash_report(1, 2);
        let actions = schedule_recovery(&report, &PolicyCtx::new(&cfg(), 0));
        // 2 maps + 1 speculative FCM reduce; NO local relaunch (node dead).
        assert_eq!(actions.len(), 3);
        assert!(actions.iter().any(|a| matches!(
            a,
            SchedAction::LaunchSpeculativeReduce { mode: ExecMode::Fcm, avoid: Some(n), .. } if *n == NodeId(3)
        )));
        assert!(!actions.iter().any(|a| matches!(a, SchedAction::RelaunchReduceOnOrigin { .. })));
    }

    #[test]
    fn live_node_gets_local_resume_plus_speculation() {
        let r = TaskId::reduce(job(), 0);
        let report = FailureReport::task_failure(NodeId(1), FailureKind::TaskOom, r);
        assert!(report.node_alive);
        let actions = schedule_recovery(&report, &PolicyCtx::new(&cfg(), 0));
        assert!(actions.contains(&SchedAction::RelaunchReduceOnOrigin { task: r, node: NodeId(1) }));
        assert!(actions.iter().any(|a| matches!(a, SchedAction::LaunchSpeculativeReduce { .. })));
    }

    #[test]
    fn limit_local_exhausted_falls_back_to_migration_only() {
        let r = TaskId::reduce(job(), 0);
        let report = FailureReport::task_failure(NodeId(1), FailureKind::TaskOom, r);
        let mut ctx = PolicyCtx::new(&cfg(), 0);
        ctx.attempts_on_source_node.insert(r, ctx.limit_local); // budget spent
        let actions = schedule_recovery(&report, &ctx);
        assert!(!actions.iter().any(|a| matches!(a, SchedAction::RelaunchReduceOnOrigin { .. })));
        assert!(actions.iter().any(|a| matches!(a, SchedAction::LaunchSpeculativeReduce { .. })));
    }

    #[test]
    fn speculation_suppressed_when_enough_attempts_running() {
        let r = TaskId::reduce(job(), 0);
        let report = FailureReport::node_crash(NodeId(1), [r], []);
        let mut ctx = PolicyCtx::new(&cfg(), 0);
        ctx.running_attempts.insert(r, 3); // > 2
        let actions = schedule_recovery(&report, &ctx);
        assert!(actions.is_empty(), "no actions: node dead, too many attempts running");
    }

    #[test]
    fn local_relaunch_counts_toward_running_attempts() {
        // With 2 attempts already running and a live node, the local
        // relaunch pushes running to 3 > 2, so speculation is suppressed.
        let r = TaskId::reduce(job(), 0);
        let report = FailureReport::task_failure(NodeId(1), FailureKind::TaskOom, r);
        let mut ctx = PolicyCtx::new(&cfg(), 0);
        ctx.running_attempts.insert(r, 2);
        let actions = schedule_recovery(&report, &ctx);
        assert_eq!(actions, vec![SchedAction::RelaunchReduceOnOrigin { task: r, node: NodeId(1) }]);
    }

    #[test]
    fn fcm_cap_limits_fcm_mode_within_one_report() {
        let mut cfg = cfg();
        cfg.fcm_cap = 2;
        let report = node_crash_report(6, 0);
        let actions = schedule_recovery(&report, &PolicyCtx::new(&cfg, 0));
        let fcm = actions
            .iter()
            .filter(|a| matches!(a, SchedAction::LaunchSpeculativeReduce { mode: ExecMode::Fcm, .. }))
            .count();
        let regular = actions
            .iter()
            .filter(|a| matches!(a, SchedAction::LaunchSpeculativeReduce { mode: ExecMode::Regular, .. }))
            .count();
        // Paper line 16 uses `<=`, so cap+1 FCM tasks can be admitted.
        assert_eq!(fcm, 3);
        assert_eq!(regular, 3);
    }

    #[test]
    fn fcm_cap_accounts_for_already_running_fcm_tasks() {
        let mut cfg = cfg();
        cfg.fcm_cap = 2;
        let report = node_crash_report(2, 0);
        let actions = schedule_recovery(&report, &PolicyCtx::new(&cfg, 10));
        for a in &actions {
            assert!(matches!(a, SchedAction::LaunchSpeculativeReduce { mode: ExecMode::Regular, .. }));
        }
    }

    #[test]
    fn paper_default_cap_is_respected_across_many_failures() {
        let report = node_crash_report(20, 0);
        let actions = schedule_recovery(&report, &PolicyCtx::new(&cfg(), 0));
        let fcm = actions
            .iter()
            .filter(|a| matches!(a, SchedAction::LaunchSpeculativeReduce { mode: ExecMode::Fcm, .. }))
            .count();
        assert_eq!(fcm, 11, "default cap 10 with <= admits 11");
        assert_eq!(actions.len(), 20);
    }
}
