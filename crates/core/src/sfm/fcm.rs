//! Fast Collective Merging (§IV-A).
//!
//! "The key idea of FCM is to ask each node to merge local intermediate
//! data before supplying them to the recovering ReduceTask." Each
//! participant builds a **Local-MPQ** over its local segments and streams
//! the merged run, chunk by chunk, to the recovering ReduceTask, whose
//! **Global-MPQ** merges the participant streams while the reduce function
//! consumes them — a fully in-memory pipeline overlapping shuffle, merge
//! and reduce.
//!
//! In this engine every participant is a thread with a bounded channel to
//! the global merger; chunk boundaries always align with record boundaries
//! so the streaming reader never sees a torn record. FCM keeps no local
//! intermediate state (§IV-A.1), so a failed recovery just drops the
//! channels and a new attempt rebuilds from the (still present) map-side
//! segments.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::VecDeque;

use alm_shuffle::error::{Result, ShuffleError};
use alm_shuffle::mpq::SortedRun;
use alm_shuffle::{codec, KeyCmp, MergeQueue, SegmentReader, SegmentSource};
use alm_types::NodeId;

/// Default chunk size for participant → reducer streaming.
pub const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// Bounded pipeline depth: how many chunks a participant may run ahead of
/// the global merge. Keeps the whole pipeline in memory yet bounded.
const PIPELINE_DEPTH: usize = 4;

/// Outcome statistics of one collective merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FcmStats {
    pub participants: usize,
    pub records: u64,
    pub bytes: u64,
}

/// A [`SortedRun`] fed by a channel of record-aligned encoded chunks.
pub struct ChannelRun {
    source: SegmentSource,
    rx: Receiver<Result<Bytes>>,
    chunks: VecDeque<Bytes>,
    /// Decode position within `chunks[0]`.
    pos: usize,
    current: Option<(Bytes, Bytes)>,
    finished: bool,
}

impl ChannelRun {
    /// Wrap a receiving channel; blocks until the first record (or end of
    /// stream) arrives.
    pub fn new(node: NodeId, rx: Receiver<Result<Bytes>>) -> Result<ChannelRun> {
        let mut run = ChannelRun {
            source: SegmentSource::Memory { id: node.0 as u64 },
            rx,
            chunks: VecDeque::new(),
            pos: 0,
            current: None,
            finished: false,
        };
        run.decode_next()?;
        Ok(run)
    }

    fn refill(&mut self) -> Result<()> {
        while self.chunks.is_empty() && !self.finished {
            match self.rx.recv() {
                Ok(Ok(chunk)) => {
                    if !chunk.is_empty() {
                        self.chunks.push_back(chunk);
                        self.pos = 0;
                    }
                }
                Ok(Err(e)) => {
                    self.finished = true;
                    return Err(e);
                }
                Err(_) => self.finished = true, // producer done
            }
        }
        Ok(())
    }

    fn decode_next(&mut self) -> Result<()> {
        loop {
            if let Some(front) = self.chunks.front() {
                match codec::decode_at(front, self.pos)? {
                    Some((k, v, next)) => {
                        self.current = Some((k, v));
                        self.pos = next;
                        return Ok(());
                    }
                    None => {
                        self.chunks.pop_front();
                        self.pos = 0;
                        continue;
                    }
                }
            }
            self.refill()?;
            if self.chunks.is_empty() {
                self.current = None;
                return Ok(());
            }
        }
    }
}

impl SortedRun for ChannelRun {
    fn key(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(k, _)| &k[..])
    }

    fn value(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(_, v)| &v[..])
    }

    fn advance(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        let out = self.current.take();
        if out.is_some() {
            self.decode_next()?;
        }
        Ok(out)
    }

    fn source(&self) -> &SegmentSource {
        &self.source
    }
}

/// One participant's contribution: its node id and the local segments of
/// the recovering reducer's partition.
pub struct Participant {
    pub node: NodeId,
    pub segments: Vec<SegmentReader>,
}

/// Run a participant's Local-MPQ, streaming merged chunks into `tx`.
fn run_local_mpq(cmp: KeyCmp, segments: Vec<SegmentReader>, chunk_bytes: usize, tx: Sender<Result<Bytes>>) {
    let mut q = MergeQueue::new(cmp, segments);
    let mut buf = Vec::with_capacity(chunk_bytes + 256);
    loop {
        match q.pop() {
            Ok(Some((k, v))) => {
                codec::encode_into(&mut buf, &k, &v);
                if buf.len() >= chunk_bytes {
                    // Record-aligned flush; a closed channel means the
                    // recovery attempt died — just stop (FCM teardown).
                    if tx.send(Ok(Bytes::from(std::mem::take(&mut buf)))).is_err() {
                        return;
                    }
                }
            }
            Ok(None) => break,
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
    if !buf.is_empty() {
        let _ = tx.send(Ok(Bytes::from(buf)));
    }
}

/// A running collective-merge pipeline: the participant producer threads
/// plus the channel-fed runs their Local-MPQs stream into. Dropping the
/// session (or its runs) closes the channels, which is FCM's teardown: the
/// participants observe the closed channel and stop.
pub struct FcmPipeline {
    pub runs: Vec<ChannelRun>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl FcmPipeline {
    /// Wait for all participant threads to finish (after draining or
    /// dropping the runs).
    pub fn join(self) -> Result<()> {
        for h in self.handles {
            h.join().map_err(|_| ShuffleError::Invalid("FCM participant thread panicked".into()))?;
        }
        Ok(())
    }
}

/// Start the per-participant Local-MPQ threads and return the streaming
/// runs for the caller's Global-MPQ. This is the building block used by
/// `alm-runtime`'s FCM-mode ReduceTask, which needs to own the merge loop
/// (for grouping, logging and cancellation).
pub fn spawn_participants(
    cmp: &KeyCmp,
    participants: Vec<Participant>,
    chunk_bytes: usize,
) -> Result<FcmPipeline> {
    let chunk_bytes = chunk_bytes.max(64);
    let mut handles = Vec::with_capacity(participants.len());
    let mut runs = Vec::with_capacity(participants.len());
    for p in participants {
        let (tx, rx) = bounded::<Result<Bytes>>(PIPELINE_DEPTH);
        let cmp_clone = cmp.clone();
        let segs = p.segments;
        handles.push(std::thread::spawn(move || run_local_mpq(cmp_clone, segs, chunk_bytes, tx)));
        runs.push(ChannelRun::new(p.node, rx));
    }
    let runs: Result<Vec<ChannelRun>> = runs.into_iter().collect();
    match runs {
        Ok(runs) => Ok(FcmPipeline { runs, handles }),
        Err(e) => {
            // Construction failed: drop what we built; producers see the
            // closed channels and stop, then we reap them.
            for h in handles {
                let _ = h.join();
            }
            Err(e)
        }
    }
}

/// Execute Fast Collective Merging: every participant pre-merges its local
/// segments on its own thread and streams to the Global-MPQ here, which
/// drives `sink` with globally merged records.
pub fn collective_merge(
    cmp: &KeyCmp,
    participants: Vec<Participant>,
    chunk_bytes: usize,
    mut sink: impl FnMut(&[u8], &[u8]),
) -> Result<FcmStats> {
    let n = participants.len();
    let runs = spawn_participants(cmp, participants, chunk_bytes)?.into_runs_and_detach();
    let mut q = MergeQueue::new(cmp.clone(), runs);
    let mut stats = FcmStats { participants: n, records: 0, bytes: 0 };
    while let Some((k, v)) = q.pop()? {
        stats.records += 1;
        stats.bytes += codec::encoded_len(k.len(), v.len()) as u64;
        sink(&k, &v);
    }
    Ok(stats)
}

impl FcmPipeline {
    /// Take the runs and detach the producer threads (they terminate once
    /// their stream is drained or dropped). Used by the convenience
    /// [`collective_merge`]; long-lived callers should prefer keeping the
    /// pipeline and calling [`FcmPipeline::join`].
    pub fn into_runs_and_detach(self) -> Vec<ChannelRun> {
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_shuffle::bytewise_cmp;
    use alm_shuffle::segment::build_segment;
    use proptest::prelude::*;

    fn reader(id: u64, keys: &[&str]) -> SegmentReader {
        let recs: Vec<(Vec<u8>, Vec<u8>)> =
            keys.iter().map(|k| (k.as_bytes().to_vec(), b"v".to_vec())).collect();
        SegmentReader::new(SegmentSource::Memory { id }, build_segment(&recs)).unwrap()
    }

    #[test]
    fn collective_merge_is_globally_sorted() {
        let participants = vec![
            Participant { node: NodeId(0), segments: vec![reader(0, &["a", "e"]), reader(1, &["c"])] },
            Participant { node: NodeId(1), segments: vec![reader(2, &["b", "d", "f"])] },
        ];
        let mut keys = Vec::new();
        let stats =
            collective_merge(&bytewise_cmp(), participants, 64, |k, _| keys.push(k.to_vec())).unwrap();
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec(), b"e".to_vec(), b"f".to_vec()]
        );
        assert_eq!(stats.participants, 2);
        assert_eq!(stats.records, 6);
    }

    #[test]
    fn empty_participants_yield_empty_stats() {
        let stats = collective_merge(&bytewise_cmp(), vec![], 1024, |_, _| panic!("no records")).unwrap();
        assert_eq!(stats.records, 0);
        let stats = collective_merge(
            &bytewise_cmp(),
            vec![Participant { node: NodeId(0), segments: vec![] }],
            1024,
            |_, _| panic!("no records"),
        )
        .unwrap();
        assert_eq!(stats.records, 0);
        assert_eq!(stats.participants, 1);
    }

    #[test]
    fn tiny_chunks_exercise_chunk_boundaries() {
        // chunk_bytes is clamped to 64, below any realistic record run, so
        // nearly every record crosses a channel send.
        let participants = vec![
            Participant {
                node: NodeId(0),
                segments: vec![reader(0, &["aaaaaaaaaaaaaaaa", "cccccccccccccccc"])],
            },
            Participant {
                node: NodeId(1),
                segments: vec![reader(1, &["bbbbbbbbbbbbbbbb", "dddddddddddddddd"])],
            },
        ];
        let mut keys = Vec::new();
        collective_merge(&bytewise_cmp(), participants, 1, |k, _| keys.push(k[0])).unwrap();
        assert_eq!(keys, vec![b'a', b'b', b'c', b'd']);
    }

    proptest! {
        /// FCM's pipelined collective merge produces exactly the same
        /// stream as a single-node merge of all segments.
        #[test]
        fn fcm_equivalent_to_single_node_merge(
            node_segs in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec((proptest::collection::vec(0u8..=255, 1..6), proptest::collection::vec(0u8..=255, 0..6)), 0..25),
                    0..4),
                1..5),
            chunk in 64usize..512,
        ) {
            let mut single_readers = Vec::new();
            let mut participants = Vec::new();
            let mut id = 0u64;
            for (n, segs) in node_segs.iter().enumerate() {
                let mut p = Participant { node: NodeId(n as u32), segments: Vec::new() };
                for seg in segs {
                    let mut sorted = seg.clone();
                    sorted.sort_by(|a, b| a.0.cmp(&b.0));
                    let data = build_segment(&sorted);
                    p.segments.push(SegmentReader::new(SegmentSource::Memory { id }, data.clone()).unwrap());
                    single_readers.push(SegmentReader::new(SegmentSource::Memory { id }, data).unwrap());
                    id += 1;
                }
                participants.push(p);
            }
            let mut single = MergeQueue::new(bytewise_cmp(), single_readers);
            let expected: Vec<Vec<u8>> = single.drain().unwrap().into_iter().map(|(k, _)| k.to_vec()).collect();
            let mut got = Vec::new();
            collective_merge(&bytewise_cmp(), participants, chunk, |k, _| got.push(k.to_vec())).unwrap();
            prop_assert_eq!(got, expected);
        }
    }
}
