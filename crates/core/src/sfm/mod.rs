//! Speculative Fast Migration (SFM, §IV).
//!
//! * [`policy`] — Algorithm 1, the enhanced failure recovery scheduling
//!   policy: proactive MapTask re-execution, local ReduceTask resume on
//!   still-alive nodes, and capped FCM-mode speculative recovery attempts.
//! * [`fcm`] — Fast Collective Merging: participant nodes pre-merge their
//!   local segments (Local-MPQ) and stream the merged runs to the
//!   recovering ReduceTask's Global-MPQ, keeping everything in memory and
//!   overlapping shuffle, merge and reduce.

pub mod fcm;
pub mod policy;

/// Book-keeping for one node's FCM participation (§IV-A.1): "When the
/// participant nodes in FCM receive no request from a recovering
/// ReduceTask after a timeout period, they then dismantle their
/// Local-MPQs."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcmSession {
    pub created_ms: u64,
    pub last_request_ms: u64,
}

impl FcmSession {
    pub fn new(now_ms: u64) -> FcmSession {
        FcmSession { created_ms: now_ms, last_request_ms: now_ms }
    }

    /// Record a request from the recovering ReduceTask.
    pub fn touch(&mut self, now_ms: u64) {
        self.last_request_ms = self.last_request_ms.max(now_ms);
    }

    /// Whether the Local-MPQ should be dismantled.
    pub fn should_teardown(&self, now_ms: u64, timeout_ms: u64) -> bool {
        now_ms.saturating_sub(self.last_request_ms) >= timeout_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teardown_after_idle_timeout() {
        let mut s = FcmSession::new(1000);
        assert!(!s.should_teardown(1500, 1000));
        assert!(s.should_teardown(2000, 1000));
        s.touch(1800);
        assert!(!s.should_teardown(2000, 1000));
        assert!(s.should_teardown(2800, 1000));
    }

    #[test]
    fn touch_never_goes_backwards() {
        let mut s = FcmSession::new(1000);
        s.touch(500);
        assert_eq!(s.last_request_ms, 1000);
    }
}
