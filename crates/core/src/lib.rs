//! The ALM framework — the paper's contribution.
//!
//! Two cooperating techniques crack down MapReduce failure amplification:
//!
//! * [`alg`] — **Analytics LogGing** (§III): a non-intrusive, task-level,
//!   asynchronous logging mechanism that snapshots the key progress of a
//!   running ReduceTask (Fig. 6's stage-specific record formats) so a
//!   recovering attempt resumes instead of restarting. Shuffle/merge-stage
//!   logs go to the node-local store; reduce-stage logs and flushed reduce
//!   output go to the DFS with a configurable replication level.
//!
//! * [`sfm`] — **Speculative Fast Migration** (§IV): the enhanced recovery
//!   scheduling policy (Algorithm 1) that proactively re-executes MapTasks
//!   from failed nodes, migrates ReduceTasks, and recovers them with
//!   **Fast Collective Merging** — every participant node pre-merges its
//!   local segments into a Local-MPQ and streams the merged run to the
//!   recovering ReduceTask's Global-MPQ, overlapping shuffle, merge and
//!   reduce entirely in memory.
//!
//! Both techniques are engine-agnostic: the threaded runtime
//! (`alm-runtime`) executes them over real bytes, the discrete-event
//! simulator (`alm-sim`) drives the same policy logic with modelled costs.

#![forbid(unsafe_code)]

pub mod alg;
pub mod sfm;

pub use alg::logger::PartialOutput;
pub use alg::logger::{AnalyticsLogger, LogPaths};
pub use alg::record::{LogRecord, MpqLogEntry, StageLog};
pub use alg::recovery::{
    find_latest_log, find_latest_log_with_report, recover_state, recover_state_with_report, RecoveredState,
    RecoveryReport,
};
pub use sfm::fcm::{collective_merge, spawn_participants, ChannelRun, FcmPipeline, FcmStats, Participant};
pub use sfm::policy::{schedule_recovery, ExecMode, PolicyCtx, SchedAction};
pub use sfm::FcmSession;
