//! Analytics log records — the concrete realisation of Fig. 6.
//!
//! Records are serialised as JSON inside the shared CRC32-checksummed
//! frame ([`alm_shuffle::frame`]). A torn record (the node died
//! mid-write) decodes to [`ShuffleError::Corrupt`]; an intact record
//! whose bytes rotted decodes to [`ShuffleError::ChecksumMismatch`].
//! Recovery treats either as a truncation point: it resumes from the
//! last good snapshot before the damage — logging is always safe to
//! interrupt and at most one snapshot interval of work is redone.

use alm_types::{AttemptId, ReducePhase};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

use alm_shuffle::frame;
use alm_shuffle::{MpqEntry, SegmentSource, ShuffleError};

/// One MPQ member in a reduce-stage log: the segment's location and the
/// byte offset of its next unconsumed record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MpqLogEntry {
    pub source: SegmentSource,
    pub offset: u64,
}

impl From<&MpqEntry> for MpqLogEntry {
    fn from(e: &MpqEntry) -> MpqLogEntry {
        MpqLogEntry { source: e.source.clone(), offset: e.offset as u64 }
    }
}

/// Stage-specific progress payload (the three columns of Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageLog {
    /// Shuffle stage: which MOFs have been fetched and where the local
    /// intermediate files are. On resume, only the missing MOFs are
    /// re-fetched.
    Shuffle { shuffled_bytes: u64, fetched_mof_ids: Vec<u32>, intermediate_files: Vec<String> },
    /// Merge stage: all segments are local; only the file paths (and how
    /// far the factor-merge has come) matter.
    Merge { merge_progress: f64, intermediate_files: Vec<String> },
    /// Reduce stage: the MPQ structure plus the amount of reduce work
    /// already done and where its flushed output lives on the DFS.
    Reduce {
        records_processed: u64,
        mpq: Vec<MpqLogEntry>,
        /// DFS path of the (asynchronously flushed) partial reduce output.
        output_path: String,
        output_records: u64,
    },
}

impl StageLog {
    pub fn phase(&self) -> ReducePhase {
        match self {
            StageLog::Shuffle { .. } => ReducePhase::Shuffle,
            StageLog::Merge { .. } => ReducePhase::Merge,
            StageLog::Reduce { .. } => ReducePhase::Reduce,
        }
    }
}

/// A complete, self-describing log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Format version for forward compatibility.
    pub version: u32,
    /// The attempt that wrote the record.
    pub attempt: AttemptId,
    /// Monotonic sequence number within the attempt; recovery picks the
    /// highest valid one.
    pub seq: u64,
    /// Virtual/real timestamp (ms) at write time — diagnostics only.
    pub at_ms: u64,
    pub stage: StageLog,
}

pub const LOG_FORMAT_VERSION: u32 = 1;

/// Envelope: one CRC32 frame (`[len u32 BE][crc32 u32 BE][json]`).
impl LogRecord {
    pub fn new(attempt: AttemptId, seq: u64, at_ms: u64, stage: StageLog) -> LogRecord {
        LogRecord { version: LOG_FORMAT_VERSION, attempt, seq, at_ms, stage }
    }

    pub fn encode(&self) -> Bytes {
        let payload = serde_json::to_vec(self).expect("log records always serialise");
        Bytes::from(frame::frame(&payload))
    }

    /// Decode one framed record. Torn/truncated bytes are
    /// [`ShuffleError::Corrupt`]; an intact frame with rotted payload is
    /// [`ShuffleError::ChecksumMismatch`] — recovery truncates the log at
    /// either, but reports them distinctly.
    pub fn decode(data: &[u8]) -> Result<LogRecord, ShuffleError> {
        let payload = frame::unframe(&Bytes::copy_from_slice(data))?;
        serde_json::from_slice(&payload).map_err(|e| ShuffleError::Corrupt(format!("log record json: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::{JobId, TaskId};
    use proptest::prelude::*;

    fn attempt() -> AttemptId {
        TaskId::reduce(JobId(1), 3).attempt(0)
    }

    #[test]
    fn round_trip_each_stage() {
        let stages = [
            StageLog::Shuffle {
                shuffled_bytes: 1 << 30,
                fetched_mof_ids: vec![0, 1, 5],
                intermediate_files: vec!["r/seg-0.out".into()],
            },
            StageLog::Merge { merge_progress: 0.4, intermediate_files: vec!["r/merged-1.out".into()] },
            StageLog::Reduce {
                records_processed: 12345,
                mpq: vec![MpqLogEntry {
                    source: SegmentSource::LocalFile { path: "r/final-0.out".into() },
                    offset: 4096,
                }],
                output_path: "/out/part-3".into(),
                output_records: 999,
            },
        ];
        for (i, stage) in stages.into_iter().enumerate() {
            let rec = LogRecord::new(attempt(), i as u64, 42_000, stage.clone());
            let back = LogRecord::decode(&rec.encode()).unwrap();
            assert_eq!(back, rec);
            assert_eq!(back.stage.phase(), stage.phase());
        }
    }

    #[test]
    fn stage_phases() {
        assert_eq!(
            StageLog::Shuffle { shuffled_bytes: 0, fetched_mof_ids: vec![], intermediate_files: vec![] }
                .phase(),
            ReducePhase::Shuffle
        );
        assert_eq!(
            StageLog::Merge { merge_progress: 0.0, intermediate_files: vec![] }.phase(),
            ReducePhase::Merge
        );
    }

    #[test]
    fn torn_record_detected() {
        let rec = LogRecord::new(
            attempt(),
            0,
            0,
            StageLog::Merge { merge_progress: 0.5, intermediate_files: vec![] },
        );
        let bytes = rec.encode();
        // Truncate the payload: torn write, classified as corruption.
        assert!(matches!(LogRecord::decode(&bytes[..bytes.len() - 3]), Err(ShuffleError::Corrupt(_))));
        // Flip a payload byte: detected checksum mismatch, distinct class.
        let mut corrupted = bytes.to_vec();
        let last = corrupted.len() - 5;
        corrupted[last] ^= 0xff;
        assert!(matches!(LogRecord::decode(&corrupted), Err(ShuffleError::ChecksumMismatch(_))));
        // Too short for even the envelope.
        assert!(matches!(LogRecord::decode(&[1, 2, 3]), Err(ShuffleError::Corrupt(_))));
    }

    proptest! {
        #[test]
        fn arbitrary_shuffle_logs_round_trip(
            bytes_shuffled in proptest::num::u64::ANY,
            mofs in proptest::collection::vec(0u32..5000, 0..50),
            files in proptest::collection::vec("[a-z0-9/._-]{1,30}", 0..10),
            seq in proptest::num::u64::ANY,
        ) {
            let rec = LogRecord::new(attempt(), seq, 1, StageLog::Shuffle {
                shuffled_bytes: bytes_shuffled,
                fetched_mof_ids: mofs,
                intermediate_files: files,
            });
            prop_assert_eq!(LogRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }
}
