//! Turning logged records back into runnable ReduceTask state.
//!
//! "A recovering ReduceTask looks up the previously generated log files for
//! one that records the progress in the reduce stage" (§IV). Lookup order:
//!
//! 1. the newest valid **reduce-stage** record on the DFS — available even
//!    after a node crash;
//! 2. the newest valid **shuffle/merge-stage** record on the original
//!    node's local store — available only when that node still lives
//!    (Algorithm 1's local-resume path);
//! 3. nothing — recover from scratch (stock YARN behaviour).
//!
//! The log is a journal: records are trusted only up to the first
//! bad/torn one. A damaged record (torn write or detected checksum
//! mismatch) *truncates* the scan — recovery resumes from the last good
//! snapshot strictly before the damage rather than trusting anything
//! after it, so a corruption hit costs at most one snapshot interval of
//! redone work instead of a restart from zero. [`RecoveryReport`]
//! records where the truncation happened so harnesses can assert that
//! bound.

use alm_dfs::DfsCluster;
use alm_shuffle::{LocalFs, ShuffleError};
use serde::{Deserialize, Serialize};

use super::logger::LogPaths;
use super::record::{LogRecord, MpqLogEntry, StageLog};

/// What recovery managed to restore.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredState {
    /// Resume mid-reduce: rebuild the MPQ from `(source, offset)` entries,
    /// skip `records_processed` records' worth of work, reuse the flushed
    /// output.
    ReduceStage {
        records_processed: u64,
        mpq: Vec<MpqLogEntry>,
        output_path: String,
        output_records: u64,
        seq: u64,
    },
    /// Resume at the merge stage with these local intermediate files.
    MergeStage { intermediate_files: Vec<String>, merge_progress: f64, seq: u64 },
    /// Resume mid-shuffle: re-fetch only the missing MOFs.
    ShuffleStage { shuffled_bytes: u64, fetched_mof_ids: Vec<u32>, intermediate_files: Vec<String>, seq: u64 },
    /// No usable log: start from scratch.
    Fresh,
}

impl RecoveredState {
    pub fn from_record(rec: LogRecord) -> RecoveredState {
        match rec.stage {
            StageLog::Reduce { records_processed, mpq, output_path, output_records } => {
                RecoveredState::ReduceStage {
                    records_processed,
                    mpq,
                    output_path,
                    output_records,
                    seq: rec.seq,
                }
            }
            StageLog::Merge { merge_progress, intermediate_files } => {
                RecoveredState::MergeStage { intermediate_files, merge_progress, seq: rec.seq }
            }
            StageLog::Shuffle { shuffled_bytes, fetched_mof_ids, intermediate_files } => {
                RecoveredState::ShuffleStage {
                    shuffled_bytes,
                    fetched_mof_ids,
                    intermediate_files,
                    seq: rec.seq,
                }
            }
        }
    }

    /// Sequence number of the restored record (for `resume_after`).
    pub fn seq(&self) -> Option<u64> {
        match self {
            RecoveredState::ReduceStage { seq, .. }
            | RecoveredState::MergeStage { seq, .. }
            | RecoveredState::ShuffleStage { seq, .. } => Some(*seq),
            RecoveredState::Fresh => None,
        }
    }

    pub fn is_fresh(&self) -> bool {
        matches!(self, RecoveredState::Fresh)
    }
}

/// Forensics of one log scan: where recovery resumed and what it had to
/// discard. The transient-fault harness asserts its bound — a corrupted
/// record truncates the log *at that seq*, so the resume point is the
/// immediately preceding snapshot and redone work is at most one logging
/// interval.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Seq of the snapshot recovery resumed from, if any.
    pub resumed_seq: Option<u64>,
    /// Seq of the first bad/torn record, where the scan truncated the log.
    pub truncated_at_seq: Option<u64>,
    /// Records discarded at and after the truncation point.
    pub discarded_records: usize,
    /// How many of the discards were *detected* checksum mismatches (bit
    /// rot inside an intact frame) as opposed to torn/truncated writes.
    pub checksum_mismatches: usize,
}

impl RecoveryReport {
    /// True when a truncation happened but cost at most one snapshot: the
    /// resume point is exactly the record before the first bad one.
    pub fn bounded_by_one_snapshot(&self) -> bool {
        match (self.truncated_at_seq, self.resumed_seq) {
            (Some(bad), Some(resumed)) => bad == resumed + 1,
            (Some(bad), None) => bad == 0,
            (None, _) => true,
        }
    }
}

/// Scan one store's records in ascending seq order, truncating at the
/// first bad record: returns the last good record strictly before the
/// damage. `records` is `(seq, decode result)` in any order.
fn scan_journal(
    mut records: Vec<(u64, Result<LogRecord, ShuffleError>)>,
    report: &mut RecoveryReport,
) -> Option<LogRecord> {
    records.sort_by_key(|(seq, _)| *seq);
    let mut last_good: Option<LogRecord> = None;
    for (i, (seq, res)) in records.iter().enumerate() {
        match res {
            Ok(rec) => last_good = Some(rec.clone()),
            Err(_) => {
                report.truncated_at_seq = Some(*seq);
                report.discarded_records = records.len() - i;
                report.checksum_mismatches = records[i..]
                    .iter()
                    .filter(|(_, r)| matches!(r, Err(ShuffleError::ChecksumMismatch(_))))
                    .count();
                break;
            }
        }
    }
    report.resumed_seq = last_good.as_ref().map(|r| r.seq);
    last_good
}

/// Seq encoded in a `…log-{seq:08}` path.
fn seq_of(path: &str) -> Option<u64> {
    path.rsplit("log-").next()?.parse().ok()
}

/// Find the newest *trustworthy* log record for a task, journal-style:
/// the scan stops at the first bad/torn record per store.
///
/// `local_fs` should be `Some` only when the original node is believed
/// alive (its store reachable); reduce-stage records on the DFS win over
/// anything local because they represent strictly later progress.
pub fn find_latest_log(
    local_fs: Option<&dyn LocalFs>,
    dfs: &DfsCluster,
    paths: &LogPaths,
) -> Option<LogRecord> {
    find_latest_log_with_report(local_fs, dfs, paths).0
}

/// [`find_latest_log`] plus the forensic [`RecoveryReport`].
pub fn find_latest_log_with_report(
    local_fs: Option<&dyn LocalFs>,
    dfs: &DfsCluster,
    paths: &LogPaths,
) -> (Option<LogRecord>, RecoveryReport) {
    // Reduce-stage records (DFS).
    let mut dfs_report = RecoveryReport::default();
    let dfs_records: Vec<(u64, Result<LogRecord, ShuffleError>)> = dfs
        .list(&paths.dfs_prefix)
        .into_iter()
        // The partial-output file shares the prefix; only log-* files are records.
        .filter(|p| p.starts_with(&format!("{}log-", paths.dfs_prefix)))
        .filter_map(|p| {
            let seq = seq_of(&p)?;
            let data = dfs.read(&p).ok()?;
            Some((seq, LogRecord::decode(&data)))
        })
        .collect();
    if let Some(rec) = scan_journal(dfs_records, &mut dfs_report) {
        return (Some(rec), dfs_report);
    }

    // No trustworthy DFS record: fall back to shuffle/merge records on the
    // (live) local store, carrying any DFS truncation forensics along.
    let Some(fs) = local_fs else {
        return (None, dfs_report);
    };
    let mut local_report = RecoveryReport::default();
    let local_records: Vec<(u64, Result<LogRecord, ShuffleError>)> = fs
        .list(&format!("{}log-", paths.local_prefix))
        .into_iter()
        .filter_map(|p| {
            let seq = seq_of(&p)?;
            let data = fs.read(&p).ok()?;
            Some((seq, LogRecord::decode(&data)))
        })
        .collect();
    let rec = scan_journal(local_records, &mut local_report);
    let merged = RecoveryReport {
        resumed_seq: local_report.resumed_seq,
        truncated_at_seq: match (dfs_report.truncated_at_seq, local_report.truncated_at_seq) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        discarded_records: dfs_report.discarded_records + local_report.discarded_records,
        checksum_mismatches: dfs_report.checksum_mismatches + local_report.checksum_mismatches,
    };
    (rec, merged)
}

/// `find_latest_log` + `RecoveredState::from_record`.
pub fn recover_state(local_fs: Option<&dyn LocalFs>, dfs: &DfsCluster, paths: &LogPaths) -> RecoveredState {
    recover_state_with_report(local_fs, dfs, paths).0
}

/// [`recover_state`] plus the forensic [`RecoveryReport`].
pub fn recover_state_with_report(
    local_fs: Option<&dyn LocalFs>,
    dfs: &DfsCluster,
    paths: &LogPaths,
) -> (RecoveredState, RecoveryReport) {
    let (rec, report) = find_latest_log_with_report(local_fs, dfs, paths);
    (rec.map_or(RecoveredState::Fresh, RecoveredState::from_record), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_dfs::Topology;
    use alm_shuffle::MemFs;
    use alm_types::{AttemptId, JobId, NodeId, ReplicationLevel, TaskId};
    use bytes::Bytes;

    fn attempt() -> AttemptId {
        TaskId::reduce(JobId(1), 0).attempt(0)
    }

    fn paths() -> LogPaths {
        LogPaths::for_task(attempt().task)
    }

    fn dfs() -> DfsCluster {
        DfsCluster::new(Topology::even(4, 2), 1024, 2)
    }

    fn shuffle_rec(seq: u64) -> LogRecord {
        LogRecord::new(
            attempt(),
            seq,
            0,
            StageLog::Shuffle {
                shuffled_bytes: seq * 10,
                fetched_mof_ids: vec![],
                intermediate_files: vec![],
            },
        )
    }

    fn reduce_rec(seq: u64) -> LogRecord {
        LogRecord::new(
            attempt(),
            seq,
            0,
            StageLog::Reduce {
                records_processed: seq,
                mpq: vec![],
                output_path: "/p".into(),
                output_records: 0,
            },
        )
    }

    #[test]
    fn fresh_when_no_logs() {
        assert!(recover_state(None, &dfs(), &paths()).is_fresh());
        let fs = MemFs::new();
        assert!(recover_state(Some(&fs), &dfs(), &paths()).is_fresh());
    }

    #[test]
    fn newest_local_record_wins() {
        let fs = MemFs::new();
        let p = paths();
        for seq in [0u64, 2, 1] {
            fs.write(&p.local_record(seq), shuffle_rec(seq).encode()).unwrap();
        }
        let st = recover_state(Some(&fs), &dfs(), &p);
        assert_eq!(st.seq(), Some(2));
        assert!(matches!(st, RecoveredState::ShuffleStage { shuffled_bytes: 20, .. }));
    }

    #[test]
    fn dfs_reduce_record_preferred_over_local() {
        let fs = MemFs::new();
        let d = dfs();
        let p = paths();
        fs.write(&p.local_record(9), shuffle_rec(9).encode()).unwrap();
        d.write(&p.dfs_record(3), reduce_rec(3).encode(), NodeId(0), ReplicationLevel::Rack).unwrap();
        let st = recover_state(Some(&fs), &d, &p);
        assert!(
            matches!(st, RecoveredState::ReduceStage { records_processed: 3, .. }),
            "reduce-stage progress strictly supersedes shuffle-stage logs"
        );
    }

    #[test]
    fn dead_node_loses_local_logs_but_not_dfs() {
        let d = dfs();
        let p = paths();
        d.write(&p.dfs_record(0), reduce_rec(0).encode(), NodeId(0), ReplicationLevel::Rack).unwrap();
        // Node dead: caller passes None for local_fs.
        let st = recover_state(None, &d, &p);
        assert!(matches!(st, RecoveredState::ReduceStage { .. }));
    }

    #[test]
    fn corrupt_records_truncate_to_previous() {
        let fs = MemFs::new();
        let p = paths();
        fs.write(&p.local_record(0), shuffle_rec(0).encode()).unwrap();
        // Newer but torn record.
        let good = shuffle_rec(1).encode();
        fs.write(&p.local_record(1), good.slice(0..good.len() - 2)).unwrap();
        let (st, report) = recover_state_with_report(Some(&fs), &dfs(), &p);
        assert_eq!(st.seq(), Some(0), "torn newest record falls back to previous");
        assert_eq!(report.truncated_at_seq, Some(1));
        assert_eq!(report.discarded_records, 1);
        assert_eq!(report.checksum_mismatches, 0, "torn, not bit-rotted");
        assert!(report.bounded_by_one_snapshot());
    }

    #[test]
    fn corruption_truncates_the_journal_ignoring_later_records() {
        // Records 0..=4, with record 2 bit-flipped: the journal is only
        // trustworthy up to seq 1 — later records must NOT be trusted even
        // though they decode, because the log is a sequential journal.
        let fs = MemFs::new();
        let p = paths();
        for seq in 0..5u64 {
            fs.write(&p.local_record(seq), shuffle_rec(seq).encode()).unwrap();
        }
        let mut bad = shuffle_rec(2).encode().to_vec();
        let n = bad.len();
        bad[n - 4] ^= 0x10;
        fs.write(&p.local_record(2), bytes::Bytes::from(bad)).unwrap();

        let (st, report) = recover_state_with_report(Some(&fs), &dfs(), &p);
        assert_eq!(st.seq(), Some(1), "resume from the last good record before the damage");
        assert_eq!(report.truncated_at_seq, Some(2));
        assert_eq!(report.discarded_records, 3, "bad record plus the two after it");
        assert_eq!(report.checksum_mismatches, 1);
        assert!(report.bounded_by_one_snapshot());
    }

    #[test]
    fn corrupted_dfs_journal_falls_back_to_local_with_forensics() {
        let fs = MemFs::new();
        let d = dfs();
        let p = paths();
        for seq in 0..5u64 {
            fs.write(&p.local_record(seq), shuffle_rec(seq).encode()).unwrap();
        }
        // The only DFS reduce-stage record is corrupted.
        let mut bad = reduce_rec(5).encode().to_vec();
        let n = bad.len();
        bad[n - 6] ^= 0x01;
        d.write(&p.dfs_record(5), Bytes::from(bad), NodeId(0), ReplicationLevel::Rack).unwrap();

        let (st, report) = recover_state_with_report(Some(&fs), &d, &p);
        assert_eq!(st.seq(), Some(4), "falls back to the newest good local snapshot");
        assert_eq!(report.truncated_at_seq, Some(5));
        assert_eq!(report.checksum_mismatches, 1);
        assert!(report.bounded_by_one_snapshot(), "one snapshot interval lost, no more");
    }

    #[test]
    fn fully_corrupt_journal_recovers_fresh_with_unbounded_report() {
        let fs = MemFs::new();
        let p = paths();
        for seq in 0..2u64 {
            let mut bad = shuffle_rec(seq).encode().to_vec();
            let n = bad.len();
            bad[n - 1] ^= 0x80;
            fs.write(&p.local_record(seq), bytes::Bytes::from(bad)).unwrap();
        }
        let (st, report) = recover_state_with_report(Some(&fs), &dfs(), &p);
        assert!(st.is_fresh());
        assert_eq!(report.truncated_at_seq, Some(0));
        assert_eq!(report.discarded_records, 2);
        assert!(report.bounded_by_one_snapshot(), "nothing good before seq 0 means zero snapshots lost");
    }

    #[test]
    fn partial_output_file_is_not_mistaken_for_a_record() {
        let d = dfs();
        let p = paths();
        d.write(
            &p.dfs_partial_output(),
            Bytes::from_static(b"raw output bytes"),
            NodeId(0),
            ReplicationLevel::Rack,
        )
        .unwrap();
        assert!(recover_state(None, &d, &p).is_fresh());
    }

    #[test]
    fn merge_stage_record_maps_to_merge_state() {
        let fs = MemFs::new();
        let p = paths();
        let rec = LogRecord::new(
            attempt(),
            5,
            0,
            StageLog::Merge { merge_progress: 0.7, intermediate_files: vec!["a".into()] },
        );
        fs.write(&p.local_record(5), rec.encode()).unwrap();
        match recover_state(Some(&fs), &dfs(), &p) {
            RecoveredState::MergeStage { intermediate_files, merge_progress, seq } => {
                assert_eq!(intermediate_files, vec!["a".to_string()]);
                assert!((merge_progress - 0.7).abs() < 1e-12);
                assert_eq!(seq, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
