//! Turning logged records back into runnable ReduceTask state.
//!
//! "A recovering ReduceTask looks up the previously generated log files for
//! one that records the progress in the reduce stage" (§IV). Lookup order:
//!
//! 1. the newest valid **reduce-stage** record on the DFS — available even
//!    after a node crash;
//! 2. the newest valid **shuffle/merge-stage** record on the original
//!    node's local store — available only when that node still lives
//!    (Algorithm 1's local-resume path);
//! 3. nothing — recover from scratch (stock YARN behaviour).
//!
//! Corrupt/torn records are skipped silently: logging is crash-safe by
//! falling back to the previous snapshot.

use alm_dfs::DfsCluster;
use alm_shuffle::LocalFs;

use super::logger::LogPaths;
use super::record::{LogRecord, MpqLogEntry, StageLog};

/// What recovery managed to restore.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveredState {
    /// Resume mid-reduce: rebuild the MPQ from `(source, offset)` entries,
    /// skip `records_processed` records' worth of work, reuse the flushed
    /// output.
    ReduceStage {
        records_processed: u64,
        mpq: Vec<MpqLogEntry>,
        output_path: String,
        output_records: u64,
        seq: u64,
    },
    /// Resume at the merge stage with these local intermediate files.
    MergeStage { intermediate_files: Vec<String>, merge_progress: f64, seq: u64 },
    /// Resume mid-shuffle: re-fetch only the missing MOFs.
    ShuffleStage { shuffled_bytes: u64, fetched_mof_ids: Vec<u32>, intermediate_files: Vec<String>, seq: u64 },
    /// No usable log: start from scratch.
    Fresh,
}

impl RecoveredState {
    pub fn from_record(rec: LogRecord) -> RecoveredState {
        match rec.stage {
            StageLog::Reduce { records_processed, mpq, output_path, output_records } => {
                RecoveredState::ReduceStage {
                    records_processed,
                    mpq,
                    output_path,
                    output_records,
                    seq: rec.seq,
                }
            }
            StageLog::Merge { merge_progress, intermediate_files } => {
                RecoveredState::MergeStage { intermediate_files, merge_progress, seq: rec.seq }
            }
            StageLog::Shuffle { shuffled_bytes, fetched_mof_ids, intermediate_files } => {
                RecoveredState::ShuffleStage {
                    shuffled_bytes,
                    fetched_mof_ids,
                    intermediate_files,
                    seq: rec.seq,
                }
            }
        }
    }

    /// Sequence number of the restored record (for `resume_after`).
    pub fn seq(&self) -> Option<u64> {
        match self {
            RecoveredState::ReduceStage { seq, .. }
            | RecoveredState::MergeStage { seq, .. }
            | RecoveredState::ShuffleStage { seq, .. } => Some(*seq),
            RecoveredState::Fresh => None,
        }
    }

    pub fn is_fresh(&self) -> bool {
        matches!(self, RecoveredState::Fresh)
    }
}

/// Find the newest valid log record for a task.
///
/// `local_fs` should be `Some` only when the original node is believed
/// alive (its store reachable); reduce-stage records on the DFS win over
/// anything local because they represent strictly later progress.
pub fn find_latest_log(
    local_fs: Option<&dyn LocalFs>,
    dfs: &DfsCluster,
    paths: &LogPaths,
) -> Option<LogRecord> {
    // Reduce-stage records (DFS): newest seq first.
    let mut best_dfs: Option<LogRecord> = None;
    for path in dfs.list(&paths.dfs_prefix) {
        // The partial-output file shares the prefix; only log-* files are records.
        if !path.starts_with(&format!("{}log-", paths.dfs_prefix)) {
            continue;
        }
        if let Ok(data) = dfs.read(&path) {
            if let Ok(rec) = LogRecord::decode(&data) {
                if best_dfs.as_ref().is_none_or(|b| rec.seq > b.seq) {
                    best_dfs = Some(rec);
                }
            }
        }
    }
    if best_dfs.is_some() {
        return best_dfs;
    }

    // Shuffle/merge records on the (live) local store.
    let fs = local_fs?;
    let mut best_local: Option<LogRecord> = None;
    for path in fs.list(&format!("{}log-", paths.local_prefix)) {
        if let Ok(data) = fs.read(&path) {
            if let Ok(rec) = LogRecord::decode(&data) {
                if best_local.as_ref().is_none_or(|b| rec.seq > b.seq) {
                    best_local = Some(rec);
                }
            }
        }
    }
    best_local
}

/// `find_latest_log` + `RecoveredState::from_record`.
pub fn recover_state(local_fs: Option<&dyn LocalFs>, dfs: &DfsCluster, paths: &LogPaths) -> RecoveredState {
    find_latest_log(local_fs, dfs, paths).map_or(RecoveredState::Fresh, RecoveredState::from_record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_dfs::Topology;
    use alm_shuffle::MemFs;
    use alm_types::{AttemptId, JobId, NodeId, ReplicationLevel, TaskId};
    use bytes::Bytes;

    fn attempt() -> AttemptId {
        TaskId::reduce(JobId(1), 0).attempt(0)
    }

    fn paths() -> LogPaths {
        LogPaths::for_task(attempt().task)
    }

    fn dfs() -> DfsCluster {
        DfsCluster::new(Topology::even(4, 2), 1024, 2)
    }

    fn shuffle_rec(seq: u64) -> LogRecord {
        LogRecord::new(
            attempt(),
            seq,
            0,
            StageLog::Shuffle {
                shuffled_bytes: seq * 10,
                fetched_mof_ids: vec![],
                intermediate_files: vec![],
            },
        )
    }

    fn reduce_rec(seq: u64) -> LogRecord {
        LogRecord::new(
            attempt(),
            seq,
            0,
            StageLog::Reduce {
                records_processed: seq,
                mpq: vec![],
                output_path: "/p".into(),
                output_records: 0,
            },
        )
    }

    #[test]
    fn fresh_when_no_logs() {
        assert!(recover_state(None, &dfs(), &paths()).is_fresh());
        let fs = MemFs::new();
        assert!(recover_state(Some(&fs), &dfs(), &paths()).is_fresh());
    }

    #[test]
    fn newest_local_record_wins() {
        let fs = MemFs::new();
        let p = paths();
        for seq in [0u64, 2, 1] {
            fs.write(&p.local_record(seq), shuffle_rec(seq).encode()).unwrap();
        }
        let st = recover_state(Some(&fs), &dfs(), &p);
        assert_eq!(st.seq(), Some(2));
        assert!(matches!(st, RecoveredState::ShuffleStage { shuffled_bytes: 20, .. }));
    }

    #[test]
    fn dfs_reduce_record_preferred_over_local() {
        let fs = MemFs::new();
        let d = dfs();
        let p = paths();
        fs.write(&p.local_record(9), shuffle_rec(9).encode()).unwrap();
        d.write(&p.dfs_record(3), reduce_rec(3).encode(), NodeId(0), ReplicationLevel::Rack).unwrap();
        let st = recover_state(Some(&fs), &d, &p);
        assert!(
            matches!(st, RecoveredState::ReduceStage { records_processed: 3, .. }),
            "reduce-stage progress strictly supersedes shuffle-stage logs"
        );
    }

    #[test]
    fn dead_node_loses_local_logs_but_not_dfs() {
        let d = dfs();
        let p = paths();
        d.write(&p.dfs_record(0), reduce_rec(0).encode(), NodeId(0), ReplicationLevel::Rack).unwrap();
        // Node dead: caller passes None for local_fs.
        let st = recover_state(None, &d, &p);
        assert!(matches!(st, RecoveredState::ReduceStage { .. }));
    }

    #[test]
    fn corrupt_records_skipped() {
        let fs = MemFs::new();
        let p = paths();
        fs.write(&p.local_record(0), shuffle_rec(0).encode()).unwrap();
        // Newer but torn record.
        let good = shuffle_rec(1).encode();
        fs.write(&p.local_record(1), good.slice(0..good.len() - 2)).unwrap();
        let st = recover_state(Some(&fs), &dfs(), &p);
        assert_eq!(st.seq(), Some(0), "torn newest record falls back to previous");
    }

    #[test]
    fn partial_output_file_is_not_mistaken_for_a_record() {
        let d = dfs();
        let p = paths();
        d.write(
            &p.dfs_partial_output(),
            Bytes::from_static(b"raw output bytes"),
            NodeId(0),
            ReplicationLevel::Rack,
        )
        .unwrap();
        assert!(recover_state(None, &d, &p).is_fresh());
    }

    #[test]
    fn merge_stage_record_maps_to_merge_state() {
        let fs = MemFs::new();
        let p = paths();
        let rec = LogRecord::new(
            attempt(),
            5,
            0,
            StageLog::Merge { merge_progress: 0.7, intermediate_files: vec!["a".into()] },
        );
        fs.write(&p.local_record(5), rec.encode()).unwrap();
        match recover_state(Some(&fs), &dfs(), &p) {
            RecoveredState::MergeStage { intermediate_files, merge_progress, seq } => {
                assert_eq!(intermediate_files, vec!["a".to_string()]);
                assert!((merge_progress - 0.7).abs() < 1e-12);
                assert_eq!(seq, 5);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
