//! The logging engine: when to log, what to snapshot, where to store it.
//!
//! Per §III the logger is *task-local* (no job-level coordination) and
//! *asynchronous* (the caller hands it the current time; it decides whether
//! a snapshot is due). Stage strategies differ:
//!
//! * **shuffle/merge** — records go to the node-local store. Before a
//!   shuffle-stage snapshot the logger flushes all in-memory segments to
//!   disk via a temporary merge (so the file list in the record covers all
//!   shuffled data) — the paper's "temporary in-memory merging thread".
//! * **reduce** — records go to the DFS at the configured replication
//!   level, together with the asynchronously-flushed partial reduce output,
//!   so recovery works even when the whole node is gone.

use alm_dfs::DfsCluster;
use alm_shuffle::{LocalFs, MpqEntry, ReduceBuffers, ShuffleError};
use alm_types::{AlmConfig, AttemptId, NodeId, ReplicationLevel, TaskId};
use bytes::Bytes;

use super::record::{LogRecord, MpqLogEntry, StageLog};

/// Where a task's analytics logs live. Keyed by *task*, not attempt, so a
/// recovery attempt finds its predecessor's records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogPaths {
    /// Prefix on the node-local store for shuffle/merge-stage records.
    pub local_prefix: String,
    /// Prefix on the DFS for reduce-stage records and flushed output.
    pub dfs_prefix: String,
}

impl LogPaths {
    pub fn for_task(task: TaskId) -> LogPaths {
        LogPaths { local_prefix: format!("alg/{task}/"), dfs_prefix: format!("/alg/{task}/") }
    }

    pub fn local_record(&self, seq: u64) -> String {
        format!("{}log-{seq:08}", self.local_prefix)
    }

    pub fn dfs_record(&self, seq: u64) -> String {
        format!("{}log-{seq:08}", self.dfs_prefix)
    }

    pub fn dfs_partial_output(&self) -> String {
        format!("{}partial-output", self.dfs_prefix)
    }
}

/// Periodic progress logger for one ReduceTask attempt.
pub struct AnalyticsLogger {
    paths: LogPaths,
    attempt: AttemptId,
    interval_ms: u64,
    replication: ReplicationLevel,
    seq: u64,
    last_log_ms: Option<u64>,
    records_written: u64,
    bytes_written: u64,
}

impl AnalyticsLogger {
    pub fn new(config: &AlmConfig, attempt: AttemptId) -> AnalyticsLogger {
        AnalyticsLogger {
            paths: LogPaths::for_task(attempt.task),
            attempt,
            interval_ms: config.logging_interval_ms.max(1),
            replication: config.log_replication,
            seq: 0,
            last_log_ms: None,
            records_written: 0,
            bytes_written: 0,
        }
    }

    /// Continue sequence numbering after a resumed attempt so newer records
    /// always outrank restored ones.
    pub fn resume_after(&mut self, prior_seq: u64) {
        self.seq = self.seq.max(prior_seq + 1);
    }

    pub fn paths(&self) -> &LogPaths {
        &self.paths
    }

    /// Whether the logging interval has elapsed.
    pub fn due(&self, now_ms: u64) -> bool {
        match self.last_log_ms {
            None => true,
            Some(t) => now_ms.saturating_sub(t) >= self.interval_ms,
        }
    }

    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    fn write_local(
        &mut self,
        fs: &dyn LocalFs,
        now_ms: u64,
        stage: StageLog,
    ) -> Result<LogRecord, ShuffleError> {
        let rec = LogRecord::new(self.attempt, self.seq, now_ms, stage);
        let encoded = rec.encode();
        self.bytes_written += encoded.len() as u64;
        fs.write(&self.paths.local_record(self.seq), encoded)?;
        self.seq += 1;
        self.records_written += 1;
        self.last_log_ms = Some(now_ms);
        Ok(rec)
    }

    /// Shuffle-stage snapshot (if due): flush in-memory segments, then log
    /// fetched MOF ids + intermediate file paths to the local store.
    pub fn maybe_log_shuffle(
        &mut self,
        now_ms: u64,
        fs: &dyn LocalFs,
        buffers: &mut ReduceBuffers,
    ) -> Result<Option<LogRecord>, ShuffleError> {
        if !self.due(now_ms) {
            return Ok(None);
        }
        // Temporary in-memory merge: evacuate volatile segments so the
        // logged file list is complete.
        buffers.flush_in_memory(fs)?;
        let stage = StageLog::Shuffle {
            shuffled_bytes: buffers.shuffled_bytes(),
            fetched_mof_ids: buffers.fetched().iter().copied().collect(),
            intermediate_files: buffers.on_disk_paths().to_vec(),
        };
        self.write_local(fs, now_ms, stage).map(Some)
    }

    /// Merge-stage snapshot (if due): only the surviving file paths matter.
    pub fn maybe_log_merge(
        &mut self,
        now_ms: u64,
        fs: &dyn LocalFs,
        merge_progress: f64,
        intermediate_files: &[String],
    ) -> Result<Option<LogRecord>, ShuffleError> {
        if !self.due(now_ms) {
            return Ok(None);
        }
        let stage = StageLog::Merge {
            merge_progress: merge_progress.clamp(0.0, 1.0),
            intermediate_files: intermediate_files.to_vec(),
        };
        self.write_local(fs, now_ms, stage).map(Some)
    }

    /// Reduce-stage snapshot (if due): the MPQ structure and the flushed
    /// partial output, stored on the DFS so it survives node loss.
    #[allow(clippy::too_many_arguments)]
    pub fn maybe_log_reduce(
        &mut self,
        now_ms: u64,
        dfs: &DfsCluster,
        node: NodeId,
        mpq_snapshot: &[MpqEntry],
        records_processed: u64,
        output: &mut PartialOutput,
    ) -> Result<Option<LogRecord>, ShuffleError> {
        if !self.due(now_ms) {
            return Ok(None);
        }
        // Flush the accumulated reduce output first: the record must never
        // reference output that is not yet durable.
        let (output_path, output_records) = output.flush(dfs, node, self.replication)?;
        let stage = StageLog::Reduce {
            records_processed,
            mpq: mpq_snapshot.iter().map(MpqLogEntry::from).collect(),
            output_path,
            output_records,
        };
        let rec = LogRecord::new(self.attempt, self.seq, now_ms, stage);
        let encoded = rec.encode();
        self.bytes_written += encoded.len() as u64;
        dfs.write(&self.paths.dfs_record(self.seq), encoded, node, self.replication)
            .map_err(|e| ShuffleError::FetchFailed { source: "dfs".into(), reason: e.to_string() })?;
        self.seq += 1;
        self.records_written += 1;
        self.last_log_ms = Some(now_ms);
        Ok(Some(rec))
    }
}

/// The asynchronously-flushed partial reduce output (§III-B): completed
/// `reduce()` results accumulate here and are written to the DFS at each
/// reduce-stage log point, "without stalling the execution of the
/// ReduceTask". A recovered attempt reloads the flushed bytes and appends.
pub struct PartialOutput {
    dfs_path: String,
    buf: Vec<u8>,
    records: u64,
    flushed_records: u64,
}

impl PartialOutput {
    pub fn new(paths: &LogPaths) -> PartialOutput {
        PartialOutput {
            dfs_path: paths.dfs_partial_output(),
            buf: Vec::new(),
            records: 0,
            flushed_records: 0,
        }
    }

    /// Reload previously flushed output during recovery.
    pub fn restore(paths: &LogPaths, dfs: &DfsCluster) -> Result<PartialOutput, ShuffleError> {
        let path = paths.dfs_partial_output();
        let (buf, records) = match dfs.read(&path) {
            Ok(data) => {
                let n = alm_shuffle::codec::validate_stream(&data)? as u64;
                (data.to_vec(), n)
            }
            Err(_) => (Vec::new(), 0),
        };
        Ok(PartialOutput { dfs_path: path, records, flushed_records: records, buf })
    }

    /// Append one reduce-output record.
    pub fn append(&mut self, key: &[u8], value: &[u8]) {
        alm_shuffle::codec::encode_into(&mut self.buf, key, value);
        self.records += 1;
    }

    pub fn records(&self) -> u64 {
        self.records
    }

    pub fn bytes(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Flush the cumulative output to the DFS (overwrite-in-place, which on
    /// real HDFS is an append + rename; the visible result is the same).
    /// Returns `(path, records_flushed)`.
    pub fn flush(
        &mut self,
        dfs: &DfsCluster,
        node: NodeId,
        replication: ReplicationLevel,
    ) -> Result<(String, u64), ShuffleError> {
        if self.records > self.flushed_records {
            dfs.write(&self.dfs_path, Bytes::from(self.buf.clone()), node, replication)
                .map_err(|e| ShuffleError::FetchFailed { source: "dfs".into(), reason: e.to_string() })?;
            self.flushed_records = self.records;
        }
        Ok((self.dfs_path.clone(), self.flushed_records))
    }

    /// Commit the final output to its job-visible path and drop the
    /// partial file.
    pub fn commit(
        mut self,
        dfs: &DfsCluster,
        node: NodeId,
        replication: ReplicationLevel,
        final_path: &str,
    ) -> Result<u64, ShuffleError> {
        dfs.write(final_path, Bytes::from(std::mem::take(&mut self.buf)), node, replication)
            .map_err(|e| ShuffleError::FetchFailed { source: "dfs".into(), reason: e.to_string() })?;
        dfs.delete(&self.dfs_path);
        Ok(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_dfs::Topology;
    use alm_shuffle::segment::build_segment;
    use alm_shuffle::{bytewise_cmp, MemFs};
    use alm_types::{JobId, RecoveryMode};

    fn cfg() -> AlmConfig {
        AlmConfig { logging_interval_ms: 100, ..AlmConfig::with_mode(RecoveryMode::SfmAlg) }
    }

    fn attempt() -> AttemptId {
        TaskId::reduce(JobId(2), 0).attempt(0)
    }

    fn dfs() -> DfsCluster {
        DfsCluster::new(Topology::even(4, 2), 1024, 2)
    }

    #[test]
    fn interval_gating() {
        let mut lg = AnalyticsLogger::new(&cfg(), attempt());
        let fs = MemFs::new();
        let mut bufs = ReduceBuffers::new(bytewise_cmp(), "r/", 1 << 20, 0.9);
        assert!(lg.due(0), "first log is always due");
        assert!(lg.maybe_log_shuffle(0, &fs, &mut bufs).unwrap().is_some());
        assert!(!lg.due(50));
        assert!(lg.maybe_log_shuffle(50, &fs, &mut bufs).unwrap().is_none());
        assert!(lg.maybe_log_shuffle(100, &fs, &mut bufs).unwrap().is_some());
        assert_eq!(lg.records_written(), 2);
    }

    #[test]
    fn shuffle_log_flushes_memory_and_lists_files() {
        let mut lg = AnalyticsLogger::new(&cfg(), attempt());
        let fs = MemFs::new();
        let mut bufs = ReduceBuffers::new(bytewise_cmp(), "r/", 1 << 20, 0.99);
        bufs.ingest(&fs, 0, build_segment(&[(b"a".to_vec(), b"1".to_vec())])).unwrap();
        bufs.ingest(&fs, 3, build_segment(&[(b"b".to_vec(), b"2".to_vec())])).unwrap();
        assert_eq!(bufs.in_mem_segments(), 2);
        let rec = lg.maybe_log_shuffle(0, &fs, &mut bufs).unwrap().unwrap();
        assert_eq!(bufs.in_mem_segments(), 0, "pre-log flush evacuated memory");
        match &rec.stage {
            StageLog::Shuffle { fetched_mof_ids, intermediate_files, shuffled_bytes } => {
                assert_eq!(fetched_mof_ids, &vec![0, 3]);
                assert_eq!(intermediate_files.len(), 1);
                assert!(*shuffled_bytes > 0);
            }
            other => panic!("expected shuffle log, got {other:?}"),
        }
        // The record is durable on the local store and decodes back.
        let stored = fs.read(&lg.paths().local_record(0)).unwrap();
        assert_eq!(LogRecord::decode(&stored).unwrap(), rec);
    }

    #[test]
    fn reduce_log_goes_to_dfs_with_output() {
        let mut lg = AnalyticsLogger::new(&cfg(), attempt());
        let d = dfs();
        let mut out = PartialOutput::new(lg.paths());
        out.append(b"k1", b"v1");
        out.append(b"k2", b"v2");
        let rec = lg.maybe_log_reduce(0, &d, NodeId(1), &[], 2, &mut out).unwrap().unwrap();
        match &rec.stage {
            StageLog::Reduce { records_processed, output_records, output_path, .. } => {
                assert_eq!(*records_processed, 2);
                assert_eq!(*output_records, 2);
                assert!(d.is_available(output_path), "flushed output must be durable");
            }
            other => panic!("expected reduce log, got {other:?}"),
        }
        assert!(d.is_available(&lg.paths().dfs_record(0)));
    }

    #[test]
    fn partial_output_restore_round_trip() {
        let d = dfs();
        let paths = LogPaths::for_task(attempt().task);
        let mut out = PartialOutput::new(&paths);
        out.append(b"a", b"1");
        out.flush(&d, NodeId(0), ReplicationLevel::Rack).unwrap();
        out.append(b"b", b"2"); // not yet flushed

        let restored = PartialOutput::restore(&paths, &d).unwrap();
        assert_eq!(restored.records(), 1, "only flushed records survive");

        // Committing writes the final path and removes the partial file.
        let mut restored = restored;
        restored.append(b"b", b"2");
        let n = restored.commit(&d, NodeId(0), ReplicationLevel::Rack, "/out/part-0").unwrap();
        assert_eq!(n, 2);
        assert!(d.is_available("/out/part-0"));
        assert!(!d.exists(&paths.dfs_partial_output()));
    }

    #[test]
    fn flush_is_idempotent_without_new_records() {
        let d = dfs();
        let paths = LogPaths::for_task(attempt().task);
        let mut out = PartialOutput::new(&paths);
        out.append(b"a", b"1");
        let (_, n1) = out.flush(&d, NodeId(0), ReplicationLevel::Node).unwrap();
        let (_, n2) = out.flush(&d, NodeId(0), ReplicationLevel::Node).unwrap();
        assert_eq!((n1, n2), (1, 1));
    }

    #[test]
    fn resume_after_continues_sequence() {
        let mut lg = AnalyticsLogger::new(&cfg(), attempt());
        lg.resume_after(41);
        let fs = MemFs::new();
        let mut bufs = ReduceBuffers::new(bytewise_cmp(), "r/", 1 << 20, 0.9);
        let rec = lg.maybe_log_shuffle(0, &fs, &mut bufs).unwrap().unwrap();
        assert_eq!(rec.seq, 42);
    }
}
