//! Analytics LogGing (ALG, §III).
//!
//! ALG logs "only the key information that can help a recovering ReduceTask
//! avoid conducting unnecessary reduce computation and data
//! deserialization" — no global coordination, no memory-image checkpoints.
//! The log format is stage-specific (Fig. 6):
//!
//! | stage   | statistics                     | files                           |
//! |---------|--------------------------------|---------------------------------|
//! | shuffle | shuffled bytes, fetched MOF ids| local intermediate file paths   |
//! | merge   | merge progress                 | local intermediate file paths   |
//! | reduce  | records processed              | MPQ entries (path + offset), HDFS output path |

pub mod logger;
pub mod record;
pub mod recovery;
