//! Record wire format: `[klen: u32 BE][vlen: u32 BE][key][value]`, repeated.
//!
//! This is the on-disk/in-flight representation of every sorted run
//! (spill, merged segment, MOF partition). Byte offsets into this stream
//! are what the reduce-stage analytics log records (Fig. 6 right column).

use bytes::Bytes;

use crate::error::{Result, ShuffleError};

/// Encoded size of a record with the given key/value lengths.
pub fn encoded_len(key_len: usize, value_len: usize) -> usize {
    8 + key_len + value_len
}

/// Append one record to `out`.
pub fn encode_into(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    out.extend_from_slice(&(key.len() as u32).to_be_bytes());
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
}

/// Decode the record starting at `offset`. Returns `(key, value,
/// next_offset)`; `Ok(None)` at end-of-stream; `Err` on truncation.
pub fn decode_at(data: &Bytes, offset: usize) -> Result<Option<(Bytes, Bytes, usize)>> {
    if offset == data.len() {
        return Ok(None);
    }
    if offset + 8 > data.len() {
        return Err(ShuffleError::Corrupt(format!("truncated header at offset {offset}")));
    }
    let klen = u32::from_be_bytes(data[offset..offset + 4].try_into().unwrap()) as usize;
    let vlen = u32::from_be_bytes(data[offset + 4..offset + 8].try_into().unwrap()) as usize;
    let key_start = offset + 8;
    let val_start = key_start + klen;
    let end = val_start + vlen;
    if end > data.len() {
        return Err(ShuffleError::Corrupt(format!(
            "record at offset {offset} claims {klen}+{vlen} bytes but only {} remain",
            data.len() - key_start
        )));
    }
    Ok(Some((data.slice(key_start..val_start), data.slice(val_start..end), end)))
}

/// Count records and verify structural integrity of a whole stream.
pub fn validate_stream(data: &Bytes) -> Result<usize> {
    let mut n = 0;
    let mut off = 0;
    while let Some((_, _, next)) = decode_at(data, off)? {
        off = next;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_two_records() {
        let mut buf = Vec::new();
        encode_into(&mut buf, b"alpha", b"1");
        encode_into(&mut buf, b"", b"empty-key");
        let data = Bytes::from(buf);

        let (k, v, next) = decode_at(&data, 0).unwrap().unwrap();
        assert_eq!((&k[..], &v[..]), (&b"alpha"[..], &b"1"[..]));
        let (k2, v2, end) = decode_at(&data, next).unwrap().unwrap();
        assert_eq!((&k2[..], &v2[..]), (&b""[..], &b"empty-key"[..]));
        assert_eq!(decode_at(&data, end).unwrap(), None);
        assert_eq!(validate_stream(&data).unwrap(), 2);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        encode_into(&mut buf, b"key", b"value");
        let data = Bytes::from(buf[..buf.len() - 1].to_vec());
        assert!(matches!(decode_at(&data, 0), Err(ShuffleError::Corrupt(_))));
        let data = Bytes::from(vec![0u8, 0, 0]); // shorter than a header
        assert!(matches!(decode_at(&data, 0), Err(ShuffleError::Corrupt(_))));
    }

    #[test]
    fn encoded_len_matches() {
        let mut buf = Vec::new();
        encode_into(&mut buf, b"abc", b"defg");
        assert_eq!(buf.len(), encoded_len(3, 4));
    }

    proptest! {
        #[test]
        fn arbitrary_records_round_trip(recs in proptest::collection::vec(
            (proptest::collection::vec(0u8..=255, 0..40), proptest::collection::vec(0u8..=255, 0..120)), 0..50)) {
            let mut buf = Vec::new();
            for (k, v) in &recs {
                encode_into(&mut buf, k, v);
            }
            let data = Bytes::from(buf);
            prop_assert_eq!(validate_stream(&data).unwrap(), recs.len());
            let mut off = 0;
            for (k, v) in &recs {
                let (dk, dv, next) = decode_at(&data, off).unwrap().unwrap();
                prop_assert_eq!(&dk[..], &k[..]);
                prop_assert_eq!(&dv[..], &v[..]);
                off = next;
            }
            prop_assert_eq!(decode_at(&data, off).unwrap(), None);
        }

        /// Truncating a valid stream anywhere must never panic: either the
        /// cut lands on a record boundary (fewer records validate) or the
        /// stream classifies as `Corrupt` — never `ChecksumMismatch`,
        /// which is reserved for the CRC32 frame layer.
        #[test]
        fn truncations_never_panic_and_classify_as_corrupt(recs in proptest::collection::vec(
            (proptest::collection::vec(0u8..=255, 0..20), proptest::collection::vec(0u8..=255, 0..40)), 1..20),
            cut in 0usize..4096) {
            let mut buf = Vec::new();
            for (k, v) in &recs {
                encode_into(&mut buf, k, v);
            }
            let at = cut % buf.len().max(1);
            let data = Bytes::from(buf[..at].to_vec());
            match validate_stream(&data) {
                Ok(n) => prop_assert!(n <= recs.len(), "cannot validate more records than encoded"),
                Err(ShuffleError::Corrupt(_)) => {}
                Err(e) => prop_assert!(false, "truncation misclassified as {e:?}"),
            }
        }

        /// Flipping a single byte must never panic. When the stream is
        /// wrapped in a CRC32 frame, the flip is *always* caught before the
        /// codec ever runs — and classified as a checksum mismatch when it
        /// lands in the payload.
        #[test]
        fn single_byte_flips_never_panic_and_frames_catch_them(recs in proptest::collection::vec(
            (proptest::collection::vec(0u8..=255, 0..20), proptest::collection::vec(0u8..=255, 0..40)), 1..20),
            pos in 0usize..4096, bit in 0u8..8) {
            let mut buf = Vec::new();
            for (k, v) in &recs {
                encode_into(&mut buf, k, v);
            }
            let mut framed = crate::frame::frame(&buf);
            let at = pos % framed.len();
            framed[at] ^= 1 << bit;
            let framed = Bytes::from(framed);
            // Frame layer: the flip is always detected, and payload flips
            // classify as checksum mismatches.
            match crate::frame::unframe(&framed) {
                Ok(_) => prop_assert!(false, "flipped frame must not verify"),
                Err(ShuffleError::ChecksumMismatch(_)) => {}
                Err(ShuffleError::Corrupt(_)) =>
                    prop_assert!(at < crate::frame::FRAME_HEADER_LEN,
                        "payload flip at {} must be a checksum mismatch", at),
                Err(e) => prop_assert!(false, "unexpected classification {e:?}"),
            }
            // Codec layer alone (no frame): must not panic; any result is
            // acceptable since a flip can yield a structurally valid stream.
            let mut bare = buf.clone();
            if !bare.is_empty() {
                let at = pos % bare.len();
                bare[at] ^= 1 << bit;
            }
            let _ = validate_stream(&Bytes::from(bare));
        }
    }
}
