//! The map-side sort buffer.
//!
//! Map output is collected as `(partition, key, value)` triples into a
//! bounded buffer; when the buffer exceeds its spill threshold it is sorted
//! by `(partition, key)` and spilled as one sorted run per partition.
//! Committing the task merges all spills per partition (applying the
//! combiner) into the final MOF — the Hadoop kvbuffer/spill/merge design
//! the paper's §II-A describes.

use crate::error::Result;
use crate::localfs::LocalFs;
use crate::merger;
use crate::mof::{write_mof, MofData};
use crate::segment::{SegmentReader, SegmentSource};
use crate::{codec, Combiner, KeyCmp};

/// Map-side collector for one MapTask attempt.
pub struct MapOutputBuffer {
    cmp: KeyCmp,
    combiner: Option<Combiner>,
    num_partitions: u32,
    /// Spill when buffered bytes exceed this.
    spill_threshold: u64,
    /// Path prefix on the node store, e.g. `"map/{attempt}/"`.
    prefix: String,
    records: Vec<(u32, Vec<u8>, Vec<u8>)>,
    buffered_bytes: u64,
    /// Per partition: the spill-file paths produced so far.
    spilled: Vec<Vec<String>>,
    spill_count: u32,
    total_records: u64,
}

impl MapOutputBuffer {
    pub fn new(
        cmp: KeyCmp,
        combiner: Option<Combiner>,
        num_partitions: u32,
        spill_threshold: u64,
        prefix: impl Into<String>,
    ) -> MapOutputBuffer {
        MapOutputBuffer {
            cmp,
            combiner,
            num_partitions: num_partitions.max(1),
            spill_threshold: spill_threshold.max(1),
            prefix: prefix.into(),
            records: Vec::new(),
            buffered_bytes: 0,
            spilled: vec![Vec::new(); num_partitions.max(1) as usize],
            spill_count: 0,
            total_records: 0,
        }
    }

    /// Collect one intermediate record; spills synchronously when full.
    pub fn collect(&mut self, fs: &dyn LocalFs, partition: u32, key: Vec<u8>, value: Vec<u8>) -> Result<()> {
        debug_assert!(partition < self.num_partitions, "partition out of range");
        self.buffered_bytes += codec::encoded_len(key.len(), value.len()) as u64;
        self.records.push((partition.min(self.num_partitions - 1), key, value));
        self.total_records += 1;
        if self.buffered_bytes >= self.spill_threshold {
            self.spill(fs)?;
        }
        Ok(())
    }

    /// Number of spills performed so far (observability/tests).
    pub fn spill_count(&self) -> u32 {
        self.spill_count
    }

    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Sort the buffer and write one sorted run per non-empty partition.
    fn spill(&mut self, fs: &dyn LocalFs) -> Result<()> {
        if self.records.is_empty() {
            return Ok(());
        }
        let cmp = self.cmp.clone();
        self.records.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| cmp(&a.1, &b.1)));
        let spill_id = self.spill_count;
        self.spill_count += 1;

        let mut i = 0;
        while i < self.records.len() {
            let part = self.records[i].0;
            let start = i;
            while i < self.records.len() && self.records[i].0 == part {
                i += 1;
            }
            let mut buf = Vec::new();
            for (_, k, v) in &self.records[start..i] {
                codec::encode_into(&mut buf, k, v);
            }
            // Combine within the spill immediately: Hadoop runs the combiner
            // per spill, which is what makes Wordcount's shuffle tiny.
            let buf = if self.combiner.is_some() {
                let reader = SegmentReader::new(SegmentSource::Memory { id: 0 }, bytes::Bytes::from(buf))?;
                merger::merge_readers(&self.cmp, vec![reader], self.combiner.as_ref())?
            } else {
                buf
            };
            let path = format!("{}spill{}/part{}", self.prefix, spill_id, part);
            fs.write(&path, bytes::Bytes::from(buf))?;
            self.spilled[part as usize].push(path);
        }
        self.records.clear();
        self.buffered_bytes = 0;
        Ok(())
    }

    /// Commit: spill the remainder, merge all spills per partition (with
    /// the combiner) and write the final MOF at `"{prefix}file.out"`.
    /// Spill files are deleted after the merge.
    pub fn finish(mut self, fs: &dyn LocalFs) -> Result<MofData> {
        self.spill(fs)?;
        let mut partitions: Vec<Vec<u8>> = Vec::with_capacity(self.num_partitions as usize);
        for part in 0..self.num_partitions {
            let paths = std::mem::take(&mut self.spilled[part as usize]);
            let merged = match paths.len() {
                0 => Vec::new(),
                1 => {
                    // Single spill: already sorted and combined; move as-is.
                    let data = fs.read(&paths[0])?.to_vec();
                    fs.delete(&paths[0]);
                    data
                }
                _ => {
                    let readers: Vec<SegmentReader> = paths
                        .iter()
                        .map(|p| {
                            SegmentReader::new(SegmentSource::LocalFile { path: p.clone() }, fs.read(p)?)
                        })
                        .collect::<Result<_>>()?;
                    let merged = merger::merge_readers(&self.cmp, readers, self.combiner.as_ref())?;
                    for p in &paths {
                        fs.delete(p);
                    }
                    merged
                }
            };
            partitions.push(merged);
        }
        write_mof(fs, &format!("{}file.out", self.prefix), partitions)
    }
}

/// Convenience for tests and the simulator's calibration harness: run a
/// whole map-side pipeline over records in memory.
pub fn map_side_sort(
    cmp: &KeyCmp,
    combiner: Option<&Combiner>,
    num_partitions: u32,
    records: Vec<(u32, Vec<u8>, Vec<u8>)>,
) -> Result<Vec<bytes::Bytes>> {
    let fs = crate::localfs::MemFs::new();
    let mut buf = MapOutputBuffer::new(cmp.clone(), combiner.cloned(), num_partitions, u64::MAX, "m/");
    for (p, k, v) in records {
        buf.collect(&fs, p, k, v)?;
    }
    let mof = buf.finish(&fs)?;
    (0..num_partitions).map(|p| mof.read_partition(&fs, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytewise_cmp;
    use crate::localfs::MemFs;
    use bytes::Bytes;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn decode_keys(data: &Bytes) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut off = 0;
        while let Some((k, _, next)) = codec::decode_at(data, off).unwrap() {
            out.push(k.to_vec());
            off = next;
        }
        out
    }

    #[test]
    fn partitions_are_sorted_and_routed() {
        let fs = MemFs::new();
        let mut b = MapOutputBuffer::new(bytewise_cmp(), None, 2, u64::MAX, "m/");
        b.collect(&fs, 1, b"z".to_vec(), b"1".to_vec()).unwrap();
        b.collect(&fs, 0, b"m".to_vec(), b"2".to_vec()).unwrap();
        b.collect(&fs, 1, b"a".to_vec(), b"3".to_vec()).unwrap();
        let mof = b.finish(&fs).unwrap();
        let p0 = mof.read_partition(&fs, 0).unwrap();
        let p1 = mof.read_partition(&fs, 1).unwrap();
        assert_eq!(decode_keys(&p0), vec![b"m".to_vec()]);
        assert_eq!(decode_keys(&p1), vec![b"a".to_vec(), b"z".to_vec()]);
    }

    #[test]
    fn small_threshold_forces_spills_and_merge_preserves_order() {
        let fs = MemFs::new();
        let mut b = MapOutputBuffer::new(bytewise_cmp(), None, 1, 64, "m/");
        let mut keys: Vec<Vec<u8>> =
            (0..100u32).map(|i| format!("k{:03}", (i * 37) % 100).into_bytes()).collect();
        for k in &keys {
            b.collect(&fs, 0, k.clone(), b"v".to_vec()).unwrap();
        }
        assert!(b.spill_count() > 1, "threshold must have forced multiple spills");
        let mof = b.finish(&fs).unwrap();
        let got = decode_keys(&mof.read_partition(&fs, 0).unwrap());
        keys.sort();
        assert_eq!(got, keys);
        // Spill files cleaned up: only the MOF remains.
        assert_eq!(fs.list("m/").len(), 1);
    }

    #[test]
    fn combiner_applies_across_spills() {
        let sum: Combiner = Arc::new(|_k, vals: &[Vec<u8>]| {
            Some((vals.len() as u32).to_be_bytes().to_vec()) // count occurrences
        });
        let fs = MemFs::new();
        let mut b = MapOutputBuffer::new(bytewise_cmp(), Some(sum), 1, 48, "m/");
        for _ in 0..10 {
            b.collect(&fs, 0, b"word".to_vec(), b"x".to_vec()).unwrap();
        }
        let mof = b.finish(&fs).unwrap();
        let data = mof.read_partition(&fs, 0).unwrap();
        // All ten occurrences collapse to one record (counts recombined).
        let keys = decode_keys(&data);
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn empty_map_output_gives_empty_partitions() {
        let fs = MemFs::new();
        let b = MapOutputBuffer::new(bytewise_cmp(), None, 3, 1024, "m/");
        let mof = b.finish(&fs).unwrap();
        assert_eq!(mof.num_partitions(), 3);
        assert_eq!(mof.total_bytes(), 0);
    }

    proptest! {
        /// The pipeline (buffer -> spills -> merged MOF) emits, per
        /// partition, exactly the input multiset in sorted order —
        /// regardless of the spill threshold.
        #[test]
        fn pipeline_equals_sort(
            records in proptest::collection::vec(
                (0u32..4, proptest::collection::vec(0u8..=255, 1..6), proptest::collection::vec(0u8..=255, 0..6)), 0..120),
            threshold in 16u64..4096,
        ) {
            let fs = MemFs::new();
            let mut b = MapOutputBuffer::new(bytewise_cmp(), None, 4, threshold, "m/");
            for (p, k, v) in &records {
                b.collect(&fs, *p, k.clone(), v.clone()).unwrap();
            }
            let mof = b.finish(&fs).unwrap();
            for part in 0..4u32 {
                let mut expected: Vec<(Vec<u8>, Vec<u8>)> = records.iter()
                    .filter(|(p, _, _)| *p == part)
                    .map(|(_, k, v)| (k.clone(), v.clone()))
                    .collect();
                expected.sort_by(|a, b| a.0.cmp(&b.0));
                let data = mof.read_partition(&fs, part).unwrap();
                let mut got = Vec::new();
                let mut off = 0;
                while let Some((k, v, next)) = codec::decode_at(&data, off).unwrap() {
                    got.push((k.to_vec(), v.to_vec()));
                    off = next;
                }
                // Same keys in order; same multiset of pairs.
                let got_keys: Vec<&Vec<u8>> = got.iter().map(|(k, _)| k).collect();
                let exp_keys: Vec<&Vec<u8>> = expected.iter().map(|(k, _)| k).collect();
                prop_assert_eq!(got_keys, exp_keys);
                let mut g = got.clone(); g.sort();
                let mut e = expected.clone(); e.sort();
                prop_assert_eq!(g, e);
            }
        }
    }
}
