//! The Minimum Priority Queue (MPQ): a comparator-driven k-way merge heap
//! over segment readers.
//!
//! This is the structure the paper's reduce stage drains (§II-A) and the
//! structure whose *shape* the reduce-stage analytics log preserves: for
//! every member segment, its source and the byte offset of its next
//! unconsumed record (Fig. 6). [`MergeQueue::snapshot`] produces exactly
//! that list; rebuilding the MPQ from a snapshot is `SegmentReader::resume`
//! per entry followed by `MergeQueue::new`.
//!
//! The heap is hand-rolled (rather than `BinaryHeap`) because the ordering
//! is a runtime comparator, and ties break on reader index so merges are
//! deterministic and stable.

use bytes::Bytes;

use crate::error::Result;
use crate::segment::{SegmentReader, SegmentSource};
use crate::KeyCmp;

/// One entry of an MPQ snapshot: where the segment lives and how far the
/// merge had consumed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpqEntry {
    pub source: SegmentSource,
    pub offset: usize,
}

/// A stream of key-ordered records that an MPQ can merge.
///
/// [`SegmentReader`] is the materialised implementation; FCM's pipelined
/// per-participant streams implement it over channels so the Global-MPQ can
/// merge data that is still being produced remotely.
pub trait SortedRun {
    /// Key of the current record; `None` when exhausted.
    fn key(&self) -> Option<&[u8]>;
    /// Value of the current record; `None` when exhausted.
    fn value(&self) -> Option<&[u8]>;
    /// Consume the current record and move to the next. May block
    /// (streaming implementations) until the next record is available.
    fn advance(&mut self) -> Result<Option<(Bytes, Bytes)>>;
    fn is_exhausted(&self) -> bool {
        self.key().is_none()
    }
    /// Where this run's bytes live (for logging snapshots).
    fn source(&self) -> &SegmentSource;
    /// Byte offset of the current record within the run, when meaningful.
    /// Streaming runs report 0 — they are never snapshotted into logs.
    fn current_offset(&self) -> usize {
        0
    }
    /// Unconsumed bytes, when known.
    fn remaining_bytes(&self) -> usize {
        0
    }
}

impl SortedRun for SegmentReader {
    fn key(&self) -> Option<&[u8]> {
        SegmentReader::key(self)
    }
    fn value(&self) -> Option<&[u8]> {
        SegmentReader::value(self)
    }
    fn advance(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        SegmentReader::advance(self)
    }
    fn is_exhausted(&self) -> bool {
        SegmentReader::is_exhausted(self)
    }
    fn source(&self) -> &SegmentSource {
        SegmentReader::source(self)
    }
    fn current_offset(&self) -> usize {
        SegmentReader::current_offset(self)
    }
    fn remaining_bytes(&self) -> usize {
        SegmentReader::remaining_bytes(self)
    }
}

/// K-way merge over sorted runs.
pub struct MergeQueue<R: SortedRun = SegmentReader> {
    cmp: KeyCmp,
    readers: Vec<R>,
    /// Indices into `readers` of non-exhausted readers, heap-ordered with
    /// the minimum key at `heap[0]`.
    heap: Vec<usize>,
}

impl<R: SortedRun> MergeQueue<R> {
    /// Build an MPQ from (already sorted) runs. Exhausted runs are dropped
    /// up front.
    pub fn new(cmp: KeyCmp, readers: Vec<R>) -> MergeQueue<R> {
        let mut q = MergeQueue { cmp, readers, heap: Vec::new() };
        for i in 0..q.readers.len() {
            if !q.readers[i].is_exhausted() {
                q.heap.push(i);
            }
        }
        if !q.heap.is_empty() {
            for i in (0..q.heap.len() / 2).rev() {
                q.sift_down(i);
            }
        }
        q
    }

    /// `a` orders before `b` in the heap?
    fn before(&self, a: usize, b: usize) -> bool {
        let ka = self.readers[a].key().expect("heap members are non-exhausted");
        let kb = self.readers[b].key().expect("heap members are non-exhausted");
        match (self.cmp)(ka, kb) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b, // stable tie-break
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < self.heap.len() && self.before(self.heap[l], self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.before(self.heap[r], self.heap[smallest]) {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }

    /// Number of live segments in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The minimum record without consuming it.
    pub fn peek(&self) -> Option<(&[u8], &[u8])> {
        let &i = self.heap.first()?;
        Some((self.readers[i].key().unwrap(), self.readers[i].value().unwrap()))
    }

    /// Pop the minimum record and advance its reader.
    pub fn pop(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        if self.heap.is_empty() {
            return Ok(None);
        }
        let i = self.heap[0];
        let rec = self.readers[i].advance()?;
        if self.readers[i].is_exhausted() {
            let last = self.heap.len() - 1;
            self.heap.swap(0, last);
            self.heap.pop();
        }
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Ok(rec)
    }

    /// Drain everything into a vector (test convenience; production paths
    /// stream via [`MergeQueue::pop`]).
    pub fn drain(&mut self) -> Result<Vec<(Bytes, Bytes)>> {
        let mut out = Vec::new();
        while let Some(r) = self.pop()? {
            out.push(r);
        }
        Ok(out)
    }

    /// Snapshot the MPQ structure for analytics logging: each live
    /// segment's source and current byte offset, in reader order (the
    /// structure, not the heap order, which is reconstructible).
    pub fn snapshot(&self) -> Vec<MpqEntry> {
        let mut live: Vec<usize> = self.heap.clone();
        live.sort_unstable();
        live.iter()
            .map(|&i| MpqEntry {
                source: self.readers[i].source().clone(),
                offset: self.readers[i].current_offset(),
            })
            .collect()
    }

    /// Total unconsumed bytes across live segments.
    pub fn remaining_bytes(&self) -> usize {
        self.heap.iter().map(|&i| self.readers[i].remaining_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytewise_cmp;
    use crate::segment::build_segment;
    use proptest::prelude::*;

    fn reader(id: u64, recs: &[(&[u8], &[u8])]) -> SegmentReader {
        let recs: Vec<(Vec<u8>, Vec<u8>)> = recs.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        SegmentReader::new(SegmentSource::Memory { id }, build_segment(&recs)).unwrap()
    }

    #[test]
    fn merges_in_key_order() {
        let r1 = reader(1, &[(b"a", b"1"), (b"d", b"4")]);
        let r2 = reader(2, &[(b"b", b"2"), (b"c", b"3"), (b"e", b"5")]);
        let mut q = MergeQueue::new(bytewise_cmp(), vec![r1, r2]);
        let keys: Vec<Vec<u8>> = q.drain().unwrap().into_iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec(), b"e".to_vec()]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_keys_pop_in_reader_order() {
        let r1 = reader(1, &[(b"k", b"first")]);
        let r2 = reader(2, &[(b"k", b"second")]);
        let mut q = MergeQueue::new(bytewise_cmp(), vec![r1, r2]);
        let vals: Vec<Vec<u8>> = q.drain().unwrap().into_iter().map(|(_, v)| v.to_vec()).collect();
        assert_eq!(vals, vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn empty_and_exhausted_readers_are_skipped() {
        let r1 = reader(1, &[]);
        let r2 = reader(2, &[(b"x", b"1")]);
        let mut q = MergeQueue::new(bytewise_cmp(), vec![r1, r2]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain().unwrap().len(), 1);
    }

    #[test]
    fn snapshot_reflects_consumption_and_restores() {
        let data1 = build_segment(&[(b"a".to_vec(), b"1".to_vec()), (b"c".to_vec(), b"3".to_vec())]);
        let data2 = build_segment(&[(b"b".to_vec(), b"2".to_vec()), (b"d".to_vec(), b"4".to_vec())]);
        let r1 = SegmentReader::new(SegmentSource::LocalFile { path: "s1".into() }, data1.clone()).unwrap();
        let r2 = SegmentReader::new(SegmentSource::LocalFile { path: "s2".into() }, data2.clone()).unwrap();
        let mut q = MergeQueue::new(bytewise_cmp(), vec![r1, r2]);
        q.pop().unwrap(); // a
        q.pop().unwrap(); // b
        let snap = q.snapshot();
        assert_eq!(snap.len(), 2);

        // Rebuild from the snapshot (as SFM's log resume does) and check the
        // remaining stream is identical.
        let datas = [("s1", data1), ("s2", data2)];
        let readers: Vec<SegmentReader> = snap
            .iter()
            .map(|e| {
                let path = match &e.source {
                    SegmentSource::LocalFile { path } => path.clone(),
                    _ => panic!(),
                };
                let data = datas.iter().find(|(p, _)| *p == path).unwrap().1.clone();
                SegmentReader::resume(e.source.clone(), data, e.offset).unwrap()
            })
            .collect();
        let mut q2 = MergeQueue::new(bytewise_cmp(), readers);
        let rest: Vec<Vec<u8>> = q2.drain().unwrap().into_iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(rest, vec![b"c".to_vec(), b"d".to_vec()]);

        // The original queue drains the same remainder.
        let orig_rest: Vec<Vec<u8>> = q.drain().unwrap().into_iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(orig_rest, vec![b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn remaining_bytes_decreases_monotonically() {
        let r = reader(1, &[(b"a", b"11"), (b"b", b"22"), (b"c", b"33")]);
        let mut q = MergeQueue::new(bytewise_cmp(), vec![r]);
        let mut last = q.remaining_bytes();
        while q.pop().unwrap().is_some() {
            let now = q.remaining_bytes();
            assert!(now < last);
            last = now;
        }
        assert_eq!(last, 0);
    }

    proptest! {
        /// Merging arbitrary sorted segments equals sorting the multiset.
        #[test]
        fn merge_equals_global_sort(segs in proptest::collection::vec(
            proptest::collection::vec((proptest::collection::vec(0u8..=255, 0..8), proptest::collection::vec(0u8..=255, 0..8)), 0..30),
            1..6)) {
            let mut expected: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut readers = Vec::new();
            for (i, mut seg) in segs.into_iter().enumerate() {
                seg.sort_by(|a, b| a.0.cmp(&b.0));
                expected.extend(seg.iter().cloned());
                readers.push(SegmentReader::new(SegmentSource::Memory { id: i as u64 }, build_segment(&seg)).unwrap());
            }
            expected.sort_by(|a, b| a.0.cmp(&b.0));
            let mut q = MergeQueue::new(bytewise_cmp(), readers);
            let merged: Vec<Vec<u8>> = q.drain().unwrap().into_iter().map(|(k, _)| k.to_vec()).collect();
            let expected_keys: Vec<Vec<u8>> = expected.into_iter().map(|(k, _)| k).collect();
            prop_assert_eq!(merged, expected_keys);
        }

        /// A snapshot taken after consuming m records resumes to exactly
        /// the remaining records.
        #[test]
        fn snapshot_resume_equivalence(
            seg_a in proptest::collection::vec((proptest::collection::vec(0u8..=255, 1..6), proptest::collection::vec(0u8..=255, 0..6)), 1..20),
            seg_b in proptest::collection::vec((proptest::collection::vec(0u8..=255, 1..6), proptest::collection::vec(0u8..=255, 0..6)), 1..20),
            consume_frac in 0.0f64..1.0,
        ) {
            let mut a = seg_a; a.sort_by(|x, y| x.0.cmp(&y.0));
            let mut b = seg_b; b.sort_by(|x, y| x.0.cmp(&y.0));
            let (da, db) = (build_segment(&a), build_segment(&b));
            let total = a.len() + b.len();
            let consume = (total as f64 * consume_frac) as usize;

            let mk = |da: &Bytes, db: &Bytes| MergeQueue::new(bytewise_cmp(), vec![
                SegmentReader::new(SegmentSource::Memory { id: 0 }, da.clone()).unwrap(),
                SegmentReader::new(SegmentSource::Memory { id: 1 }, db.clone()).unwrap(),
            ]);
            let mut q = mk(&da, &db);
            for _ in 0..consume { q.pop().unwrap(); }
            let snap = q.snapshot();
            let readers: Vec<SegmentReader> = snap.iter().map(|e| {
                let data = match e.source { SegmentSource::Memory { id: 0 } => da.clone(), _ => db.clone() };
                SegmentReader::resume(e.source.clone(), data, e.offset).unwrap()
            }).collect();
            let mut q2 = MergeQueue::new(bytewise_cmp(), readers);
            let resumed = q2.drain().unwrap();
            let original_rest = q.drain().unwrap();
            prop_assert_eq!(resumed, original_rest);
        }
    }
}
