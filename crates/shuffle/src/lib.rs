//! The MapReduce data plane, reimplemented from scratch (§II-A of the
//! paper): everything between a map function's `emit` and a reduce
//! function's `values` iterator.
//!
//! * [`localfs`] — node-local storage abstraction (in-memory filesystem)
//!   holding spills, MOFs and analytics logs; a node crash wipes it.
//! * [`codec`] — the length-prefixed record wire format.
//! * [`frame`] — the CRC32-checksummed frame wrapped around MOF partition
//!   streams and ALG log records, distinguishing detected corruption
//!   ([`ShuffleError::ChecksumMismatch`]) from truncation.
//! * [`segment`] — sorted runs: [`segment::SegmentReader`] decodes a run
//!   record-by-record and is *offset-resumable*, which is what makes the
//!   paper's reduce-stage analytics logs (file path + offset per MPQ entry,
//!   Fig. 6) sufficient to reconstruct a half-consumed merge.
//! * [`kvbuffer`] — the map-side sort buffer with spill-and-merge, producing
//!   a Map Output File.
//! * [`mof`] — the MOF: one data blob plus a per-partition index.
//! * [`mpq`] — the Minimum Priority Queue: a comparator-driven k-way merge
//!   heap over segment readers, snapshottable for logging.
//! * [`merger`] — merge execution (with optional combiner) and merge
//!   planning down to `io.sort.factor` inputs.
//! * [`fetcher`] — the reduce-side shuffle buffers: in-memory vs on-disk
//!   segment management with the in-memory merge flush ALG piggybacks on.

#![forbid(unsafe_code)]

pub mod codec;
pub mod error;
pub mod fetcher;
pub mod frame;
pub mod kvbuffer;
pub mod localfs;
pub mod merger;
pub mod mof;
pub mod mpq;
pub mod segment;

pub use error::ShuffleError;
pub use fetcher::ReduceBuffers;
pub use kvbuffer::MapOutputBuffer;
pub use localfs::{LocalFs, MemFs};
pub use mof::MofData;
pub use mpq::{MergeQueue, MpqEntry, SortedRun};
pub use segment::{SegmentReader, SegmentSource};

use std::cmp::Ordering;
use std::sync::Arc;

/// Key comparator used throughout the pipeline. Byte-wise for Terasort and
/// Wordcount; composite for Secondarysort.
pub type KeyCmp = Arc<dyn Fn(&[u8], &[u8]) -> Ordering + Send + Sync>;

/// Map-side combiner: fold one key's values into a single value.
pub type Combiner = Arc<dyn Fn(&[u8], &[Vec<u8>]) -> Option<Vec<u8>> + Send + Sync>;

/// The plain byte-wise comparator.
pub fn bytewise_cmp() -> KeyCmp {
    Arc::new(|a: &[u8], b: &[u8]| a.cmp(b))
}
