//! Data-plane errors.

use std::fmt;

/// Errors raised by the shuffle/merge pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleError {
    /// A path was not found in the node-local filesystem (e.g. wiped by a
    /// simulated node crash).
    NotFound(String),
    /// A segment's bytes did not decode as the record wire format, or a
    /// checksummed frame was physically torn/truncated.
    Corrupt(String),
    /// A checksummed frame is physically intact but its payload fails the
    /// CRC32 — detected data corruption, distinct from [`Self::Corrupt`]
    /// because the right response is re-fetch / truncate-and-resume, not
    /// declaring the source lost.
    ChecksumMismatch(String),
    /// A fetch against a remote MOF failed (source node dead or MOF gone).
    /// This is the error class whose repetition drives the paper's failure
    /// amplification.
    FetchFailed { source: String, reason: String },
    /// Programmer error surfaced as a result (invalid partition index etc.).
    Invalid(String),
}

impl fmt::Display for ShuffleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShuffleError::NotFound(p) => write!(f, "not found: {p}"),
            ShuffleError::Corrupt(m) => write!(f, "corrupt segment: {m}"),
            ShuffleError::ChecksumMismatch(m) => write!(f, "checksum mismatch: {m}"),
            ShuffleError::FetchFailed { source, reason } => {
                write!(f, "fetch from {source} failed: {reason}")
            }
            ShuffleError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for ShuffleError {}

pub type Result<T> = std::result::Result<T, ShuffleError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_payload() {
        let e = ShuffleError::FetchFailed { source: "node003".into(), reason: "connection refused".into() };
        let s = e.to_string();
        assert!(s.contains("node003") && s.contains("connection refused"));
        assert!(ShuffleError::NotFound("x/y".into()).to_string().contains("x/y"));
    }
}
