//! Map Output Files.
//!
//! A MOF is the committed output of one MapTask attempt: a single data
//! blob containing every reduce partition's sorted run back-to-back, plus
//! an index of `(offset, len)` per partition (§II-A: "A MOF contains
//! multiple partitions, one per ReduceTask"). MOFs live on the map-side
//! node's local store; losing that node loses the MOFs — the root cause
//! chain of the paper's failure amplification.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::{Result, ShuffleError};
use crate::frame;
use crate::localfs::LocalFs;

/// Handle to a committed MOF.
///
/// Each partition's sorted run is stored as one CRC32-checksummed frame
/// ([`crate::frame`]) so that on-disk corruption of a partition is caught
/// at fetch time as [`ShuffleError::ChecksumMismatch`] instead of being
/// shuffled into a reducer silently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MofData {
    /// Path of the data blob on the producing node's local store.
    pub path: String,
    /// Per-partition `(frame_offset, payload_len)` into the blob; the
    /// stored frame occupies `frame::framed_len(payload_len)` bytes.
    pub index: Vec<(u64, u64)>,
}

impl MofData {
    pub fn num_partitions(&self) -> u32 {
        self.index.len() as u32
    }

    /// Bytes of one partition (zero for an empty partition).
    pub fn partition_len(&self, partition: u32) -> u64 {
        self.index.get(partition as usize).map_or(0, |&(_, len)| len)
    }

    pub fn total_bytes(&self) -> u64 {
        self.index.iter().map(|&(_, len)| len).sum()
    }

    /// Byte range `(offset, len)` of one partition's stored frame within
    /// the blob — the unit a corruption injection targets.
    pub fn frame_range(&self, partition: u32) -> Option<(u64, u64)> {
        self.index.get(partition as usize).map(|&(off, len)| (off, frame::framed_len(len as usize) as u64))
    }

    /// Read and checksum-verify one partition's sorted run from the
    /// producing node's store. Fails with `Invalid` if the partition index
    /// is out of range, `NotFound`/`Corrupt` if the store lost or tore the
    /// blob (node crash), and `ChecksumMismatch` if the frame is intact
    /// but its payload bytes rotted.
    pub fn read_partition(&self, fs: &dyn LocalFs, partition: u32) -> Result<Bytes> {
        let &(off, len) = self
            .index
            .get(partition as usize)
            .ok_or_else(|| ShuffleError::Invalid(format!("partition {partition} out of range")))?;
        let blob = fs.read(&self.path)?;
        let (off, framed) = (off as usize, frame::framed_len(len as usize));
        if off + framed > blob.len() {
            return Err(ShuffleError::Corrupt(format!(
                "MOF index points past blob end ({} + {} > {})",
                off,
                framed,
                blob.len()
            )));
        }
        frame::unframe(&blob.slice(off..off + framed))
    }
}

/// Assemble and commit a MOF from per-partition encoded sorted runs, each
/// wrapped in a CRC32 frame.
pub fn write_mof(fs: &dyn LocalFs, path: &str, partitions: Vec<Vec<u8>>) -> Result<MofData> {
    let mut blob = Vec::with_capacity(partitions.iter().map(|p| frame::framed_len(p.len())).sum::<usize>());
    let mut index = Vec::with_capacity(partitions.len());
    for part in &partitions {
        index.push((blob.len() as u64, part.len() as u64));
        frame::frame_into(&mut blob, part);
    }
    fs.write(path, Bytes::from(blob))?;
    Ok(MofData { path: path.to_string(), index })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::localfs::MemFs;

    fn encoded(pairs: &[(&str, &str)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in pairs {
            codec::encode_into(&mut out, k.as_bytes(), v.as_bytes());
        }
        out
    }

    #[test]
    fn write_and_read_partitions() {
        let fs = MemFs::new();
        let p0 = encoded(&[("a", "1")]);
        let p1 = Vec::new(); // empty partition
        let p2 = encoded(&[("b", "2"), ("c", "3")]);
        let mof = write_mof(&fs, "mof/m0", vec![p0.clone(), p1, p2.clone()]).unwrap();
        assert_eq!(mof.num_partitions(), 3);
        assert_eq!(mof.partition_len(1), 0);
        assert_eq!(mof.total_bytes(), (p0.len() + p2.len()) as u64);
        assert_eq!(&mof.read_partition(&fs, 0).unwrap()[..], &p0[..]);
        assert!(mof.read_partition(&fs, 1).unwrap().is_empty());
        assert_eq!(&mof.read_partition(&fs, 2).unwrap()[..], &p2[..]);
    }

    #[test]
    fn out_of_range_partition_rejected() {
        let fs = MemFs::new();
        let mof = write_mof(&fs, "mof/m0", vec![encoded(&[("a", "1")])]).unwrap();
        assert!(matches!(mof.read_partition(&fs, 5), Err(ShuffleError::Invalid(_))));
        assert_eq!(mof.partition_len(5), 0);
    }

    #[test]
    fn node_crash_loses_mof() {
        let fs = MemFs::new();
        let mof = write_mof(&fs, "mof/m0", vec![encoded(&[("a", "1")])]).unwrap();
        fs.wipe();
        assert!(mof.read_partition(&fs, 0).is_err());
    }

    #[test]
    fn flipped_partition_byte_is_a_checksum_mismatch() {
        let fs = MemFs::new();
        let p0 = encoded(&[("a", "1"), ("b", "2")]);
        let mof = write_mof(&fs, "mof/m0", vec![p0]).unwrap();
        // Flip one payload byte inside partition 0's stored frame.
        let (off, framed) = mof.frame_range(0).unwrap();
        let mut blob = fs.read("mof/m0").unwrap().to_vec();
        blob[(off + framed - 1) as usize] ^= 0x01;
        fs.write("mof/m0", Bytes::from(blob)).unwrap();
        assert!(matches!(mof.read_partition(&fs, 0), Err(ShuffleError::ChecksumMismatch(_))));
    }

    #[test]
    fn corrupt_index_detected() {
        let fs = MemFs::new();
        fs.write("m", Bytes::from_static(b"short")).unwrap();
        let mof = MofData { path: "m".into(), index: vec![(0, 100)] };
        assert!(matches!(mof.read_partition(&fs, 0), Err(ShuffleError::Corrupt(_))));
    }
}
