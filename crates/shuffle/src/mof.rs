//! Map Output Files.
//!
//! A MOF is the committed output of one MapTask attempt: a single data
//! blob containing every reduce partition's sorted run back-to-back, plus
//! an index of `(offset, len)` per partition (§II-A: "A MOF contains
//! multiple partitions, one per ReduceTask"). MOFs live on the map-side
//! node's local store; losing that node loses the MOFs — the root cause
//! chain of the paper's failure amplification.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::error::{Result, ShuffleError};
use crate::localfs::LocalFs;

/// Handle to a committed MOF.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MofData {
    /// Path of the data blob on the producing node's local store.
    pub path: String,
    /// Per-partition `(offset, len)` into the blob.
    pub index: Vec<(u64, u64)>,
}

impl MofData {
    pub fn num_partitions(&self) -> u32 {
        self.index.len() as u32
    }

    /// Bytes of one partition (zero for an empty partition).
    pub fn partition_len(&self, partition: u32) -> u64 {
        self.index.get(partition as usize).map_or(0, |&(_, len)| len)
    }

    pub fn total_bytes(&self) -> u64 {
        self.index.iter().map(|&(_, len)| len).sum()
    }

    /// Read one partition's sorted run from the producing node's store.
    /// Fails if the partition index is out of range or the store lost the
    /// blob (node crash).
    pub fn read_partition(&self, fs: &dyn LocalFs, partition: u32) -> Result<Bytes> {
        let &(off, len) = self
            .index
            .get(partition as usize)
            .ok_or_else(|| ShuffleError::Invalid(format!("partition {partition} out of range")))?;
        let blob = fs.read(&self.path)?;
        let (off, len) = (off as usize, len as usize);
        if off + len > blob.len() {
            return Err(ShuffleError::Corrupt(format!(
                "MOF index points past blob end ({} + {} > {})",
                off,
                len,
                blob.len()
            )));
        }
        Ok(blob.slice(off..off + len))
    }
}

/// Assemble and commit a MOF from per-partition encoded sorted runs.
pub fn write_mof(fs: &dyn LocalFs, path: &str, partitions: Vec<Vec<u8>>) -> Result<MofData> {
    let mut blob = Vec::with_capacity(partitions.iter().map(Vec::len).sum());
    let mut index = Vec::with_capacity(partitions.len());
    for part in &partitions {
        index.push((blob.len() as u64, part.len() as u64));
        blob.extend_from_slice(part);
    }
    fs.write(path, Bytes::from(blob))?;
    Ok(MofData { path: path.to_string(), index })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;
    use crate::localfs::MemFs;

    fn encoded(pairs: &[(&str, &str)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in pairs {
            codec::encode_into(&mut out, k.as_bytes(), v.as_bytes());
        }
        out
    }

    #[test]
    fn write_and_read_partitions() {
        let fs = MemFs::new();
        let p0 = encoded(&[("a", "1")]);
        let p1 = Vec::new(); // empty partition
        let p2 = encoded(&[("b", "2"), ("c", "3")]);
        let mof = write_mof(&fs, "mof/m0", vec![p0.clone(), p1, p2.clone()]).unwrap();
        assert_eq!(mof.num_partitions(), 3);
        assert_eq!(mof.partition_len(1), 0);
        assert_eq!(mof.total_bytes(), (p0.len() + p2.len()) as u64);
        assert_eq!(&mof.read_partition(&fs, 0).unwrap()[..], &p0[..]);
        assert!(mof.read_partition(&fs, 1).unwrap().is_empty());
        assert_eq!(&mof.read_partition(&fs, 2).unwrap()[..], &p2[..]);
    }

    #[test]
    fn out_of_range_partition_rejected() {
        let fs = MemFs::new();
        let mof = write_mof(&fs, "mof/m0", vec![encoded(&[("a", "1")])]).unwrap();
        assert!(matches!(mof.read_partition(&fs, 5), Err(ShuffleError::Invalid(_))));
        assert_eq!(mof.partition_len(5), 0);
    }

    #[test]
    fn node_crash_loses_mof() {
        let fs = MemFs::new();
        let mof = write_mof(&fs, "mof/m0", vec![encoded(&[("a", "1")])]).unwrap();
        fs.wipe();
        assert!(mof.read_partition(&fs, 0).is_err());
    }

    #[test]
    fn corrupt_index_detected() {
        let fs = MemFs::new();
        fs.write("m", Bytes::from_static(b"short")).unwrap();
        let mof = MofData { path: "m".into(), index: vec![(0, 100)] };
        assert!(matches!(mof.read_partition(&fs, 0), Err(ShuffleError::Corrupt(_))));
    }
}
