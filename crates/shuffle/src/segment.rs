//! Sorted runs ("segments") and resumable readers over them.
//!
//! A segment is a byte stream in the [`crate::codec`] format whose records
//! are sorted by the job's key comparator. [`SegmentReader`] walks one
//! record at a time and knows the byte offset of its *current* record —
//! the pair `(source, offset)` is exactly one entry of the reduce-stage
//! analytics log (Fig. 6), and [`SegmentReader::resume`] is how a recovered
//! ReduceTask re-opens the segment mid-stream.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crate::codec;
use crate::error::Result;

/// Where a segment's bytes live — recorded in analytics logs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentSource {
    /// An in-memory shuffle segment (lost on task death; ALG's in-memory
    /// merge flush exists to evacuate these before logging).
    Memory { id: u64 },
    /// A file on a node's local store (spill or merged output).
    LocalFile { path: String },
    /// A file on the DFS (reduce-stage logs and flushed reduce output).
    Dfs { path: String },
}

impl SegmentSource {
    pub fn describe(&self) -> String {
        match self {
            SegmentSource::Memory { id } => format!("mem:{id}"),
            SegmentSource::LocalFile { path } => format!("file:{path}"),
            SegmentSource::Dfs { path } => format!("dfs:{path}"),
        }
    }

    /// Whether this source survives the death of the hosting task's node.
    pub fn survives_node_crash(&self) -> bool {
        matches!(self, SegmentSource::Dfs { .. })
    }
}

/// A streaming reader over one segment.
#[derive(Debug, Clone)]
pub struct SegmentReader {
    source: SegmentSource,
    data: Bytes,
    /// Byte offset of the current record (valid while `current.is_some()`).
    current_offset: usize,
    /// Offset of the record after the current one.
    next_offset: usize,
    current: Option<(Bytes, Bytes)>,
}

impl SegmentReader {
    /// Open a segment from the beginning.
    pub fn new(source: SegmentSource, data: Bytes) -> Result<SegmentReader> {
        SegmentReader::resume(source, data, 0)
    }

    /// Open a segment at a byte offset previously obtained from
    /// [`SegmentReader::current_offset`] — the log-resume path.
    pub fn resume(source: SegmentSource, data: Bytes, offset: usize) -> Result<SegmentReader> {
        let mut r =
            SegmentReader { source, data, current_offset: offset, next_offset: offset, current: None };
        r.decode_current()?;
        Ok(r)
    }

    fn decode_current(&mut self) -> Result<()> {
        self.current_offset = self.next_offset;
        match codec::decode_at(&self.data, self.next_offset)? {
            Some((k, v, next)) => {
                self.current = Some((k, v));
                self.next_offset = next;
            }
            None => self.current = None,
        }
        Ok(())
    }

    pub fn source(&self) -> &SegmentSource {
        &self.source
    }

    /// Key of the current record; `None` when exhausted.
    pub fn key(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(k, _)| &k[..])
    }

    pub fn value(&self) -> Option<&[u8]> {
        self.current.as_ref().map(|(_, v)| &v[..])
    }

    /// Byte offset of the current record — what ALG logs for the MPQ.
    pub fn current_offset(&self) -> usize {
        self.current_offset
    }

    pub fn is_exhausted(&self) -> bool {
        self.current.is_none()
    }

    /// Total bytes remaining from the current record to segment end.
    pub fn remaining_bytes(&self) -> usize {
        self.data.len().saturating_sub(self.current_offset)
    }

    /// Move to the next record; returns the record that was current.
    pub fn advance(&mut self) -> Result<Option<(Bytes, Bytes)>> {
        let out = self.current.take();
        if out.is_some() {
            self.decode_current()?;
        }
        Ok(out)
    }
}

/// Build an encoded segment from sorted records (test/production helper).
pub fn build_segment(records: &[(Vec<u8>, Vec<u8>)]) -> Bytes {
    let mut buf = Vec::new();
    for (k, v) in records {
        codec::encode_into(&mut buf, k, v);
    }
    Bytes::from(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Bytes {
        build_segment(&[
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), b"2".to_vec()),
            (b"c".to_vec(), b"3".to_vec()),
        ])
    }

    fn src() -> SegmentSource {
        SegmentSource::Memory { id: 0 }
    }

    #[test]
    fn sequential_read() {
        let mut r = SegmentReader::new(src(), seg()).unwrap();
        assert_eq!(r.key().unwrap(), b"a");
        assert_eq!(r.current_offset(), 0);
        let (k, v) = r.advance().unwrap().unwrap();
        assert_eq!((&k[..], &v[..]), (&b"a"[..], &b"1"[..]));
        assert_eq!(r.key().unwrap(), b"b");
        r.advance().unwrap();
        r.advance().unwrap();
        assert!(r.is_exhausted());
        assert_eq!(r.advance().unwrap(), None);
    }

    #[test]
    fn offset_resume_reproduces_suffix() {
        let data = seg();
        let mut r = SegmentReader::new(src(), data.clone()).unwrap();
        r.advance().unwrap(); // consumed "a"
        let off = r.current_offset(); // points at "b"
        let mut resumed = SegmentReader::resume(src(), data, off).unwrap();
        assert_eq!(resumed.key().unwrap(), b"b");
        let mut rest = Vec::new();
        while let Some((k, _)) = resumed.advance().unwrap() {
            rest.push(k);
        }
        assert_eq!(rest.len(), 2);
        assert_eq!(&rest[0][..], b"b");
        assert_eq!(&rest[1][..], b"c");
    }

    #[test]
    fn resume_at_end_is_exhausted() {
        let data = seg();
        let r = SegmentReader::resume(src(), data.clone(), data.len()).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(r.remaining_bytes(), 0);
    }

    #[test]
    fn empty_segment() {
        let r = SegmentReader::new(src(), Bytes::new()).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(r.key(), None);
    }

    #[test]
    fn source_durability() {
        assert!(!SegmentSource::Memory { id: 1 }.survives_node_crash());
        assert!(!SegmentSource::LocalFile { path: "x".into() }.survives_node_crash());
        assert!(SegmentSource::Dfs { path: "x".into() }.survives_node_crash());
    }

    #[test]
    fn corrupt_data_errors() {
        let bad = Bytes::from_static(&[0, 0, 0, 9, 0, 0, 0, 9, 1, 2]);
        assert!(SegmentReader::new(src(), bad).is_err());
    }
}
