//! Node-local storage.
//!
//! Each simulated node owns one [`MemFs`]: spills, merged segments, MOFs and
//! shuffle-stage analytics logs live here. Crashing a node is
//! [`MemFs::wipe`] — after which every fetch against its MOFs fails, which
//! is precisely the condition that triggers the paper's failure
//! amplification.
//!
//! The trait exists so tests can substitute failing/instrumented stores.

use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeMap;

use crate::error::{Result, ShuffleError};

/// A flat path → bytes store with whole-file reads and writes.
pub trait LocalFs: Send + Sync {
    fn write(&self, path: &str, data: Bytes) -> Result<()>;
    fn read(&self, path: &str) -> Result<Bytes>;
    /// Remove a file; `true` if it existed.
    fn delete(&self, path: &str) -> bool;
    fn exists(&self, path: &str) -> bool;
    /// Paths starting with `prefix`, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
    /// Total stored bytes (diagnostics, disk-usage assertions).
    fn total_bytes(&self) -> u64;
}

/// In-memory [`LocalFs`].
#[derive(Default)]
pub struct MemFs {
    files: Mutex<BTreeMap<String, Bytes>>,
    /// When true, all operations fail — models a crashed node's store.
    dead: Mutex<bool>,
}

impl MemFs {
    pub fn new() -> MemFs {
        MemFs::default()
    }

    /// Simulate the node crashing: drop all data and refuse future I/O.
    pub fn wipe(&self) {
        self.files.lock().clear();
        *self.dead.lock() = true;
    }

    /// Bring a replacement node up on the same identity (fresh, empty store).
    pub fn revive(&self) {
        self.files.lock().clear();
        *self.dead.lock() = false;
    }

    pub fn is_dead(&self) -> bool {
        *self.dead.lock()
    }

    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }

    fn check_alive(&self) -> Result<()> {
        if self.is_dead() {
            Err(ShuffleError::FetchFailed { source: "local".into(), reason: "node store is dead".into() })
        } else {
            Ok(())
        }
    }
}

impl LocalFs for MemFs {
    fn write(&self, path: &str, data: Bytes) -> Result<()> {
        self.check_alive()?;
        self.files.lock().insert(path.to_string(), data);
        Ok(())
    }

    fn read(&self, path: &str) -> Result<Bytes> {
        self.check_alive()?;
        self.files.lock().get(path).cloned().ok_or_else(|| ShuffleError::NotFound(path.to_string()))
    }

    fn delete(&self, path: &str) -> bool {
        !self.is_dead() && self.files.lock().remove(path).is_some()
    }

    fn exists(&self, path: &str) -> bool {
        !self.is_dead() && self.files.lock().contains_key(path)
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        if self.is_dead() {
            return Vec::new();
        }
        self.files
            .lock()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    fn total_bytes(&self) -> u64 {
        self.files.lock().values().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete() {
        let fs = MemFs::new();
        fs.write("a/b", Bytes::from_static(b"hello")).unwrap();
        assert!(fs.exists("a/b"));
        assert_eq!(fs.read("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(fs.total_bytes(), 5);
        assert!(fs.delete("a/b"));
        assert!(!fs.delete("a/b"));
        assert!(matches!(fs.read("a/b"), Err(ShuffleError::NotFound(_))));
    }

    #[test]
    fn list_is_prefix_scoped_and_sorted() {
        let fs = MemFs::new();
        for p in ["spill_2", "spill_10", "mof/x", "spill_1"] {
            fs.write(p, Bytes::new()).unwrap();
        }
        assert_eq!(fs.list("spill_"), vec!["spill_1", "spill_10", "spill_2"]);
        assert_eq!(fs.list("mof/"), vec!["mof/x"]);
        assert!(fs.list("zzz").is_empty());
    }

    #[test]
    fn wipe_models_node_crash() {
        let fs = MemFs::new();
        fs.write("mof/1", Bytes::from_static(b"data")).unwrap();
        fs.wipe();
        assert!(fs.is_dead());
        assert!(fs.read("mof/1").is_err());
        assert!(fs.write("new", Bytes::new()).is_err());
        assert!(!fs.exists("mof/1"));
        assert!(fs.list("").is_empty());
        fs.revive();
        assert!(!fs.is_dead());
        assert_eq!(fs.file_count(), 0, "revival does not resurrect data");
        fs.write("new", Bytes::new()).unwrap();
    }
}
