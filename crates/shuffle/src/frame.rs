//! CRC32-checksummed framing for durable artifacts.
//!
//! Both recovery-critical byte stores — MOF partition streams and ALG
//! analytics-log records — are wrapped in a small frame so that silent
//! data corruption is *detected* at read time and classified distinctly
//! from truncation:
//!
//! ```text
//! [payload_len u32 BE][crc32(payload) u32 BE][payload]
//! ```
//!
//! * A frame that is physically shorter than its header claims (torn
//!   write, truncated file) decodes to [`ShuffleError::Corrupt`].
//! * A frame whose bytes are all present but whose payload fails the
//!   checksum (bit rot, injected corruption) decodes to
//!   [`ShuffleError::ChecksumMismatch`].
//!
//! The distinction matters for recovery policy: a checksum mismatch on a
//! fetched MOF partition means the *data* is bad while the source node is
//! healthy — re-fetch, never count it against the fetch-failure budget —
//! and a mismatch inside an ALG log means truncate at that record and
//! resume from the last good snapshot instead of restarting from zero.

use bytes::Bytes;

use crate::error::{Result, ShuffleError};

/// Bytes of frame overhead preceding the payload.
pub const FRAME_HEADER_LEN: usize = 8;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_table();

/// IEEE CRC-32 (the polynomial used by zip/zlib/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append one checksummed frame around `payload`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// A fresh buffer holding one checksummed frame around `payload`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame_into(&mut out, payload);
    out
}

/// Total frame size for a payload of `payload_len` bytes.
pub fn framed_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len
}

/// Decode a buffer holding exactly one frame, verifying the checksum.
///
/// Truncation (missing header bytes, payload shorter than the header
/// claims) and framing damage (trailing garbage, length-field rot that
/// makes the claimed length disagree with the physical length) are
/// [`ShuffleError::Corrupt`]; a physically intact frame whose payload
/// fails the CRC is [`ShuffleError::ChecksumMismatch`].
pub fn unframe(buf: &Bytes) -> Result<Bytes> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(ShuffleError::Corrupt(format!("truncated frame header ({} bytes)", buf.len())));
    }
    let len = u32::from_be_bytes(buf[0..4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_be_bytes(buf[4..8].try_into().expect("4 bytes"));
    let body = &buf[FRAME_HEADER_LEN..];
    if body.len() != len {
        return Err(ShuffleError::Corrupt(format!(
            "torn frame: header claims {len} payload bytes, {} present",
            body.len()
        )));
    }
    let got = crc32(body);
    if got != want {
        return Err(ShuffleError::ChecksumMismatch(format!(
            "frame checksum mismatch: stored {want:#010x}, computed {got:#010x}"
        )));
    }
    Ok(buf.slice(FRAME_HEADER_LEN..))
}

/// Verify a frame without keeping the payload.
pub fn validate_frame(buf: &Bytes) -> Result<()> {
    unframe(buf).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip() {
        for payload in [&b""[..], b"x", b"hello shuffle", &[0u8; 1024][..]] {
            let framed = Bytes::from(frame(payload));
            assert_eq!(framed.len(), framed_len(payload.len()));
            assert_eq!(&unframe(&framed).unwrap()[..], payload);
            validate_frame(&framed).unwrap();
        }
    }

    #[test]
    fn truncation_is_corrupt_not_mismatch() {
        let framed = frame(b"some payload worth keeping");
        for cut in 0..framed.len() {
            let cutb = Bytes::copy_from_slice(&framed[..cut]);
            match unframe(&cutb) {
                Err(ShuffleError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn payload_flip_is_checksum_mismatch() {
        let mut framed = frame(b"some payload worth keeping");
        framed[FRAME_HEADER_LEN + 3] ^= 0x40;
        let b = Bytes::from(framed);
        assert!(matches!(unframe(&b), Err(ShuffleError::ChecksumMismatch(_))));
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut framed = frame(b"payload");
        framed.push(0xAA);
        let b = Bytes::from(framed);
        assert!(matches!(unframe(&b), Err(ShuffleError::Corrupt(_))));
    }

    proptest! {
        /// Any single-byte flip is detected, and flips strictly inside the
        /// payload always classify as a checksum mismatch (header flips may
        /// surface as framing corruption instead — both are detections).
        #[test]
        fn single_byte_flips_never_pass(payload in proptest::collection::vec(0u8..=255, 1..256),
                                        pos in 0usize..4096,
                                        bit in 0u8..8) {
            let mut framed = frame(&payload);
            let at = pos % framed.len();
            framed[at] ^= 1 << bit;
            let b = Bytes::from(framed);
            let res = unframe(&b);
            prop_assert!(res.is_err(), "flipped frame must not verify");
            if at >= FRAME_HEADER_LEN {
                prop_assert!(matches!(res, Err(ShuffleError::ChecksumMismatch(_))),
                    "payload flip at {at} must be a checksum mismatch, got {res:?}");
            }
        }

        /// Any truncation is detected as corruption, never as a checksum
        /// mismatch, and never panics.
        #[test]
        fn truncations_classify_as_corrupt(payload in proptest::collection::vec(0u8..=255, 0..256),
                                           cut in 0usize..4096) {
            let framed = frame(&payload);
            let at = cut % framed.len();
            let b = Bytes::copy_from_slice(&framed[..at]);
            prop_assert!(matches!(unframe(&b), Err(ShuffleError::Corrupt(_))));
        }
    }
}
