//! Merge execution and planning.
//!
//! Merging is "widely recognized as a major bottleneck in the ReduceTask
//! execution" (§IV-A) — these helpers are the single implementation used by
//! the map side (spill merging), the reduce side (in-memory flushes and
//! on-disk factor merges) and FCM's Local-MPQ pre-merging.

use bytes::Bytes;

use crate::codec;
use crate::error::Result;
use crate::localfs::LocalFs;
use crate::mpq::MergeQueue;
use crate::segment::{SegmentReader, SegmentSource};
use crate::{Combiner, KeyCmp};

/// Merge sorted segments into one encoded stream. When a combiner is given,
/// runs of *byte-equal* keys are folded through it (map-side semantics).
pub fn merge_readers(
    cmp: &KeyCmp,
    readers: Vec<SegmentReader>,
    combiner: Option<&Combiner>,
) -> Result<Vec<u8>> {
    let mut q = MergeQueue::new(cmp.clone(), readers);
    let mut out = Vec::new();
    match combiner {
        None => {
            while let Some((k, v)) = q.pop()? {
                codec::encode_into(&mut out, &k, &v);
            }
        }
        Some(c) => {
            let mut group_key: Option<Bytes> = None;
            let mut group_vals: Vec<Vec<u8>> = Vec::new();
            let flush = |key: &Option<Bytes>, vals: &mut Vec<Vec<u8>>, out: &mut Vec<u8>| {
                if let Some(k) = key {
                    match c(k, vals) {
                        Some(combined) => codec::encode_into(out, k, &combined),
                        None => {
                            for v in vals.iter() {
                                codec::encode_into(out, k, v);
                            }
                        }
                    }
                    vals.clear();
                }
            };
            while let Some((k, v)) = q.pop()? {
                if group_key.as_deref() != Some(&k[..]) {
                    flush(&group_key, &mut group_vals, &mut out);
                    group_key = Some(k);
                }
                group_vals.push(v.to_vec());
            }
            flush(&group_key, &mut group_vals, &mut out);
        }
    }
    Ok(out)
}

/// Merge in-memory segment blobs into a single blob.
pub fn merge_memory_segments(cmp: &KeyCmp, segments: &[Bytes], combiner: Option<&Combiner>) -> Result<Bytes> {
    let readers: Vec<SegmentReader> = segments
        .iter()
        .enumerate()
        .map(|(i, b)| SegmentReader::new(SegmentSource::Memory { id: i as u64 }, b.clone()))
        .collect::<Result<_>>()?;
    Ok(Bytes::from(merge_readers(cmp, readers, combiner)?))
}

/// Merge a set of on-disk segments into one new file; returns its path.
pub fn merge_files_to(
    fs: &dyn LocalFs,
    cmp: &KeyCmp,
    inputs: &[String],
    output_path: &str,
    combiner: Option<&Combiner>,
    delete_inputs: bool,
) -> Result<String> {
    let readers: Vec<SegmentReader> = inputs
        .iter()
        .map(|p| SegmentReader::new(SegmentSource::LocalFile { path: p.clone() }, fs.read(p)?))
        .collect::<Result<_>>()?;
    let merged = merge_readers(cmp, readers, combiner)?;
    fs.write(output_path, Bytes::from(merged))?;
    if delete_inputs {
        for p in inputs {
            fs.delete(p);
        }
    }
    Ok(output_path.to_string())
}

/// Repeatedly merge the smallest `factor` on-disk segments until at most
/// `factor` remain (Hadoop's multi-pass factor merge, driven by
/// `mapreduce.task.io.sort.factor`). Returns the surviving paths and the
/// number of merge rounds performed.
pub fn factor_merge(
    fs: &dyn LocalFs,
    cmp: &KeyCmp,
    mut paths: Vec<String>,
    factor: usize,
    scratch_prefix: &str,
) -> Result<(Vec<String>, usize)> {
    let factor = factor.max(2);
    let mut round = 0;
    while paths.len() > factor {
        // Merge the smallest segments first (Hadoop's heuristic): sort by
        // size descending so we can pop the smallest off the back.
        let mut sized: Vec<(u64, String)> =
            paths.iter().map(|p| Ok((fs.read(p)?.len() as u64, p.clone()))).collect::<Result<_>>()?;
        sized.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let take = factor.min(sized.len() - 1).max(2); // always leave progress room
        let batch: Vec<String> = sized.split_off(sized.len() - take).into_iter().map(|(_, p)| p).collect();
        let out_path = format!("{scratch_prefix}merged-{round}.out");
        merge_files_to(fs, cmp, &batch, &out_path, None, true)?;
        paths = sized.into_iter().map(|(_, p)| p).collect();
        paths.push(out_path);
        round += 1;
    }
    Ok((paths, round))
}

/// Number of merge rounds `factor_merge` will need for `n` segments —
/// used by the simulator's cost model so virtual merge time matches the
/// real engine's pass structure.
pub fn merge_rounds(n: usize, factor: usize) -> usize {
    let factor = factor.max(2);
    let mut n = n;
    let mut rounds = 0;
    while n > factor {
        let take = factor.min(n - 1).max(2);
        n = n - take + 1;
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytewise_cmp;
    use crate::localfs::MemFs;
    use crate::segment::build_segment;
    use std::sync::Arc;

    fn recs(pairs: &[(&str, &str)]) -> Vec<(Vec<u8>, Vec<u8>)> {
        pairs.iter().map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec())).collect()
    }

    fn decode_all(data: &Bytes) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        let mut off = 0;
        while let Some((k, v, next)) = codec::decode_at(data, off).unwrap() {
            out.push((k.to_vec(), v.to_vec()));
            off = next;
        }
        out
    }

    #[test]
    fn memory_merge_without_combiner() {
        let s1 = build_segment(&recs(&[("a", "1"), ("c", "3")]));
        let s2 = build_segment(&recs(&[("b", "2")]));
        let merged = merge_memory_segments(&bytewise_cmp(), &[s1, s2], None).unwrap();
        assert_eq!(decode_all(&merged), recs(&[("a", "1"), ("b", "2"), ("c", "3")]));
    }

    #[test]
    fn combiner_folds_equal_keys() {
        // Values are ASCII digits; the combiner sums them.
        let sum: Combiner = Arc::new(|_k: &[u8], vals: &[Vec<u8>]| {
            let total: u32 = vals.iter().map(|v| String::from_utf8_lossy(v).parse::<u32>().unwrap()).sum();
            Some(total.to_string().into_bytes())
        });
        let s1 = build_segment(&recs(&[("a", "1"), ("b", "5")]));
        let s2 = build_segment(&recs(&[("a", "2"), ("a", "3")]));
        let merged = merge_memory_segments(&bytewise_cmp(), &[s1, s2], Some(&sum)).unwrap();
        assert_eq!(decode_all(&merged), recs(&[("a", "6"), ("b", "5")]));
    }

    #[test]
    fn file_merge_writes_and_optionally_deletes() {
        let fs = MemFs::new();
        fs.write("in1", build_segment(&recs(&[("a", "1")]))).unwrap();
        fs.write("in2", build_segment(&recs(&[("b", "2")]))).unwrap();
        merge_files_to(&fs, &bytewise_cmp(), &["in1".into(), "in2".into()], "out", None, true).unwrap();
        assert!(fs.exists("out"));
        assert!(!fs.exists("in1") && !fs.exists("in2"));
        assert_eq!(decode_all(&fs.read("out").unwrap()), recs(&[("a", "1"), ("b", "2")]));
    }

    #[test]
    fn factor_merge_reduces_count_and_preserves_data() {
        let fs = MemFs::new();
        let mut paths = Vec::new();
        let mut all = Vec::new();
        for i in 0..10 {
            let seg = recs(&[(&format!("k{i:02}"), "v")]);
            let p = format!("seg{i}");
            fs.write(&p, build_segment(&seg)).unwrap();
            paths.push(p);
            all.extend(seg);
        }
        let (out, rounds) = factor_merge(&fs, &bytewise_cmp(), paths, 3, "scratch/").unwrap();
        assert!(out.len() <= 3);
        assert!(rounds > 0);
        // All records survive across the surviving segments.
        let mut survived = Vec::new();
        for p in &out {
            survived.extend(decode_all(&fs.read(p).unwrap()));
        }
        survived.sort();
        all.sort();
        assert_eq!(survived, all);
    }

    #[test]
    fn factor_merge_noop_when_already_small() {
        let fs = MemFs::new();
        fs.write("s", build_segment(&recs(&[("a", "1")]))).unwrap();
        let (out, rounds) = factor_merge(&fs, &bytewise_cmp(), vec!["s".into()], 10, "x/").unwrap();
        assert_eq!(out, vec!["s".to_string()]);
        assert_eq!(rounds, 0);
    }

    #[test]
    fn merge_rounds_model_matches_execution() {
        for n in [0usize, 1, 2, 3, 5, 10, 23, 101, 250] {
            for factor in [2usize, 3, 10, 100] {
                let fs = MemFs::new();
                let mut paths = Vec::new();
                for i in 0..n {
                    let p = format!("s{i}");
                    fs.write(&p, build_segment(&recs(&[(&format!("k{i:03}"), "v")]))).unwrap();
                    paths.push(p);
                }
                let (_, rounds) = factor_merge(&fs, &bytewise_cmp(), paths, factor, "m/").unwrap();
                assert_eq!(rounds, merge_rounds(n, factor), "n={n} factor={factor}");
            }
        }
    }
}
