//! Reduce-side shuffle buffers.
//!
//! A ReduceTask "periodically fetches segments from MOFs on remote nodes.
//! Depending on the segment size and remaining available memory, it
//! determines whether to store it in memory or spill to disks" (§III-A).
//! [`ReduceBuffers`] is that state: in-memory segments under a budget,
//! on-disk segments, and the set of already-fetched MOFs — precisely the
//! fields of the shuffle-stage analytics log record (Fig. 6 left column).
//!
//! [`ReduceBuffers::flush_in_memory`] is the "temporary in-memory merging
//! thread" ALG invokes before logging: it evacuates volatile in-memory
//! segments into one on-disk sorted run so the log's file list captures all
//! shuffled data.

use bytes::Bytes;
use std::collections::BTreeSet;

use crate::error::Result;
use crate::localfs::LocalFs;
use crate::merger;
use crate::segment::{SegmentReader, SegmentSource};
use crate::KeyCmp;

/// Fraction of the memory budget above which a fetched segment bypasses
/// memory and goes straight to disk (Hadoop's `shuffle.memory.limit`).
const DIRECT_TO_DISK_FRACTION: f64 = 0.25;

/// Reduce-side shuffle state for one ReduceTask attempt.
pub struct ReduceBuffers {
    cmp: KeyCmp,
    /// Node-local path prefix, e.g. `"reduce/{attempt}/"`.
    prefix: String,
    mem_budget: u64,
    /// In-memory merge trigger as a fraction of `mem_budget`.
    merge_trigger_fraction: f64,
    in_mem: Vec<(u64, Bytes)>,
    mem_used: u64,
    on_disk: Vec<String>,
    fetched: BTreeSet<u32>,
    next_mem_id: u64,
    next_disk_id: u64,
    shuffled_bytes: u64,
    /// Number of in-memory merges performed (observability).
    mem_merges: u32,
}

impl ReduceBuffers {
    pub fn new(
        cmp: KeyCmp,
        prefix: impl Into<String>,
        mem_budget: u64,
        merge_trigger_fraction: f64,
    ) -> ReduceBuffers {
        ReduceBuffers {
            cmp,
            prefix: prefix.into(),
            mem_budget: mem_budget.max(1),
            merge_trigger_fraction: merge_trigger_fraction.clamp(0.05, 1.0),
            in_mem: Vec::new(),
            mem_used: 0,
            on_disk: Vec::new(),
            fetched: BTreeSet::new(),
            next_mem_id: 0,
            next_disk_id: 0,
            shuffled_bytes: 0,
            mem_merges: 0,
        }
    }

    /// Reconstruct shuffle state from a logged snapshot (ALG recovery):
    /// the fetched-MOF set plus the on-disk segment paths. In-memory
    /// segments don't appear — ALG flushed them before logging.
    pub fn restore(
        cmp: KeyCmp,
        prefix: impl Into<String>,
        mem_budget: u64,
        merge_trigger_fraction: f64,
        fetched: BTreeSet<u32>,
        on_disk: Vec<String>,
        shuffled_bytes: u64,
    ) -> ReduceBuffers {
        // Continue disk numbering past any restored path to avoid clashes.
        let next_disk_id = on_disk
            .iter()
            .filter_map(|p| p.rsplit('-').next()?.strip_suffix(".out")?.parse::<u64>().ok())
            .max()
            .map_or(0, |m| m + 1);
        let mut b = ReduceBuffers::new(cmp, prefix, mem_budget, merge_trigger_fraction);
        b.fetched = fetched;
        b.on_disk = on_disk;
        b.next_disk_id = next_disk_id;
        b.shuffled_bytes = shuffled_bytes;
        b
    }

    /// Ingest one fetched partition. Large segments go straight to disk;
    /// small ones are buffered in memory, triggering an in-memory merge
    /// flush when the budget threshold is crossed.
    pub fn ingest(&mut self, fs: &dyn LocalFs, map_index: u32, data: Bytes) -> Result<()> {
        debug_assert!(!self.fetched.contains(&map_index), "MOF {map_index} ingested twice");
        self.fetched.insert(map_index);
        self.shuffled_bytes += data.len() as u64;
        if data.is_empty() {
            return Ok(());
        }
        if data.len() as u64 > (self.mem_budget as f64 * DIRECT_TO_DISK_FRACTION) as u64 {
            let path = self.next_disk_path();
            fs.write(&path, data)?;
            self.on_disk.push(path);
            return Ok(());
        }
        self.mem_used += data.len() as u64;
        let id = self.next_mem_id;
        self.next_mem_id += 1;
        self.in_mem.push((id, data));
        if self.mem_used as f64 >= self.mem_budget as f64 * self.merge_trigger_fraction {
            self.flush_in_memory(fs)?;
        }
        Ok(())
    }

    fn next_disk_path(&mut self) -> String {
        let p = format!("{}seg-{}.out", self.prefix, self.next_disk_id);
        self.next_disk_id += 1;
        p
    }

    /// Merge every in-memory segment into one new on-disk sorted run.
    /// Returns the new path, or `None` if memory was empty. This is both
    /// the background in-memory merger and ALG's pre-log flush.
    pub fn flush_in_memory(&mut self, fs: &dyn LocalFs) -> Result<Option<String>> {
        if self.in_mem.is_empty() {
            return Ok(None);
        }
        let blobs: Vec<Bytes> = self.in_mem.drain(..).map(|(_, b)| b).collect();
        self.mem_used = 0;
        let merged = merger::merge_memory_segments(&self.cmp, &blobs, None)?;
        let path = self.next_disk_path();
        fs.write(&path, merged)?;
        self.on_disk.push(path.clone());
        self.mem_merges += 1;
        Ok(Some(path))
    }

    pub fn fetched(&self) -> &BTreeSet<u32> {
        &self.fetched
    }

    pub fn has_fetched(&self, map_index: u32) -> bool {
        self.fetched.contains(&map_index)
    }

    pub fn on_disk_paths(&self) -> &[String] {
        &self.on_disk
    }

    pub fn in_mem_segments(&self) -> usize {
        self.in_mem.len()
    }

    pub fn mem_used(&self) -> u64 {
        self.mem_used
    }

    pub fn shuffled_bytes(&self) -> u64 {
        self.shuffled_bytes
    }

    pub fn mem_merges(&self) -> u32 {
        self.mem_merges
    }

    /// End of shuffle: factor-merge the on-disk segments down to
    /// `io.sort.factor` and return readers for the final MPQ (remaining
    /// in-memory segments join as memory readers — Hadoop's memory-to-
    /// reduce path).
    pub fn finalize(mut self, fs: &dyn LocalFs, factor: usize) -> Result<Vec<SegmentReader>> {
        let (disk_paths, _rounds) = merger::factor_merge(
            fs,
            &self.cmp,
            std::mem::take(&mut self.on_disk),
            factor.max(2),
            &format!("{}final-", self.prefix),
        )?;
        let mut readers = Vec::with_capacity(disk_paths.len() + self.in_mem.len());
        for p in disk_paths {
            readers.push(SegmentReader::new(SegmentSource::LocalFile { path: p.clone() }, fs.read(&p)?)?);
        }
        for (id, data) in self.in_mem.drain(..) {
            readers.push(SegmentReader::new(SegmentSource::Memory { id }, data)?);
        }
        Ok(readers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytewise_cmp;
    use crate::localfs::MemFs;
    use crate::mpq::MergeQueue;
    use crate::segment::build_segment;
    use proptest::prelude::*;

    fn seg(keys: &[&str]) -> Bytes {
        build_segment(&keys.iter().map(|k| (k.as_bytes().to_vec(), b"v".to_vec())).collect::<Vec<_>>())
    }

    #[test]
    fn small_segments_stay_in_memory() {
        let fs = MemFs::new();
        let mut b = ReduceBuffers::new(bytewise_cmp(), "r/", 10_000, 0.9);
        b.ingest(&fs, 0, seg(&["a"])).unwrap();
        b.ingest(&fs, 1, seg(&["b"])).unwrap();
        assert_eq!(b.in_mem_segments(), 2);
        assert!(b.on_disk_paths().is_empty());
        assert!(b.has_fetched(0) && b.has_fetched(1) && !b.has_fetched(2));
    }

    #[test]
    fn oversized_segment_goes_to_disk() {
        let fs = MemFs::new();
        let mut b = ReduceBuffers::new(bytewise_cmp(), "r/", 100, 0.9);
        let big = seg(&["abcdefghijklmnopqrstuvwxyz", "b", "c"]); // > 25 bytes
        b.ingest(&fs, 0, big).unwrap();
        assert_eq!(b.in_mem_segments(), 0);
        assert_eq!(b.on_disk_paths().len(), 1);
    }

    #[test]
    fn budget_pressure_triggers_memory_merge() {
        let fs = MemFs::new();
        let mut b = ReduceBuffers::new(bytewise_cmp(), "r/", 400, 0.5);
        for i in 0..10 {
            // 29 wire bytes per segment; ten of them cross the 200-byte
            // merge trigger without hitting the direct-to-disk size (100).
            b.ingest(&fs, i, seg(&[&format!("key-{i:016}")])).unwrap();
        }
        assert!(b.mem_merges() > 0, "in-memory merge should have triggered");
        assert!(b.mem_used() < 400);
    }

    #[test]
    fn flush_then_restore_loses_nothing() {
        let fs = MemFs::new();
        let mut b = ReduceBuffers::new(bytewise_cmp(), "r/", 10_000, 0.99);
        b.ingest(&fs, 0, seg(&["c"])).unwrap();
        b.ingest(&fs, 1, seg(&["a"])).unwrap();
        b.flush_in_memory(&fs).unwrap();
        let snapshot_fetched = b.fetched().clone();
        let snapshot_disk = b.on_disk_paths().to_vec();
        let shuffled = b.shuffled_bytes();
        drop(b);

        let restored = ReduceBuffers::restore(
            bytewise_cmp(),
            "r/",
            10_000,
            0.99,
            snapshot_fetched,
            snapshot_disk,
            shuffled,
        );
        assert!(restored.has_fetched(0) && restored.has_fetched(1));
        let readers = restored.finalize(&fs, 10).unwrap();
        let mut q = MergeQueue::new(bytewise_cmp(), readers);
        let keys: Vec<Vec<u8>> = q.drain().unwrap().into_iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(keys, vec![b"a".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn restore_continues_disk_numbering() {
        let fs = MemFs::new();
        let mut b = ReduceBuffers::restore(
            bytewise_cmp(),
            "r/",
            100,
            0.9,
            BTreeSet::new(),
            vec!["r/seg-7.out".into()],
            0,
        );
        let big = seg(&["abcdefghijklmnopqrstuvwxyz0123456789"]);
        b.ingest(&fs, 3, big).unwrap();
        assert_eq!(b.on_disk_paths()[1], "r/seg-8.out");
    }

    proptest! {
        /// However ingestion interleaves memory/disk/merges, finalize
        /// yields the exact multiset of ingested records in merged order.
        #[test]
        fn no_record_lost(
            parts in proptest::collection::vec(proptest::collection::vec(proptest::collection::vec(b'a'..=b'z', 1..5), 0..20), 1..12),
            budget in 64u64..2048,
            trigger in 0.1f64..1.0,
        ) {
            let fs = MemFs::new();
            let mut b = ReduceBuffers::new(bytewise_cmp(), "r/", budget, trigger);
            let mut expected: Vec<Vec<u8>> = Vec::new();
            for (i, keys) in parts.iter().enumerate() {
                let mut sorted = keys.clone();
                sorted.sort();
                expected.extend(sorted.iter().cloned());
                let records: Vec<(Vec<u8>, Vec<u8>)> = sorted.iter().map(|k| (k.clone(), b"v".to_vec())).collect();
                b.ingest(&fs, i as u32, build_segment(&records)).unwrap();
            }
            expected.sort();
            let readers = b.finalize(&fs, 3).unwrap();
            let mut q = MergeQueue::new(bytewise_cmp(), readers);
            let got: Vec<Vec<u8>> = q.drain().unwrap().into_iter().map(|(k, _)| k.to_vec()).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
