//! Ranked root-cause triage over campaign outcomes.
//!
//! A fault sweep produces hundreds of [`ScenarioOutcome`]s; nobody reads
//! them row by row. This module reduces them the way an on-call engineer
//! would: classify every run by its *failure signature* (an ordered rule
//! chain from "job never finished" down to "gray link absorbed"), group
//! identical signatures, and rank the groups by severity and blast
//! radius. Each category carries a remediation — the knob or recovery
//! mode the paper's design says addresses that signature — so the report
//! reads as a prioritised to-do list, not a histogram.
//!
//! Classification is *first match wins* over [`RULES`]: a stuck job is
//! "job-stuck" even if it also shows amplification, because the most
//! severe symptom is the one to chase first.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::analyze::ScenarioOutcome;

/// Triage severity, ordered so `Critical` sorts above `Info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    Info,
    Low,
    Medium,
    High,
    Critical,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Critical => "critical",
            Severity::High => "high",
            Severity::Medium => "medium",
            Severity::Low => "low",
            Severity::Info => "info",
        })
    }
}

/// One classification rule: the first rule whose `matches` accepts an
/// outcome names its signature.
struct Rule {
    category: &'static str,
    severity: Severity,
    remediation: &'static str,
    matches: fn(&ScenarioOutcome) -> bool,
}

/// The ordered rule chain, most severe symptom first. Every outcome
/// matches exactly one rule (the last rule accepts everything).
const RULES: &[Rule] = &[
    Rule {
        category: "job-stuck",
        severity: Severity::Critical,
        remediation: "job never completed: inspect retry budget (FetchFailureLimit) and node-liveness \
                      settings; reproduce under the differential validator to localise the engine",
        matches: |o| !o.succeeded,
    },
    Rule {
        category: "output-divergence",
        severity: Severity::Critical,
        remediation: "committed output failed oracle verification or lost partitions: audit DFS \
                      replica placement and the commit path; run with dfs-verified-read invariant",
        matches: |o| o.output_verified == Some(false),
    },
    Rule {
        category: "amplified-node-loss",
        severity: Severity::High,
        remediation: "a node loss infected healthy reducers through FetchFailureLimit: enable SFM \
                      (shuffle-failure migration) so sources migrate instead of preempting fetchers",
        matches: |o| o.node_loss_failures > 0 && o.spatial_amplification > 0,
    },
    Rule {
        category: "fetch-failure-amplification",
        severity: Severity::High,
        remediation: "healthy reducers were preempted via FetchFailureLimit with no node lost: \
                      enable SFM, and check fetch backoff stays under half the liveness window",
        matches: |o| o.spatial_amplification > 0,
    },
    Rule {
        category: "repeated-task-failure",
        severity: Severity::Medium,
        remediation: "one task failed repeatedly (temporal amplification): enable ALG so reduce \
                      recovery migrates logged state instead of re-running from scratch",
        matches: |o| o.temporal_amplification >= 2,
    },
    Rule {
        category: "node-loss-contained",
        severity: Severity::Medium,
        remediation: "node loss recovered without spreading: expected cost; compare Alg vs Baseline \
                      duration to confirm analytics logging bounded the re-execution",
        matches: |o| o.node_loss_failures > 0,
    },
    Rule {
        category: "storage-rot-unrepaired",
        severity: Severity::High,
        remediation: "corrupt DFS replicas survived the repair pass: check re-replication sources \
                      and replica placement breadth; rot must never outlive repair()",
        matches: |o| o.dfs_corrupt_replicas > 0,
    },
    Rule {
        category: "storage-rot-repaired",
        severity: Severity::Low,
        remediation: "rotten replicas were detected by verified reads and re-replicated: expected; \
                      monitor repair bytes for replication-traffic budgets",
        matches: |o| o.dfs_read_failovers > 0 || o.dfs_repair_bytes > 0,
    },
    Rule {
        category: "task-failure-recovered",
        severity: Severity::Low,
        remediation: "injected task/node failures recovered without amplification: expected; track \
                      FCM attempts against the recovery-latency budget",
        matches: |o| o.total_failures > 0,
    },
    Rule {
        category: "shuffle-corruption-absorbed",
        severity: Severity::Low,
        remediation: "checksummed fetches caught corrupt chunks and re-fetched transparently: \
                      expected; refetch count bounds the corruption exposure",
        matches: |o| o.corruption_refetches > 0,
    },
    Rule {
        category: "gray-link-absorbed",
        severity: Severity::Low,
        remediation: "degraded-link drops were re-fetched without charging the retry budget: \
                      expected; rising drop counts flag a link for replacement",
        matches: |o| o.degraded_drops > 0,
    },
    Rule {
        category: "healthy",
        severity: Severity::Info,
        remediation: "no action required",
        matches: |_| true,
    },
];

/// Classify one outcome: first matching rule wins.
pub fn classify(o: &ScenarioOutcome) -> (&'static str, Severity, &'static str) {
    let rule = RULES.iter().find(|r| (r.matches)(o)).expect("the final triage rule accepts every outcome");
    (rule.category, rule.severity, rule.remediation)
}

/// One signature group: every run that classified into `category`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageGroup {
    pub category: String,
    pub severity: Severity,
    /// Runs (scenario × engine × mode) in this group.
    pub count: usize,
    /// Distinct scenarios represented.
    pub distinct_scenarios: usize,
    /// Up to three example scenario names, lexicographically first.
    pub examples: Vec<String>,
    /// Worst spatial amplification seen in the group.
    pub max_spatial: usize,
    /// Worst temporal amplification seen in the group.
    pub max_temporal: usize,
    pub remediation: String,
}

/// Ranked triage over a set of outcomes: groups sorted by severity, then
/// blast radius (run count), then name for determinism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageReport {
    /// Total runs triaged.
    pub runs: usize,
    pub groups: Vec<TriageGroup>,
}

/// Group `outcomes` by failure signature and rank the groups.
pub fn triage(outcomes: &[ScenarioOutcome]) -> TriageReport {
    let mut by_cat: BTreeMap<&'static str, (Severity, &'static str, Vec<&ScenarioOutcome>)> = BTreeMap::new();
    for o in outcomes {
        let (cat, sev, fix) = classify(o);
        by_cat.entry(cat).or_insert((sev, fix, Vec::new())).2.push(o);
    }
    let mut groups: Vec<TriageGroup> = by_cat
        .into_iter()
        .map(|(cat, (sev, fix, runs))| {
            let mut scenarios: Vec<&str> = runs.iter().map(|o| o.scenario.as_str()).collect();
            scenarios.sort_unstable();
            scenarios.dedup();
            TriageGroup {
                category: cat.to_string(),
                severity: sev,
                count: runs.len(),
                distinct_scenarios: scenarios.len(),
                examples: scenarios.iter().take(3).map(|s| s.to_string()).collect(),
                max_spatial: runs.iter().map(|o| o.spatial_amplification).max().unwrap_or(0),
                max_temporal: runs.iter().map(|o| o.temporal_amplification).max().unwrap_or(0),
                remediation: fix.to_string(),
            }
        })
        .collect();
    groups.sort_by(|a, b| {
        b.severity.cmp(&a.severity).then(b.count.cmp(&a.count)).then(a.category.cmp(&b.category))
    });
    TriageReport { runs: outcomes.len(), groups }
}

impl TriageReport {
    /// Categories at or above `floor` severity.
    pub fn at_least(&self, floor: Severity) -> impl Iterator<Item = &TriageGroup> {
        self.groups.iter().filter(move |g| g.severity >= floor)
    }

    pub fn render_markdown(&self) -> String {
        let mut out = format!("## Root-cause triage ({} runs)\n\n", self.runs);
        out.push_str(
            "| rank | severity | category | runs | scenarios | max spatial | max temporal | remediation |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} (e.g. {}) | {} | {} | {} |\n",
                i + 1,
                g.severity,
                g.category,
                g.count,
                g.distinct_scenarios,
                g.examples.join(", "),
                g.max_spatial,
                g.max_temporal,
                g.remediation
            ));
        }
        out
    }

    pub fn render_text(&self) -> String {
        let mut out = format!("root-cause triage over {} runs\n", self.runs);
        for (i, g) in self.groups.iter().enumerate() {
            out.push_str(&format!(
                "  #{} [{}] {} — {} runs over {} scenarios (spatial ≤{}, temporal ≤{})\n      fix: {}\n",
                i + 1,
                g.severity,
                g.category,
                g.count,
                g.distinct_scenarios,
                g.max_spatial,
                g.max_temporal,
                g.remediation
            ));
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("triage report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::EngineKind;
    use alm_types::RecoveryMode;

    fn outcome(scenario: &str) -> ScenarioOutcome {
        ScenarioOutcome {
            scenario: scenario.into(),
            engine: EngineKind::Simulator,
            mode: RecoveryMode::Baseline,
            succeeded: true,
            duration_secs: 100.0,
            injected_faults: 1,
            total_failures: 0,
            spatial_amplification: 0,
            temporal_amplification: 0,
            fcm_attempts: 0,
            map_attempts: 5,
            node_loss_failures: 0,
            corruption_refetches: 0,
            degraded_drops: 0,
            recoveries_bounded: None,
            output_verified: None,
            partitions_committed: None,
            dfs_read_failovers: 0,
            dfs_repair_bytes: 0,
            dfs_corrupt_replicas: 0,
            chain_iteration: 0,
            resident_hits: 0,
        }
    }

    #[test]
    fn classification_is_first_match_and_total() {
        let healthy = outcome("h");
        assert_eq!(classify(&healthy).0, "healthy");

        let mut stuck = outcome("s");
        stuck.succeeded = false;
        stuck.spatial_amplification = 3; // the graver symptom wins
        assert_eq!(classify(&stuck).0, "job-stuck");
        assert_eq!(classify(&stuck).1, Severity::Critical);

        let mut amp = outcome("a");
        amp.node_loss_failures = 1;
        amp.spatial_amplification = 2;
        amp.total_failures = 3;
        assert_eq!(classify(&amp).0, "amplified-node-loss");

        let mut spatial = outcome("sp");
        spatial.spatial_amplification = 1;
        spatial.total_failures = 1;
        assert_eq!(classify(&spatial).0, "fetch-failure-amplification");

        let mut gray = outcome("g");
        gray.degraded_drops = 4;
        assert_eq!(classify(&gray).0, "gray-link-absorbed");
        assert_eq!(classify(&gray).1, Severity::Low);

        let mut rot = outcome("r");
        rot.dfs_corrupt_replicas = 1;
        assert_eq!(classify(&rot).0, "storage-rot-unrepaired");
        assert_eq!(classify(&rot).1, Severity::High);
    }

    #[test]
    fn every_rule_has_nonempty_distinct_category_and_remediation() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(!r.category.is_empty());
            assert!(!r.remediation.trim().is_empty(), "{} has no remediation", r.category);
            assert!(seen.insert(r.category), "duplicate category {}", r.category);
        }
    }

    #[test]
    fn groups_rank_by_severity_then_blast_radius() {
        let mut outcomes = Vec::new();
        for i in 0..5 {
            let mut o = outcome(&format!("gray-{i}"));
            o.degraded_drops = 1;
            outcomes.push(o);
        }
        let mut stuck = outcome("stuck-1");
        stuck.succeeded = false;
        outcomes.push(stuck);
        let mut amp = outcome("amp-1");
        amp.spatial_amplification = 2;
        outcomes.push(amp);
        outcomes.push(outcome("clean"));

        let report = triage(&outcomes);
        assert_eq!(report.runs, 8);
        let cats: Vec<&str> = report.groups.iter().map(|g| g.category.as_str()).collect();
        assert_eq!(cats, vec!["job-stuck", "fetch-failure-amplification", "gray-link-absorbed", "healthy"]);
        assert_eq!(report.groups[2].count, 5);
        assert_eq!(report.groups[2].distinct_scenarios, 5);
        assert_eq!(report.groups[2].examples.len(), 3);
        assert!(report.at_least(Severity::High).count() == 2);

        let md = report.render_markdown();
        assert!(md.contains("| 1 | critical | job-stuck |"), "{md}");
        let back: TriageReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }
}
