//! Declarative fault-campaign scenarios.
//!
//! A [`ChaosScenario`] names a set of [`ChaosFault`]s in *engine-neutral,
//! job-neutral* terms: tasks by kind + index (no [`JobId`] yet), nodes by
//! worker index, racks by rack index, times in **scenario seconds**. One
//! lowering pass ([`ChaosScenario::lower`]) binds a job id, expands
//! correlated rack crashes into their member-node crashes, and rescales
//! scenario seconds to engine-native milliseconds — producing the shared
//! [`FaultPlan`] both engines consume (the simulator via
//! `alm_sim::SimFault::lower_plan`, the threaded runtime directly).

use alm_types::{CorruptTarget, Fault, FaultPlan, FlapSchedule, JobId, LinkDirection, NodeId, TaskId};
use serde::{Deserialize, Serialize};

/// A flapping-link schedule in scenario seconds: `cycles` bounded
/// sever→heal windows starting `period_secs` apart, each staying down a
/// seeded, jittered fraction of `down_secs`. Lowered to the engine-neutral
/// [`FlapSchedule`] (milliseconds) by [`ChaosScenario::lower`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosFlap {
    pub seed: u64,
    pub cycles: u32,
    pub period_secs: f64,
    pub down_secs: f64,
}

/// One declarative fault. Times are in scenario seconds; the lowering
/// profile decides what a scenario second means to each engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosFault {
    /// Injected OOM in attempt 0 of a map task at a fraction of its input.
    KillMap { index: u32, at_progress: f64 },
    /// Injected OOM in attempt 0 of a reduce task at a fraction of its
    /// overall progress (the Fig. 2/8 scenario).
    KillReduce { index: u32, at_progress: f64 },
    /// Crash one worker node at an absolute scenario time.
    CrashNode { node: u32, at_secs: f64 },
    /// Crash one worker node once a reduce task reaches a progress
    /// fraction (how §V places node failures; needs no time rescaling).
    CrashNodeAtReduceProgress { node: u32, reduce_index: u32, at_progress: f64 },
    /// Degrade a node's compute speed by `factor` (>= 1) from a scenario
    /// time on. The node keeps heartbeating: faulty-but-alive (§IV-B).
    SlowNode { node: u32, at_secs: f64, factor: f64 },
    /// Correlated failure: crash *every* worker in the rack at once.
    /// Expanded at lowering time using the shared `worker % racks`
    /// placement both engines inherit from `Topology::even`.
    CrashRack { rack: u32, at_secs: f64 },
    /// Sever the data-plane link between two *alive, heartbeating* workers
    /// from one scenario time until another, in the given direction(s). The
    /// transient half of §II-C: a partition that heals inside the liveness
    /// window must not be mistaken for node loss by either engine. An
    /// asymmetric direction leaves the reverse path (and heartbeats)
    /// healthy; a `flap` schedule replaces the single window with bounded
    /// sever→heal cycles (`heal_secs` is then advisory — the schedule's
    /// final heal wins).
    PartitionLink {
        a: u32,
        b: u32,
        direction: LinkDirection,
        from_secs: f64,
        heal_secs: f64,
        flap: Option<ChaosFlap>,
    },
    /// Gray-degrade the link between two alive workers: fetch transfers
    /// crossing a degraded direction are stretched by `factor` and dropped
    /// (then transparently re-fetched, never charged to the retry budget)
    /// with probability `loss`. The canonical gray failure: slow and lossy,
    /// but never dead.
    DegradedLink {
        a: u32,
        b: u32,
        direction: LinkDirection,
        from_secs: f64,
        heal_secs: f64,
        factor: f64,
        loss: f64,
    },
    /// Rot one durable artifact (a MOF partition chunk or an analytics-log
    /// record) on a node at a scenario time. Arrival checksums catch it;
    /// recovery must stay bounded and never burn retry budget.
    CorruptData { node: u32, target: CorruptTarget, at_secs: f64 },
}

impl ChaosFault {
    /// Whether this fault is expected to surface as at least one recorded
    /// task failure. Slow nodes only degrade, and the transient faults
    /// (healing partitions, checksummed corruption) are precisely the ones
    /// recovery must absorb *without* a failure record — none of the three
    /// count toward the amplification denominator.
    pub fn produces_failures(&self) -> bool {
        !matches!(
            self,
            ChaosFault::SlowNode { .. }
                | ChaosFault::PartitionLink { .. }
                | ChaosFault::DegradedLink { .. }
                | ChaosFault::CorruptData { .. }
        )
    }
}

/// How a scenario maps onto one engine's cluster and clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoweringProfile {
    /// Worker count (simulator: `ClusterSpec::worker_nodes()`; threaded
    /// runtime: the `MiniCluster` node count — every node hosts tasks).
    pub workers: u32,
    pub racks: u32,
    /// Engine-native milliseconds one scenario second lowers to. The
    /// simulator runs at paper scale, so a scenario second *is* a virtual
    /// second (1000). The test-scaled threaded runtime finishes whole jobs
    /// in hundreds of wall milliseconds, so a scenario second shrinks to a
    /// few real milliseconds.
    pub ms_per_scenario_sec: f64,
}

impl LoweringProfile {
    /// Profile for the discrete-event simulator.
    pub fn simulator(cluster: &alm_types::ClusterSpec) -> LoweringProfile {
        LoweringProfile { workers: cluster.worker_nodes(), racks: cluster.racks, ms_per_scenario_sec: 1000.0 }
    }

    /// Profile for a test-scaled threaded runtime cluster of `nodes`
    /// nodes: one scenario second compresses to `ms_per_scenario_sec`
    /// real milliseconds.
    pub fn runtime(nodes: u32, racks: u32, ms_per_scenario_sec: f64) -> LoweringProfile {
        LoweringProfile { workers: nodes, racks, ms_per_scenario_sec }
    }

    /// Workers in a rack, under the shared `worker % racks` placement.
    pub fn rack_members(&self, rack: u32) -> Vec<u32> {
        let racks = self.racks.max(1);
        (0..self.workers).filter(|w| w % racks == rack % racks).collect()
    }

    fn to_ms(self, secs: f64) -> u64 {
        (secs * self.ms_per_scenario_sec).round().max(0.0) as u64
    }
}

/// A named, self-contained fault campaign scenario (serde round-trippable,
/// so campaigns can be written as JSON and replayed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosScenario {
    pub name: String,
    pub faults: Vec<ChaosFault>,
}

impl ChaosScenario {
    pub fn new(name: impl Into<String>) -> ChaosScenario {
        ChaosScenario { name: name.into(), faults: Vec::new() }
    }

    pub fn with(mut self, fault: ChaosFault) -> ChaosScenario {
        self.faults.push(fault);
        self
    }

    /// Faults expected to surface as recorded task failures under
    /// `profile` — the denominator for "additional failures" in
    /// amplification analysis. Counted on the *lowered* plan so that a
    /// correlated rack crash contributes one injected fault per member
    /// node it expands to (and overlapping crash targets, deduplicated at
    /// lowering, are not double-counted): a rack scenario and a node
    /// scenario with the same blast radius get the same denominator.
    pub fn injected_failure_faults(&self, profile: &LoweringProfile) -> usize {
        self.lower(JobId(0), profile).injected_count()
    }

    /// Reduce indices this scenario kills *directly* (by task kill); node
    /// crashes infect further tasks only through the engines' dynamics.
    pub fn directly_killed_reduces(&self) -> Vec<u32> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                ChaosFault::KillReduce { index, .. } => Some(*index),
                _ => None,
            })
            .collect()
    }

    /// Lower onto the shared [`FaultPlan`]: bind `job`, expand rack
    /// crashes, rescale scenario seconds via `profile`. Node/rack indices
    /// are clamped into the profile's worker range so randomly sampled
    /// scenarios stay valid on any cluster size. Timed crash targets are
    /// deduplicated on `(node, at_ms)`: overlapping rack crashes (two rack
    /// indices congruent modulo the profile's rack count) or an explicit
    /// node crash coinciding with a rack member would otherwise inject the
    /// same crash twice and skew the amplification denominator.
    pub fn lower(&self, job: JobId, profile: &LoweringProfile) -> FaultPlan {
        let workers = profile.workers.max(1);
        let node = |n: u32| NodeId(n % workers);
        let mut seen_crashes = std::collections::BTreeSet::new();
        let mut plan = FaultPlan::none();
        let mut crash = |plan: &mut FaultPlan, node: NodeId, at_ms: u64| {
            if seen_crashes.insert((node, at_ms)) {
                plan.faults.push(Fault::CrashNodeAtMs { node, at_ms });
            }
        };
        for f in &self.faults {
            match f {
                ChaosFault::KillMap { index, at_progress } => plan.faults.push(Fault::KillTask {
                    task: TaskId::map(job, *index),
                    attempt_number: 0,
                    at_progress: *at_progress,
                }),
                ChaosFault::KillReduce { index, at_progress } => plan.faults.push(Fault::KillTask {
                    task: TaskId::reduce(job, *index),
                    attempt_number: 0,
                    at_progress: *at_progress,
                }),
                ChaosFault::CrashNode { node: n, at_secs } => {
                    crash(&mut plan, node(*n), profile.to_ms(*at_secs));
                }
                ChaosFault::CrashNodeAtReduceProgress { node: n, reduce_index, at_progress } => {
                    plan.faults.push(Fault::CrashNodeAtReduceProgress {
                        node: node(*n),
                        reduce_index: *reduce_index,
                        at_progress: *at_progress,
                    })
                }
                ChaosFault::SlowNode { node: n, at_secs, factor } => plan.faults.push(Fault::SlowNode {
                    node: node(*n),
                    at_ms: profile.to_ms(*at_secs),
                    factor: *factor,
                }),
                ChaosFault::CrashRack { rack, at_secs } => {
                    for w in profile.rack_members(*rack) {
                        crash(&mut plan, NodeId(w), profile.to_ms(*at_secs));
                    }
                }
                ChaosFault::PartitionLink { a, b, direction, from_secs, heal_secs, flap } => {
                    let from_ms = profile.to_ms(*from_secs);
                    let flap = flap.map(|f| FlapSchedule {
                        seed: f.seed,
                        cycles: f.cycles,
                        period_ms: profile.to_ms(f.period_secs).max(2),
                        down_ms: profile.to_ms(f.down_secs).max(1),
                    });
                    plan.faults.push(Fault::PartitionLink {
                        a: node(*a),
                        b: node(*b),
                        direction: *direction,
                        from_ms,
                        // A heal can never precede its sever, even if
                        // rounding to engine milliseconds collapses them;
                        // with a flap schedule the final cycle's heal wins.
                        heal_ms: match &flap {
                            Some(f) => f.end_ms(from_ms),
                            None => profile.to_ms(*heal_secs).max(from_ms),
                        },
                        flap,
                    });
                }
                ChaosFault::DegradedLink { a, b, direction, from_secs, heal_secs, factor, loss } => {
                    let from_ms = profile.to_ms(*from_secs);
                    plan.faults.push(Fault::DegradedLink {
                        a: node(*a),
                        b: node(*b),
                        direction: *direction,
                        from_ms,
                        heal_ms: profile.to_ms(*heal_secs).max(from_ms),
                        factor: factor.max(1.0),
                        loss: loss.clamp(0.0, 1.0),
                    });
                }
                ChaosFault::CorruptData { node: n, target, at_secs } => {
                    plan.faults.push(Fault::CorruptData {
                        node: node(*n),
                        target: *target,
                        at_ms: profile.to_ms(*at_secs),
                    });
                }
            }
        }
        plan
    }

    /// Validate the scenario's link faults under `profile`: for every
    /// directed link touched by at least one *flapping* partition, the
    /// lowered sever→heal windows must not overlap — an overlap would let
    /// one window's heal erase another's cut, silently shortening the
    /// outage both engines think they injected.
    pub fn validate(&self, profile: &LoweringProfile) -> Result<(), String> {
        let plan = self.lower(JobId(0), profile);
        let mut flapping: std::collections::BTreeSet<(NodeId, NodeId)> = std::collections::BTreeSet::new();
        for f in &plan.faults {
            if let Fault::PartitionLink { a, b, direction, flap: Some(_), .. } = f {
                flapping.extend(direction.directed_keys(*a, *b));
            }
        }
        let mut by_link: std::collections::BTreeMap<(NodeId, NodeId), Vec<(u64, u64)>> = Default::default();
        for w in plan.partition_windows() {
            for key in w.direction.directed_keys(w.a, w.b) {
                if flapping.contains(&key) {
                    by_link.entry(key).or_default().push((w.from_ms, w.heal_ms));
                }
            }
        }
        for ((from, to), mut windows) in by_link {
            windows.sort_unstable();
            for pair in windows.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(format!(
                        "scenario '{}': flap windows on link {from} → {to} overlap \
                         ([{}, {}] ms vs [{}, {}] ms)",
                        self.name, pair[0].0, pair[0].1, pair[1].0, pair[1].1
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> LoweringProfile {
        LoweringProfile { workers: 6, racks: 2, ms_per_scenario_sec: 1000.0 }
    }

    #[test]
    fn rack_membership_follows_modulo_placement() {
        let p = profile();
        assert_eq!(p.rack_members(0), vec![0, 2, 4]);
        assert_eq!(p.rack_members(1), vec![1, 3, 5]);
    }

    #[test]
    fn rack_crash_expands_to_member_nodes() {
        let s = ChaosScenario::new("rack-loss").with(ChaosFault::CrashRack { rack: 1, at_secs: 30.0 });
        let plan = s.lower(JobId(7), &profile());
        let crashed: Vec<(u32, u64)> = plan
            .faults
            .iter()
            .map(|f| match f {
                Fault::CrashNodeAtMs { node, at_ms } => (node.0, *at_ms),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(crashed, vec![(1, 30_000), (3, 30_000), (5, 30_000)]);
    }

    #[test]
    fn scenario_seconds_rescale_per_engine() {
        let s = ChaosScenario::new("crash").with(ChaosFault::CrashNode { node: 2, at_secs: 30.0 });
        let sim = s.lower(JobId(0), &profile());
        let rt = s.lower(JobId(0), &LoweringProfile::runtime(6, 2, 5.0));
        assert_eq!(sim.faults, vec![Fault::CrashNodeAtMs { node: NodeId(2), at_ms: 30_000 }]);
        assert_eq!(rt.faults, vec![Fault::CrashNodeAtMs { node: NodeId(2), at_ms: 150 }]);
    }

    #[test]
    fn node_indices_clamp_into_worker_range() {
        let s = ChaosScenario::new("oob").with(ChaosFault::CrashNode { node: 13, at_secs: 1.0 });
        let plan = s.lower(JobId(0), &profile());
        assert_eq!(plan.faults, vec![Fault::CrashNodeAtMs { node: NodeId(1), at_ms: 1000 }]);
    }

    #[test]
    fn kills_bind_the_job_id_and_count_as_injected() {
        let s = ChaosScenario::new("kills")
            .with(ChaosFault::KillReduce { index: 3, at_progress: 0.8 })
            .with(ChaosFault::KillMap { index: 1, at_progress: 0.5 })
            .with(ChaosFault::SlowNode { node: 0, at_secs: 0.0, factor: 4.0 });
        assert_eq!(s.injected_failure_faults(&profile()), 2);
        assert_eq!(s.directly_killed_reduces(), vec![3]);
        let plan = s.lower(JobId(9), &profile());
        assert_eq!(plan.kill_point(TaskId::reduce(JobId(9), 3), 0), Some(0.8));
        assert_eq!(plan.kill_point(TaskId::map(JobId(9), 1), 0), Some(0.5));
        assert_eq!(plan.slow_nodes().count(), 1);
    }

    #[test]
    fn overlapping_rack_crashes_dedupe_at_lowering() {
        // rack 2 clamps onto rack 0 on a 2-rack profile: both faults name
        // the same member set and must inject each crash exactly once.
        let s = ChaosScenario::new("overlap")
            .with(ChaosFault::CrashRack { rack: 0, at_secs: 10.0 })
            .with(ChaosFault::CrashRack { rack: 2, at_secs: 10.0 });
        let plan = s.lower(JobId(0), &profile());
        assert_eq!(
            plan.faults,
            vec![
                Fault::CrashNodeAtMs { node: NodeId(0), at_ms: 10_000 },
                Fault::CrashNodeAtMs { node: NodeId(2), at_ms: 10_000 },
                Fault::CrashNodeAtMs { node: NodeId(4), at_ms: 10_000 },
            ]
        );
        assert_eq!(s.injected_failure_faults(&profile()), 3);
    }

    #[test]
    fn node_crash_coinciding_with_rack_member_dedupes() {
        let s = ChaosScenario::new("coincide")
            .with(ChaosFault::CrashNode { node: 3, at_secs: 5.0 })
            .with(ChaosFault::CrashRack { rack: 1, at_secs: 5.0 });
        let plan = s.lower(JobId(0), &profile());
        let crashed: Vec<u32> = plan
            .faults
            .iter()
            .map(|f| match f {
                Fault::CrashNodeAtMs { node, at_ms: 5_000 } => node.0,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(crashed, vec![3, 1, 5], "node 3 injected once, not twice");
        // Same node at a *different* time is a distinct fault and kept.
        let s2 = ChaosScenario::new("two-times")
            .with(ChaosFault::CrashNode { node: 1, at_secs: 5.0 })
            .with(ChaosFault::CrashNode { node: 1, at_secs: 9.0 });
        assert_eq!(s2.lower(JobId(0), &profile()).faults.len(), 2);
    }

    #[test]
    fn injected_fault_count_is_profile_aware_for_rack_crashes() {
        // One rack fault on a 6-worker/2-rack profile expands to 3 node
        // crashes; the amplification denominator must count all 3, so rack
        // scenarios are not judged against a node-scenario denominator.
        let s = ChaosScenario::new("rack").with(ChaosFault::CrashRack { rack: 0, at_secs: 20.0 });
        assert_eq!(s.injected_failure_faults(&profile()), 3);
        let narrow = LoweringProfile { workers: 2, racks: 2, ms_per_scenario_sec: 1000.0 };
        assert_eq!(s.injected_failure_faults(&narrow), 1, "1 member per rack on 2 workers");
    }

    #[test]
    fn scenario_serde_round_trip() {
        let s = ChaosScenario::new("mixed")
            .with(ChaosFault::CrashNodeAtReduceProgress { node: 1, reduce_index: 5, at_progress: 0.1 })
            .with(ChaosFault::CrashRack { rack: 0, at_secs: 12.5 })
            .with(ChaosFault::SlowNode { node: 2, at_secs: 3.0, factor: 2.5 })
            .with(ChaosFault::PartitionLink {
                a: 0,
                b: 3,
                direction: LinkDirection::AToB,
                from_secs: 2.0,
                heal_secs: 9.0,
                flap: Some(ChaosFlap { seed: 5, cycles: 3, period_secs: 4.0, down_secs: 2.0 }),
            })
            .with(ChaosFault::DegradedLink {
                a: 2,
                b: 5,
                direction: LinkDirection::Both,
                from_secs: 1.0,
                heal_secs: 8.0,
                factor: 3.0,
                loss: 0.25,
            })
            .with(ChaosFault::CorruptData {
                node: 4,
                target: CorruptTarget::AlgRecord { reduce_index: 1, seq: 2 },
                at_secs: 6.0,
            });
        let json = serde_json::to_string(&s).unwrap();
        let back: ChaosScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn transient_faults_lower_with_clamping_and_rescaling() {
        let s = ChaosScenario::new("transient")
            .with(ChaosFault::PartitionLink {
                a: 1,
                b: 8,
                direction: LinkDirection::Both,
                from_secs: 4.0,
                heal_secs: 20.0,
                flap: None,
            })
            .with(ChaosFault::CorruptData {
                node: 9,
                target: CorruptTarget::MofPartition { map_index: 2, partition: 1 },
                at_secs: 6.0,
            });
        let plan = s.lower(JobId(0), &LoweringProfile::runtime(6, 2, 5.0));
        assert_eq!(
            plan.faults,
            vec![
                Fault::PartitionLink {
                    a: NodeId(1),
                    b: NodeId(2),
                    direction: LinkDirection::Both,
                    from_ms: 20,
                    heal_ms: 100,
                    flap: None,
                },
                Fault::CorruptData {
                    node: NodeId(3),
                    target: CorruptTarget::MofPartition { map_index: 2, partition: 1 },
                    at_ms: 30,
                },
            ],
            "node indices clamp modulo workers, scenario seconds rescale to wall ms"
        );
    }

    #[test]
    fn transient_faults_do_not_count_as_injected_failures() {
        let s = ChaosScenario::new("transient-only")
            .with(ChaosFault::PartitionLink {
                a: 0,
                b: 1,
                direction: LinkDirection::Both,
                from_secs: 1.0,
                heal_secs: 5.0,
                flap: None,
            })
            .with(ChaosFault::DegradedLink {
                a: 1,
                b: 2,
                direction: LinkDirection::BToA,
                from_secs: 0.0,
                heal_secs: 9.0,
                factor: 2.0,
                loss: 0.1,
            })
            .with(ChaosFault::CorruptData {
                node: 2,
                target: CorruptTarget::AlgRecord { reduce_index: 0, seq: 0 },
                at_secs: 3.0,
            });
        assert!(s.faults.iter().all(|f| !f.produces_failures()));
        assert_eq!(s.injected_failure_faults(&profile()), 0);
    }

    #[test]
    fn heal_never_precedes_sever_after_rounding() {
        // 0.04 scenario-sec of partition at 5 ms/sec rounds both ends to
        // the same millisecond; the lowered heal must not land earlier.
        let s = ChaosScenario::new("tiny").with(ChaosFault::PartitionLink {
            a: 0,
            b: 1,
            direction: LinkDirection::Both,
            from_secs: 10.0,
            heal_secs: 10.04,
            flap: None,
        });
        let plan = s.lower(JobId(0), &LoweringProfile::runtime(6, 2, 5.0));
        match plan.faults[0] {
            Fault::PartitionLink { from_ms, heal_ms, .. } => assert!(heal_ms >= from_ms),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn flapping_partition_lowers_cycles_and_direction() {
        let s = ChaosScenario::new("flap").with(ChaosFault::PartitionLink {
            a: 0,
            b: 2,
            direction: LinkDirection::AToB,
            from_secs: 5.0,
            heal_secs: 0.0, // advisory: the schedule's final heal wins
            flap: Some(ChaosFlap { seed: 3, cycles: 4, period_secs: 10.0, down_secs: 6.0 }),
        });
        let plan = s.lower(JobId(0), &profile());
        let windows = plan.partition_windows();
        assert_eq!(windows.len(), 4, "one window per cycle");
        assert!(windows.iter().all(|w| w.direction == LinkDirection::AToB));
        match &plan.faults[0] {
            Fault::PartitionLink { heal_ms, flap: Some(f), .. } => {
                assert_eq!(*heal_ms, f.end_ms(5_000), "advisory heal pinned to the final cycle's");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validation_rejects_overlapping_flap_windows() {
        // Two flapping faults on the same directed link whose cycles
        // interleave: one's heal would erase the other's cut.
        let flap = |seed| Some(ChaosFlap { seed, cycles: 3, period_secs: 10.0, down_secs: 8.0 });
        let bad = ChaosScenario::new("clash")
            .with(ChaosFault::PartitionLink {
                a: 0,
                b: 1,
                direction: LinkDirection::Both,
                from_secs: 0.0,
                heal_secs: 0.0,
                flap: flap(1),
            })
            .with(ChaosFault::PartitionLink {
                a: 0,
                b: 1,
                direction: LinkDirection::Both,
                from_secs: 2.0,
                heal_secs: 0.0,
                flap: flap(2),
            });
        let err = bad.validate(&profile()).unwrap_err();
        assert!(err.contains("overlap"), "{err}");

        // A single flapping fault can never overlap itself (heal strictly
        // precedes the next sever by construction)…
        let good = ChaosScenario::new("solo").with(ChaosFault::PartitionLink {
            a: 0,
            b: 1,
            direction: LinkDirection::Both,
            from_secs: 0.0,
            heal_secs: 0.0,
            flap: flap(1),
        });
        assert_eq!(good.validate(&profile()), Ok(()));

        // …and flapping faults on *different* directions of the same pair
        // never collide either.
        let split = ChaosScenario::new("split")
            .with(ChaosFault::PartitionLink {
                a: 0,
                b: 1,
                direction: LinkDirection::AToB,
                from_secs: 0.0,
                heal_secs: 0.0,
                flap: flap(1),
            })
            .with(ChaosFault::PartitionLink {
                a: 0,
                b: 1,
                direction: LinkDirection::BToA,
                from_secs: 2.0,
                heal_secs: 0.0,
                flap: flap(2),
            });
        assert_eq!(split.validate(&profile()), Ok(()));
    }
}
