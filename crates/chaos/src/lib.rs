//! Declarative fault-campaign subsystem for the ALM reproduction.
//!
//! The repo has two engines that execute the same recovery policies: the
//! threaded mini-YARN (`alm-runtime`, real bytes, wall time) and the
//! discrete-event simulator (`alm-sim`, paper scale, virtual time). This
//! crate closes the loop between them:
//!
//! | module | role |
//! |---|---|
//! | [`scenario`] | serde scenario spec: task kills, node crashes (timed, progress-triggered), slow nodes, correlated rack failures — lowered to both engines through the shared `alm_types::FaultPlan` |
//! | [`space`]    | seeded randomized sweeps: a [`FaultSpace`] distribution sampled into N reproducible scenarios |
//! | [`campaign`] | campaign runner: scenarios × recovery modes on either engine, runtime outputs checked against the reference oracle |
//! | [`analyze`]  | amplification analyzer: temporal (repeated-failure chains, Figs. 3/10) and spatial (fetch-failure-infected reducers, Fig. 4 / Table II) metrics, JSON + text reports |
//! | [`differential`] | differential validator: the same scenario on both engines at matched scale, asserting invariant agreement |
//! | [`calibrate`]    | magnitude calibration: per-mode normalized-slowdown curves across engines, checked against recorded tolerance bands |
//! | [`warehouse`]    | warehouse-scale bridge: scenarios lowered onto the `alm-sched` multi-tenant engine, per-tenant impact rows (faulted vs clean slowdown) and cross-tenant amplification |
//! | [`triage`]       | ranked root-cause triage: outcomes grouped by failure signature (stuck → amplified → absorbed), ranked by severity × blast radius, each with a remediation |
//! | [`chain`]        | in-memory chain campaigns: the `alm-mem` iterative mode crashed mid-chain on both engines, `mem-amplification-bounded` differential invariant, iterations-lost table |

#![forbid(unsafe_code)]

pub mod analyze;
pub mod calibrate;
pub mod campaign;
pub mod chain;
pub mod differential;
pub mod scenario;
pub mod space;
pub mod triage;
pub mod warehouse;

pub use analyze::{analyze_runtime, analyze_sim, DfsAudit, EngineKind, ScenarioOutcome};
pub use calibrate::{
    calibrate, calibration_suite, transient_calibration_suite, validate_calibrated,
    validate_calibrated_transient, CalibrationReport, ModeCurve, SlowdownPoint, ToleranceBands,
};
pub use campaign::{CampaignReport, RuntimeCampaign, SimCampaign};
pub use chain::{ChainCampaign, ChainDifferentialReport, ChainModeRow};
pub use differential::{validate_at, validate_scenario, DifferentialReport, Invariant, MatchedScale};
pub use scenario::{ChaosFault, ChaosFlap, ChaosScenario, LoweringProfile};
pub use space::{FaultSpace, FaultWeights};
pub use triage::{triage, Severity, TriageGroup, TriageReport};
pub use warehouse::{lower_warehouse, TenantImpactRow, WarehouseChaosCampaign};
