//! Warehouse-scale multi-tenant chaos campaigns.
//!
//! Bridges the declarative [`ChaosScenario`] vocabulary onto the
//! `alm-sched` warehouse engine: node/rack crash faults lower to
//! [`WarehouseFault`]s, every scenario runs under every recovery mode on a
//! shared multi-tenant cluster, and the results reduce to per-tenant
//! impact rows — slowdown under the fault vs. the same campaign clean —
//! that plug into [`CampaignReport`](crate::CampaignReport) alongside the
//! single-job outcomes.
//!
//! This is the cross-tenant half of the amplification story: the single-
//! job campaigns measure how far a fault spreads *within* a job; these
//! measure how far it spreads *between* tenants, through nothing but slot
//! contention with the wounded tenant's recovery work.

use alm_sched::{SchedPolicyKind, WarehouseCampaign, WarehouseFault, WarehouseReport};
use alm_types::RecoveryMode;
use serde::{Deserialize, Serialize};

use crate::scenario::{ChaosFault, ChaosScenario};

/// Lower a scenario's faults to warehouse vocabulary. Only node and rack
/// crashes exist at warehouse granularity — task kills, slow nodes, link
/// partitions and data corruption are intra-job phenomena the single-job
/// engines cover — so everything else lowers to nothing. Returns the
/// lowered faults and how many were dropped.
pub fn lower_warehouse(scenario: &ChaosScenario) -> (Vec<WarehouseFault>, usize) {
    let mut out = Vec::new();
    let mut dropped = 0usize;
    for f in &scenario.faults {
        match f {
            ChaosFault::CrashNode { node, at_secs } => {
                out.push(WarehouseFault::CrashNode { node: *node, at_secs: *at_secs });
            }
            ChaosFault::CrashRack { rack, at_secs } => {
                out.push(WarehouseFault::CrashRack { rack: *rack, at_secs: *at_secs });
            }
            ChaosFault::KillMap { .. }
            | ChaosFault::KillReduce { .. }
            | ChaosFault::CrashNodeAtReduceProgress { .. }
            | ChaosFault::SlowNode { .. }
            | ChaosFault::PartitionLink { .. }
            | ChaosFault::DegradedLink { .. }
            | ChaosFault::CorruptData { .. } => dropped += 1,
        }
    }
    (out, dropped)
}

/// One tenant's fate in one faulted warehouse scenario, against its clean
/// baseline on the identical campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantImpactRow {
    pub scenario: String,
    pub mode: RecoveryMode,
    pub policy: String,
    pub tenant: String,
    pub jobs: u32,
    pub finished: u32,
    /// Task-failure records this tenant's jobs accumulated (0 = the fault
    /// never touched it directly).
    pub failures: u32,
    /// `FetchFailureLimit` preemptions — spatial amplification records.
    pub fetch_failures: u32,
    /// Mean slowdown (latency / ideal) under the fault.
    pub mean_slowdown: f64,
    /// Mean slowdown of the same tenant in the same campaign with no
    /// faults: the queueing-only baseline.
    pub clean_mean_slowdown: f64,
    pub p99_latency_secs: f64,
}

impl TenantImpactRow {
    /// Fault-attributable slowdown: how much slower than the clean run of
    /// the *same* contended campaign. 1.0 = the fault cost this tenant
    /// nothing; meaningful even for tenants with `failures == 0`, where it
    /// is pure cross-tenant amplification.
    pub fn amplification(&self) -> f64 {
        if self.clean_mean_slowdown <= 0.0 || self.mean_slowdown < 0.0 {
            return -1.0;
        }
        self.mean_slowdown / self.clean_mean_slowdown
    }
}

/// A multi-tenant campaign: one synthetic warehouse per `(scenario, mode)`
/// pair, plus one clean run per mode for the slowdown baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WarehouseChaosCampaign {
    pub nodes: u32,
    pub tenants: u32,
    pub jobs_per_tenant: u32,
    pub policy: SchedPolicyKind,
    pub modes: Vec<RecoveryMode>,
    pub seed: u64,
}

impl WarehouseChaosCampaign {
    /// The campaign behind one `(mode)` cell, before faults.
    fn campaign(&self, mode: RecoveryMode) -> WarehouseCampaign {
        WarehouseCampaign::synthetic(
            self.nodes,
            self.tenants,
            self.jobs_per_tenant,
            self.policy,
            mode,
            self.seed,
        )
    }

    /// Run one scenario under one mode, returning the faulted report and
    /// its per-tenant impact rows (clean baseline recomputed internally).
    pub fn run_scenario(
        &self,
        scenario: &ChaosScenario,
        mode: RecoveryMode,
    ) -> Result<(WarehouseReport, Vec<TenantImpactRow>), String> {
        let (faults, _) = lower_warehouse(scenario);
        let mut faulted = self.campaign(mode);
        faulted.faults = faults;
        let report = faulted.run()?;
        let clean = self.campaign(mode).run()?;
        let clean_rows = clean.per_tenant_rows();
        let rows = report
            .per_tenant_rows()
            .into_iter()
            .enumerate()
            .map(|(i, r)| TenantImpactRow {
                scenario: scenario.name.clone(),
                mode,
                policy: report.policy.clone(),
                tenant: r.tenant,
                jobs: r.jobs,
                finished: r.finished,
                failures: r.failures,
                fetch_failures: r.fetch_failures,
                mean_slowdown: r.mean_slowdown,
                clean_mean_slowdown: clean_rows.get(i).map(|c| c.mean_slowdown).unwrap_or(-1.0),
                p99_latency_secs: r.p99_latency_secs,
            })
            .collect();
        Ok((report, rows))
    }

    /// Every scenario under every mode; rows accumulate in (scenario,
    /// mode, tenant) order.
    pub fn run(&self, scenarios: &[ChaosScenario]) -> Result<Vec<TenantImpactRow>, String> {
        let mut out = Vec::new();
        for s in scenarios {
            for &m in &self.modes {
                let (_, rows) = self.run_scenario(s, m)?;
                out.extend(rows);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack_crash(name: &str, rack: u32, at: f64) -> ChaosScenario {
        ChaosScenario::new(name).with(ChaosFault::CrashRack { rack, at_secs: at })
    }

    #[test]
    fn lowering_keeps_crashes_drops_intra_job_faults() {
        let s = ChaosScenario::new("mixed")
            .with(ChaosFault::CrashNode { node: 3, at_secs: 10.0 })
            .with(ChaosFault::KillReduce { index: 0, at_progress: 0.5 })
            .with(ChaosFault::SlowNode { node: 1, at_secs: 5.0, factor: 2.0 });
        let (faults, dropped) = lower_warehouse(&s);
        assert_eq!(faults, vec![WarehouseFault::CrashNode { node: 3, at_secs: 10.0 }]);
        assert_eq!(dropped, 2);
    }

    #[test]
    fn campaign_produces_per_tenant_rows_with_clean_baselines() {
        let c = WarehouseChaosCampaign {
            nodes: 40,
            tenants: 3,
            jobs_per_tenant: 3,
            policy: SchedPolicyKind::Fair,
            modes: vec![RecoveryMode::Baseline, RecoveryMode::SfmAlg],
            seed: 11,
        };
        let rows = c.run(&[rack_crash("rack1", 1, 60.0)]).expect("campaign");
        // 1 scenario x 2 modes x 3 tenants.
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.scenario, "rack1");
            assert_eq!(r.policy, "fair");
            assert!(r.finished > 0, "{r:?}");
            assert!(r.clean_mean_slowdown >= 1.0, "{r:?}");
            // Faulted can never beat clean on the same campaign.
            assert!(r.mean_slowdown >= r.clean_mean_slowdown - 1e-9, "{r:?}");
            assert!(r.amplification() >= 1.0 - 1e-9, "{r:?}");
        }
        // The crash must actually hurt someone.
        assert!(rows.iter().any(|r| r.failures > 0));
    }

    #[test]
    fn impact_rows_are_deterministic() {
        let c = WarehouseChaosCampaign {
            nodes: 30,
            tenants: 2,
            jobs_per_tenant: 2,
            policy: SchedPolicyKind::Fifo,
            modes: vec![RecoveryMode::Alg],
            seed: 5,
        };
        let a = c.run(&[rack_crash("r", 0, 30.0)]).expect("campaign");
        let b = c.run(&[rack_crash("r", 0, 30.0)]).expect("campaign");
        assert_eq!(a, b);
    }
}
