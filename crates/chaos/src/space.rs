//! Seeded randomized fault-space sweeps.
//!
//! A [`FaultSpace`] describes the *distribution* a campaign draws from:
//! which fault kinds (weighted), how many per scenario, which progress /
//! time / slowdown windows. [`FaultSpace::sample`] turns it into N concrete
//! [`ChaosScenario`]s, fully determined by the seed — the same
//! (space, seed, n) always yields the same campaign, so a campaign is
//! reproducible from three numbers and a spec.

use alm_types::CorruptTarget;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use alm_types::LinkDirection;

use crate::scenario::{ChaosFault, ChaosFlap, ChaosScenario};

/// Relative weights of each fault kind (0 disables a kind).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultWeights {
    pub kill_map: u32,
    pub kill_reduce: u32,
    pub crash_node: u32,
    pub crash_node_at_reduce_progress: u32,
    pub slow_node: u32,
    pub crash_rack: u32,
    pub partition_link: u32,
    pub corrupt_data: u32,
    /// Weight of the gray degraded-link fault. Defaults to 0 so existing
    /// recorded spaces (and the golden gate campaign) keep their exact
    /// draw sequence; enable via [`FaultSpace::gray_like`].
    pub degraded_link: u32,
}

impl Default for FaultWeights {
    fn default() -> FaultWeights {
        FaultWeights {
            kill_map: 2,
            kill_reduce: 3,
            crash_node: 2,
            crash_node_at_reduce_progress: 3,
            slow_node: 1,
            crash_rack: 1,
            partition_link: 2,
            corrupt_data: 2,
            degraded_link: 0,
        }
    }
}

impl FaultWeights {
    fn total(&self) -> u32 {
        self.kill_map
            + self.kill_reduce
            + self.crash_node
            + self.crash_node_at_reduce_progress
            + self.slow_node
            + self.crash_rack
            + self.partition_link
            + self.corrupt_data
            + self.degraded_link
    }
}

/// The sampling distribution of one randomized campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpace {
    /// Worker-node count faults may target.
    pub workers: u32,
    pub racks: u32,
    pub num_maps: u32,
    pub num_reduces: u32,
    /// Faults per scenario are drawn uniformly from `1..=max_faults`.
    pub max_faults: u32,
    /// Progress window for progress-triggered faults.
    pub progress: (f64, f64),
    /// Scenario-seconds window for time-triggered faults.
    pub at_secs: (f64, f64),
    /// Slowdown-factor window for slow nodes.
    pub slow_factor: (f64, f64),
    /// How long a sampled partition stays severed before healing, in
    /// scenario seconds. Keep the upper bound under the engines' liveness
    /// window so sampled partitions are genuinely transient.
    pub partition_secs: (f64, f64),
    /// Probability a sampled partition is *asymmetric* (one direction cut,
    /// the reverse healthy). 0.0 keeps legacy symmetric-only sampling —
    /// and, crucially, the legacy RNG draw sequence.
    pub asymmetric_prob: f64,
    /// Probability a sampled partition carries a seeded flap schedule
    /// (bounded sever→heal cycles) instead of a single window. 0.0 keeps
    /// the legacy draw sequence.
    pub flap_prob: f64,
    /// Slowdown-factor window for sampled degraded links.
    pub degraded_factor: (f64, f64),
    /// Loss-probability window for sampled degraded links.
    pub degraded_loss: (f64, f64),
    pub weights: FaultWeights,
}

impl FaultSpace {
    /// A space shaped like the paper's §V experiments: early-reduce-phase
    /// failures on a cluster of `workers` workers.
    pub fn paper_like(workers: u32, racks: u32, num_maps: u32, num_reduces: u32) -> FaultSpace {
        FaultSpace {
            workers,
            racks,
            num_maps,
            num_reduces,
            max_faults: 2,
            progress: (0.05, 0.6),
            at_secs: (5.0, 60.0),
            slow_factor: (1.5, 6.0),
            partition_secs: (10.0, 40.0),
            asymmetric_prob: 0.0,
            flap_prob: 0.0,
            degraded_factor: (2.0, 6.0),
            degraded_loss: (0.05, 0.3),
            weights: FaultWeights::default(),
        }
    }

    /// The gray-failure sweep space: the paper-like shape plus asymmetric
    /// partitions, flap schedules, and weighted degraded links — the
    /// acceptance sweep for the directed-link invariants.
    pub fn gray_like(workers: u32, racks: u32, num_maps: u32, num_reduces: u32) -> FaultSpace {
        let mut space = FaultSpace::paper_like(workers, racks, num_maps, num_reduces);
        space.asymmetric_prob = 0.5;
        space.flap_prob = 0.4;
        space.weights.degraded_link = 2;
        space
    }

    /// Sample a link direction: symmetric unless the space enables
    /// asymmetric partitions (probability draws only happen when enabled,
    /// preserving legacy draw sequences).
    fn sample_direction(&self, rng: &mut SmallRng) -> LinkDirection {
        if self.asymmetric_prob > 0.0 && rng.random_bool(self.asymmetric_prob.min(1.0)) {
            if rng.random_range(0..2u32) == 0 {
                LinkDirection::AToB
            } else {
                LinkDirection::BToA
            }
        } else {
            LinkDirection::Both
        }
    }

    fn sample_fault(&self, rng: &mut SmallRng) -> ChaosFault {
        let w = &self.weights;
        let total = w.total().max(1);
        let mut pick = rng.random_range(0..total);
        let progress = rng.random_range(self.progress.0..=self.progress.1);
        let at_secs = rng.random_range(self.at_secs.0..=self.at_secs.1);
        let node = rng.random_range(0..self.workers.max(1));
        for (weight, kind) in [
            (w.kill_map, 0u8),
            (w.kill_reduce, 1),
            (w.crash_node, 2),
            (w.crash_node_at_reduce_progress, 3),
            (w.slow_node, 4),
            (w.crash_rack, 5),
            (w.partition_link, 6),
            (w.corrupt_data, 7),
            (w.degraded_link, 8),
        ] {
            if pick < weight {
                return match kind {
                    0 => ChaosFault::KillMap {
                        index: rng.random_range(0..self.num_maps.max(1)),
                        at_progress: progress,
                    },
                    1 => ChaosFault::KillReduce {
                        index: rng.random_range(0..self.num_reduces.max(1)),
                        at_progress: progress,
                    },
                    2 => ChaosFault::CrashNode { node, at_secs },
                    3 => ChaosFault::CrashNodeAtReduceProgress {
                        node,
                        reduce_index: rng.random_range(0..self.num_reduces.max(1)),
                        at_progress: progress,
                    },
                    4 => ChaosFault::SlowNode {
                        node,
                        at_secs,
                        factor: rng.random_range(self.slow_factor.0..=self.slow_factor.1),
                    },
                    5 => ChaosFault::CrashRack { rack: rng.random_range(0..self.racks.max(1)), at_secs },
                    6 => {
                        let b = rng.random_range(0..self.workers.max(1));
                        let heal_secs =
                            at_secs + rng.random_range(self.partition_secs.0..=self.partition_secs.1);
                        let direction = self.sample_direction(rng);
                        let flap = if self.flap_prob > 0.0 && rng.random_bool(self.flap_prob.min(1.0)) {
                            let period_secs = rng.random_range(self.partition_secs.0..=self.partition_secs.1);
                            Some(ChaosFlap {
                                seed: rng.random(),
                                cycles: rng.random_range(2..=4),
                                period_secs,
                                down_secs: period_secs * rng.random_range(0.3..=0.7),
                            })
                        } else {
                            None
                        };
                        ChaosFault::PartitionLink {
                            a: node,
                            b,
                            direction,
                            from_secs: at_secs,
                            heal_secs,
                            flap,
                        }
                    }
                    8 => ChaosFault::DegradedLink {
                        a: node,
                        b: rng.random_range(0..self.workers.max(1)),
                        direction: self.sample_direction(rng),
                        from_secs: at_secs,
                        heal_secs: at_secs + rng.random_range(self.partition_secs.0..=self.partition_secs.1),
                        factor: rng.random_range(self.degraded_factor.0..=self.degraded_factor.1),
                        loss: rng.random_range(self.degraded_loss.0..=self.degraded_loss.1),
                    },
                    _ => ChaosFault::CorruptData {
                        node,
                        target: if rng.random_range(0..2u32) == 0 {
                            CorruptTarget::MofPartition {
                                map_index: rng.random_range(0..self.num_maps.max(1)),
                                partition: rng.random_range(0..self.num_reduces.max(1)),
                            }
                        } else {
                            CorruptTarget::AlgRecord {
                                reduce_index: rng.random_range(0..self.num_reduces.max(1)),
                                seq: rng.random_range(0..8),
                            }
                        },
                        at_secs,
                    },
                };
            }
            pick -= weight;
        }
        // Unreachable with a positive total; keep a deterministic fallback.
        ChaosFault::KillReduce { index: 0, at_progress: progress }
    }

    /// Draw `n` scenarios, fully determined by `seed`. Names embed the
    /// seed and index so a single scenario can be re-derived later.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<ChaosScenario> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let faults = rng.random_range(1..=self.max_faults.max(1));
                let mut s = ChaosScenario::new(format!("s{seed}-{i:03}"));
                for _ in 0..faults {
                    s.faults.push(self.sample_fault(&mut rng));
                }
                s
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> FaultSpace {
        FaultSpace::paper_like(20, 2, 80, 20)
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let a = space().sample(8, 42);
        let b = space().sample(8, 42);
        let c = space().sample(8, 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds must explore different scenarios");
    }

    #[test]
    fn samples_respect_the_space_bounds() {
        for s in space().sample(32, 7) {
            assert!(!s.faults.is_empty() && s.faults.len() <= 2);
            for f in &s.faults {
                match f {
                    ChaosFault::KillMap { index, at_progress } => {
                        assert!(*index < 80 && (0.05..=0.6).contains(at_progress));
                    }
                    ChaosFault::KillReduce { index, at_progress } => {
                        assert!(*index < 20 && (0.05..=0.6).contains(at_progress));
                    }
                    ChaosFault::CrashNode { node, at_secs } => {
                        assert!(*node < 20 && (5.0..=60.0).contains(at_secs));
                    }
                    ChaosFault::CrashNodeAtReduceProgress { node, reduce_index, at_progress } => {
                        assert!(*node < 20 && *reduce_index < 20 && (0.05..=0.6).contains(at_progress));
                    }
                    ChaosFault::SlowNode { node, factor, .. } => {
                        assert!(*node < 20 && (1.5..=6.0).contains(factor));
                    }
                    ChaosFault::CrashRack { rack, .. } => assert!(*rack < 2),
                    ChaosFault::PartitionLink { a, b, direction, from_secs, heal_secs, flap } => {
                        assert!(*a < 20 && *b < 20);
                        assert!((5.0..=60.0).contains(from_secs));
                        let dur = heal_secs - from_secs;
                        assert!((10.0..=40.0).contains(&dur), "partition must be transient: {dur}");
                        assert_eq!(*direction, LinkDirection::Both, "paper_like samples symmetric only");
                        assert!(flap.is_none(), "paper_like samples no flap schedules");
                    }
                    ChaosFault::DegradedLink { .. } => {
                        panic!("paper_like weights the gray degraded-link fault at 0")
                    }
                    ChaosFault::CorruptData { node, target, at_secs } => {
                        assert!(*node < 20 && (5.0..=60.0).contains(at_secs));
                        match target {
                            alm_types::CorruptTarget::MofPartition { map_index, partition } => {
                                assert!(*map_index < 80 && *partition < 20);
                            }
                            alm_types::CorruptTarget::AlgRecord { reduce_index, .. } => {
                                assert!(*reduce_index < 20);
                            }
                            alm_types::CorruptTarget::DfsBlock { reduce_index, .. } => {
                                assert!(*reduce_index < 20);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn golden_gate_sample_exercises_transient_faults() {
        // The fixed-seed campaign behind the campaign_gate CI gate must
        // cover the transient vocabulary: same space shape and (seed, n)
        // as `SimCampaign::golden_gate(42, 20)`.
        let faults: Vec<ChaosFault> =
            FaultSpace::paper_like(20, 2, 80, 20).sample(20, 42).into_iter().flat_map(|s| s.faults).collect();
        assert!(
            faults.iter().any(|f| matches!(f, ChaosFault::PartitionLink { .. })),
            "seed-42 gate campaign samples no network partition"
        );
        assert!(
            faults.iter().any(|f| matches!(f, ChaosFault::CorruptData { .. })),
            "seed-42 gate campaign samples no data corruption"
        );
    }

    #[test]
    fn zero_weights_disable_kinds() {
        let mut sp = space();
        sp.weights = FaultWeights {
            kill_map: 0,
            kill_reduce: 1,
            crash_node: 0,
            crash_node_at_reduce_progress: 0,
            slow_node: 0,
            crash_rack: 0,
            partition_link: 0,
            corrupt_data: 0,
            degraded_link: 0,
        };
        for s in sp.sample(16, 3) {
            assert!(s.faults.iter().all(|f| matches!(f, ChaosFault::KillReduce { .. })));
        }
    }

    #[test]
    fn gray_space_samples_the_gray_vocabulary_within_bounds() {
        let sweep = FaultSpace::gray_like(20, 2, 80, 20).sample(64, 11);
        let faults: Vec<&ChaosFault> = sweep.iter().flat_map(|s| &s.faults).collect();
        let mut saw_asym = false;
        let mut saw_flap = false;
        let mut saw_degraded = false;
        for f in &faults {
            match f {
                ChaosFault::PartitionLink { direction, flap, .. } => {
                    saw_asym |= *direction != LinkDirection::Both;
                    if let Some(flap) = flap {
                        saw_flap = true;
                        assert!((2..=4).contains(&flap.cycles));
                        assert!(flap.down_secs > 0.0 && flap.down_secs < flap.period_secs);
                    }
                }
                ChaosFault::DegradedLink { a, b, factor, loss, .. } => {
                    saw_degraded = true;
                    assert!(*a < 20 && *b < 20);
                    assert!((2.0..=6.0).contains(factor));
                    assert!((0.05..=0.3).contains(loss));
                }
                _ => {}
            }
        }
        assert!(saw_asym, "gray space must sample asymmetric partitions");
        assert!(saw_flap, "gray space must sample flap schedules");
        assert!(saw_degraded, "gray space must sample degraded links");
    }

    #[test]
    fn gray_knobs_default_off_preserves_legacy_sampling() {
        // The golden gate campaign pins (paper_like, seed 42, n 20); the
        // gray extensions must not perturb that draw sequence.
        let legacy = space().sample(20, 42);
        for s in &legacy {
            for f in &s.faults {
                if let ChaosFault::PartitionLink { direction, flap, .. } = f {
                    assert_eq!(*direction, LinkDirection::Both);
                    assert!(flap.is_none());
                }
                assert!(!matches!(f, ChaosFault::DegradedLink { .. }));
            }
        }
    }
}
