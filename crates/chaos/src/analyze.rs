//! Amplification analysis over engine reports.
//!
//! Extracts the paper's two amplification phenomena from either engine's
//! run report, normalised into one [`ScenarioOutcome`] shape:
//!
//! * **temporal amplification** (Figs. 3/10): repeated failures of the
//!   *same* task — the longest repeat chain beyond a task's first failure;
//! * **spatial amplification** (Fig. 4 / Table II): healthy reducers
//!   preempted through `FetchFailureLimit` after losing a shuffle source —
//!   failures "infecting" tasks the fault never touched.

use alm_runtime::JobReport;
use alm_sim::SimReport;
use alm_types::{FailureKind, RecoveryMode, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::scenario::{ChaosScenario, LoweringProfile};

/// Which engine produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EngineKind {
    Simulator,
    Runtime,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EngineKind::Simulator => "sim",
            EngineKind::Runtime => "runtime",
        })
    }
}

/// One (scenario, engine, mode) run, reduced to the campaign's metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    pub scenario: String,
    pub engine: EngineKind,
    pub mode: RecoveryMode,
    pub succeeded: bool,
    /// Virtual seconds (simulator) or wall seconds (runtime).
    pub duration_secs: f64,
    /// Faults the scenario injected that surface as failures, counted on
    /// the lowered plan (a rack crash contributes one per member node).
    pub injected_faults: usize,
    pub total_failures: usize,
    /// Distinct reduce tasks preempted via `FetchFailureLimit`.
    pub spatial_amplification: usize,
    /// Longest repeated-failure chain of one task (count beyond first).
    pub temporal_amplification: usize,
    pub fcm_attempts: u32,
    /// Map attempts launched; equal to the job's map count exactly when no
    /// map re-executed — the transient-fault "zero re-execution" signal.
    pub map_attempts: u32,
    /// Node-loss declarations (`NodeCrash` failure records). A partition
    /// that heals inside the liveness window must leave this at zero.
    pub node_loss_failures: usize,
    /// Fetched chunks that failed arrival-checksum validation and were
    /// transparently re-fetched (never charged to the retry budget).
    pub corruption_refetches: u32,
    /// Fetch transfers dropped by gray-degraded links and transparently
    /// re-fetched (never charged to the retry budget).
    pub degraded_drops: u32,
    /// Runtime only: every analytics-log recovery stayed within one
    /// logging interval of work (vacuously true with no recoveries).
    pub recoveries_bounded: Option<bool>,
    /// Runtime only: committed output byte-identical to the oracle.
    pub output_verified: Option<bool>,
    /// Runtime only: reduce partitions whose committed output file is
    /// present *and readable* on the DFS (commit status, not record
    /// presence: a legitimately empty partition counts, a committed file
    /// whose blocks were later lost does not) — `num_reduces` here means
    /// no MOF loss went unrecovered.
    pub partitions_committed: Option<u32>,
    /// Rotten committed-output replicas the verified DFS read path skipped
    /// over (each charged to the faulted scenario and queued for repair).
    pub dfs_read_failovers: u32,
    /// Payload bytes the DFS repair pipeline copied to restore the
    /// replication level after corruption or node death.
    pub dfs_repair_bytes: u64,
    /// Corrupt replicas still present after post-job repair — the
    /// `dfs-verified-read` invariant requires zero on succeeded runs.
    pub dfs_corrupt_replicas: u32,
    /// Chain campaigns only: which iteration of the job chain this outcome
    /// belongs to. Zero for ordinary single-job scenarios.
    pub chain_iteration: u32,
    /// Resident-cache hits (shuffle MOFs + chain state stripes) served
    /// from RAM during the run; nonzero only in the in-memory mode.
    pub resident_hits: u64,
}

/// DFS replica-management counters for one runtime run, collected by the
/// campaign harness after its verification reads and `repair()` pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DfsAudit {
    pub read_failovers: u32,
    pub repair_bytes: u64,
    pub corrupt_replicas: u32,
}

fn spatial_of(failures: impl Iterator<Item = (TaskId, FailureKind)>) -> usize {
    let mut infected: Vec<TaskId> = failures
        .filter(|(t, k)| t.is_reduce() && *k == FailureKind::FetchFailureLimit)
        .map(|(t, _)| t)
        .collect();
    infected.sort_unstable();
    infected.dedup();
    infected.len()
}

/// Exhaustive classification of a recorded failure for the
/// `node_loss_failures` counter. Written as a full `match` so adding a
/// `FailureKind` variant forces a decision here (the V1 fault-vocab lint
/// additionally requires every variant to be named in this file).
fn counts_as_node_loss(kind: FailureKind) -> bool {
    match kind {
        FailureKind::NodeCrash => true,
        FailureKind::TaskOom | FailureKind::FetchFailureLimit | FailureKind::TaskTimeout => false,
        // Transients are absorbed upstream (parked fetches, checksummed
        // re-fetches) and slow nodes stay alive: these kinds must never be
        // *recorded* as failures at all, let alone counted as node losses.
        FailureKind::SlowNode | FailureKind::NetworkPartition | FailureKind::DataCorruption => {
            debug_assert!(false, "transient kind {kind:?} recorded as a failure");
            false
        }
    }
}

fn temporal_of(failures: impl Iterator<Item = TaskId>) -> usize {
    let mut per_task: BTreeMap<TaskId, usize> = BTreeMap::new();
    for t in failures {
        *per_task.entry(t).or_default() += 1;
    }
    per_task.values().map(|n| n.saturating_sub(1)).max().unwrap_or(0)
}

/// Analyze a simulator run of `scenario` under `mode`. `profile` is the
/// lowering profile the run used; the injected-fault denominator is
/// counted on the lowered plan so rack crashes weigh one per member node.
pub fn analyze_sim(
    scenario: &ChaosScenario,
    mode: RecoveryMode,
    report: &SimReport,
    profile: &LoweringProfile,
) -> ScenarioOutcome {
    ScenarioOutcome {
        scenario: scenario.name.clone(),
        engine: EngineKind::Simulator,
        mode,
        succeeded: report.succeeded,
        duration_secs: report.job_secs,
        injected_faults: scenario.injected_failure_faults(profile),
        total_failures: report.failures.len(),
        spatial_amplification: spatial_of(report.failures.iter().map(|f| (f.task, f.kind))),
        temporal_amplification: temporal_of(report.failures.iter().map(|f| f.task)),
        fcm_attempts: report.fcm_attempts,
        map_attempts: report.map_attempts,
        node_loss_failures: report.failures.iter().filter(|f| counts_as_node_loss(f.kind)).count(),
        corruption_refetches: report.corruption_refetches,
        degraded_drops: report.degraded_drops,
        recoveries_bounded: None,
        output_verified: None,
        partitions_committed: None,
        dfs_read_failovers: report.dfs_read_failovers,
        dfs_repair_bytes: report.dfs_repair_bytes,
        dfs_corrupt_replicas: report.dfs_corrupt_replicas,
        chain_iteration: 0,
        resident_hits: report.resident_fetch_hits,
    }
}

/// Analyze a threaded-runtime run of `scenario` under `mode`.
/// `output_verified` carries the caller's oracle comparison and
/// `partitions_committed` the caller's DFS commit-status count (see
/// `RuntimeCampaign::committed_partitions`) — the report's own
/// `output_records` map tracks record counts, not commit durability, and
/// cannot see a committed file whose blocks were lost afterwards.
pub fn analyze_runtime(
    scenario: &ChaosScenario,
    mode: RecoveryMode,
    report: &JobReport,
    profile: &LoweringProfile,
    output_verified: bool,
    partitions_committed: u32,
    dfs: DfsAudit,
) -> ScenarioOutcome {
    ScenarioOutcome {
        scenario: scenario.name.clone(),
        engine: EngineKind::Runtime,
        mode,
        succeeded: report.succeeded,
        duration_secs: report.job_time_ms as f64 / 1000.0,
        injected_faults: scenario.injected_failure_faults(profile),
        total_failures: report.failures.len(),
        spatial_amplification: spatial_of(report.failures.iter().map(|f| (f.task, f.kind))),
        temporal_amplification: temporal_of(report.failures.iter().map(|f| f.task)),
        fcm_attempts: report.fcm_attempts,
        map_attempts: report.map_attempts,
        node_loss_failures: report.failures.iter().filter(|f| counts_as_node_loss(f.kind)).count(),
        corruption_refetches: report.corruption_refetches,
        degraded_drops: report.degraded_drops,
        recoveries_bounded: Some(report.recoveries_bounded()),
        output_verified: Some(output_verified),
        partitions_committed: Some(partitions_committed),
        dfs_read_failovers: dfs.read_failovers,
        dfs_repair_bytes: dfs.repair_bytes,
        dfs_corrupt_replicas: dfs.corrupt_replicas,
        chain_iteration: 0,
        resident_hits: report.resident_fetch_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::JobId;

    #[test]
    fn spatial_counts_distinct_fetch_limited_reduces_only() {
        let j = JobId(0);
        let failures = vec![
            (TaskId::reduce(j, 1), FailureKind::FetchFailureLimit),
            (TaskId::reduce(j, 1), FailureKind::FetchFailureLimit),
            (TaskId::reduce(j, 2), FailureKind::FetchFailureLimit),
            (TaskId::reduce(j, 3), FailureKind::TaskOom),
            (TaskId::map(j, 0), FailureKind::FetchFailureLimit),
        ];
        assert_eq!(spatial_of(failures.into_iter()), 2);
    }

    #[test]
    fn temporal_is_the_longest_repeat_chain() {
        let j = JobId(0);
        let tasks = vec![TaskId::reduce(j, 0), TaskId::reduce(j, 0), TaskId::reduce(j, 0), TaskId::map(j, 1)];
        assert_eq!(temporal_of(tasks.into_iter()), 2);
        assert_eq!(temporal_of(std::iter::empty()), 0);
    }
}
