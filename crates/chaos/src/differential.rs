//! Differential cross-engine validation.
//!
//! Runs the *same* [`ChaosScenario`] on both engines at a matched small
//! scale — the threaded runtime over real bytes and the discrete-event
//! simulator over the same worker/rack/map/reduce counts — under each
//! recovery mode, and asserts engine-independent invariants:
//!
//! 1. **completes** — every engine × mode run finishes the job;
//! 2. **output-oracle** — every runtime run's committed bytes equal the
//!    `alm_workloads::reference` oracle's;
//! 3. **amplification-ordering** — the engines never *strictly contradict*
//!    each other on how recovery modes order by spatial amplification
//!    (if the simulator says mode A amplifies more than mode B, the
//!    runtime must not say the opposite);
//! 4. **no-mof-loss** — no lost map output goes unrecovered: the runtime
//!    commits every reduce partition, the simulator completes every
//!    reduce.

use std::sync::Arc;

use alm_sim::SimJobSpec;
use alm_types::{ClusterSpec, RecoveryMode, YarnConfig};
use alm_workloads::{Terasort, WorkloadKind};
use serde::{Deserialize, Serialize};

use crate::analyze::{EngineKind, ScenarioOutcome};
use crate::campaign::{RuntimeCampaign, SimCampaign};
use crate::scenario::ChaosScenario;

/// The matched small scale both engines run at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatchedScale {
    /// Worker nodes (runtime cluster size; simulator gets workers + 1
    /// master). 2 racks in both, `worker % 2` placement in both.
    pub workers: u32,
    pub num_maps: u32,
    pub num_reduces: u32,
    pub seed: u64,
    /// Terasort records per split for the runtime's real-byte job.
    pub records_per_split: u32,
    /// Scenario-seconds → wall-ms compression for the runtime.
    pub ms_per_scenario_sec: f64,
}

impl Default for MatchedScale {
    fn default() -> MatchedScale {
        MatchedScale {
            workers: 5,
            num_maps: 5,
            num_reduces: 3,
            seed: 42,
            records_per_split: 900,
            ms_per_scenario_sec: 5.0,
        }
    }
}

/// One named invariant check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invariant {
    pub name: String,
    pub passed: bool,
    pub detail: String,
}

/// The verdict of one differential validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DifferentialReport {
    pub scenario: String,
    pub modes: Vec<RecoveryMode>,
    pub invariants: Vec<Invariant>,
    /// Both engines' per-mode outcomes, for inspection.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl DifferentialReport {
    pub fn ok(&self) -> bool {
        self.invariants.iter().all(|i| i.passed)
    }

    pub fn render_text(&self) -> String {
        let mut out = format!("differential validation: scenario {}\n", self.scenario);
        for i in &self.invariants {
            out.push_str(&format!(
                "  [{}] {} — {}\n",
                if i.passed { "ok" } else { "FAIL" },
                i.name,
                i.detail
            ));
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("differential report serialisation cannot fail")
    }
}

fn sign(a: usize, b: usize) -> i8 {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// Validate `scenario` across both engines at [`MatchedScale::default`].
pub fn validate_scenario(scenario: &ChaosScenario, modes: &[RecoveryMode]) -> DifferentialReport {
    validate_at(scenario, modes, &MatchedScale::default())
}

/// The two campaigns — simulator and threaded runtime — that realise a
/// [`MatchedScale`] for a given mode set. Shared by the invariant
/// validator below and the magnitude calibrator (`crate::calibrate`).
pub(crate) fn matched_campaigns(
    modes: &[RecoveryMode],
    scale: &MatchedScale,
) -> (SimCampaign, RuntimeCampaign) {
    let yarn = YarnConfig::default();
    let sim = SimCampaign {
        spec: SimJobSpec::new(
            WorkloadKind::Terasort,
            scale.num_maps as u64 * yarn.dfs_block_size,
            scale.num_reduces,
            scale.seed,
        ),
        cluster: ClusterSpec { nodes: scale.workers + 1, ..ClusterSpec::default() },
        yarn,
        modes: modes.to_vec(),
    };
    let runtime = RuntimeCampaign {
        workload: Arc::new(Terasort::new(scale.records_per_split)),
        num_maps: scale.num_maps,
        num_reduces: scale.num_reduces,
        seed: scale.seed,
        nodes: scale.workers,
        ms_per_scenario_sec: scale.ms_per_scenario_sec,
        modes: modes.to_vec(),
    };
    (sim, runtime)
}

/// Validate `scenario` across both engines at an explicit matched scale.
pub fn validate_at(
    scenario: &ChaosScenario,
    modes: &[RecoveryMode],
    scale: &MatchedScale,
) -> DifferentialReport {
    let (sim, runtime) = matched_campaigns(modes, scale);

    let mut outcomes = sim.run(std::slice::from_ref(scenario));
    outcomes.extend(runtime.run(std::slice::from_ref(scenario)));

    let by = |engine: EngineKind, mode: RecoveryMode| {
        outcomes.iter().find(|o| o.engine == engine && o.mode == mode).expect("one outcome per engine x mode")
    };

    let mut invariants = Vec::new();

    let stuck: Vec<String> =
        outcomes.iter().filter(|o| !o.succeeded).map(|o| format!("{}/{:?}", o.engine, o.mode)).collect();
    invariants.push(Invariant {
        name: "completes".into(),
        passed: stuck.is_empty(),
        detail: if stuck.is_empty() {
            format!("all {} engine x mode runs completed", outcomes.len())
        } else {
            format!("did not complete: {}", stuck.join(", "))
        },
    });

    let unverified: Vec<String> = outcomes
        .iter()
        .filter(|o| o.engine == EngineKind::Runtime && o.output_verified != Some(true))
        .map(|o| format!("{:?}", o.mode))
        .collect();
    invariants.push(Invariant {
        name: "output-oracle".into(),
        passed: unverified.is_empty(),
        detail: if unverified.is_empty() {
            "every runtime run committed byte-identical oracle output".into()
        } else {
            format!("oracle mismatch under: {}", unverified.join(", "))
        },
    });

    let mut contradictions = Vec::new();
    for (i, &a) in modes.iter().enumerate() {
        for &b in &modes[i + 1..] {
            let s = sign(
                by(EngineKind::Simulator, a).spatial_amplification,
                by(EngineKind::Simulator, b).spatial_amplification,
            );
            let r = sign(
                by(EngineKind::Runtime, a).spatial_amplification,
                by(EngineKind::Runtime, b).spatial_amplification,
            );
            if s * r < 0 {
                contradictions.push(format!("{a:?} vs {b:?} (sim {s:+}, runtime {r:+})"));
            }
        }
    }
    invariants.push(Invariant {
        name: "amplification-ordering".into(),
        passed: contradictions.is_empty(),
        detail: if contradictions.is_empty() {
            "engines agree on how modes order by spatial amplification".into()
        } else {
            format!("engines contradict on: {}", contradictions.join("; "))
        },
    });

    let mof_loss: Vec<String> = outcomes
        .iter()
        .filter(|o| match o.engine {
            EngineKind::Runtime => o.partitions_committed != Some(scale.num_reduces),
            EngineKind::Simulator => !o.succeeded,
        })
        .map(|o| format!("{}/{:?}", o.engine, o.mode))
        .collect();
    invariants.push(Invariant {
        name: "no-mof-loss".into(),
        passed: mof_loss.is_empty(),
        detail: if mof_loss.is_empty() {
            format!("all {} reduce partitions recovered and committed everywhere", scale.num_reduces)
        } else {
            format!("unrecovered output loss under: {}", mof_loss.join(", "))
        },
    });

    // Correlated rack loss is the paper's hardest recovery case: when the
    // scenario takes out a whole rack, surviving replicas must carry the
    // job to byte-identical committed output on the runtime, and the
    // simulator must still complete under the full SfmAlg treatment.
    if scenario.faults.iter().any(|f| matches!(f, crate::scenario::ChaosFault::CrashRack { .. })) {
        let bad: Vec<String> = outcomes
            .iter()
            .filter(|o| match o.engine {
                EngineKind::Runtime => {
                    o.output_verified != Some(true) || o.partitions_committed != Some(scale.num_reduces)
                }
                EngineKind::Simulator => o.mode == RecoveryMode::SfmAlg && !o.succeeded,
            })
            .map(|o| format!("{}/{:?}", o.engine, o.mode))
            .collect();
        invariants.push(Invariant {
            name: "correlated-crash-recovery".into(),
            passed: bad.is_empty(),
            detail: if bad.is_empty() {
                "rack loss recovered: runtime output oracle-identical and fully committed, simulator completes under SfmAlg".into()
            } else {
                format!("rack loss not recovered under: {}", bad.join(", "))
            },
        });
    }

    // A network partition that heals inside the liveness window is the
    // transient trigger of §II-C's amplification: neither engine may
    // declare a node lost over it. When the scenario injects *only*
    // transient faults (partitions, slow nodes, degraded links — nothing
    // that legitimately fails), the bar is higher still: zero map
    // re-executions and zero
    // failure records, in every recovery mode including Baseline. A crash
    // fault in the same scenario legitimises NodeCrash records, so the
    // check is skipped entirely in that mix.
    let has_partition =
        scenario.faults.iter().any(|f| matches!(f, crate::scenario::ChaosFault::PartitionLink { .. }));
    let has_crash = scenario.faults.iter().any(|f| {
        matches!(
            f,
            crate::scenario::ChaosFault::CrashNode { .. }
                | crate::scenario::ChaosFault::CrashNodeAtReduceProgress { .. }
                | crate::scenario::ChaosFault::CrashRack { .. }
        )
    });
    if has_partition && !has_crash {
        let transient_only = scenario.faults.iter().all(|f| {
            matches!(
                f,
                crate::scenario::ChaosFault::PartitionLink { .. }
                    | crate::scenario::ChaosFault::SlowNode { .. }
                    | crate::scenario::ChaosFault::DegradedLink { .. }
            )
        });
        let bad: Vec<String> = outcomes
            .iter()
            .filter(|o| {
                o.node_loss_failures > 0
                    || (transient_only && (o.map_attempts != scale.num_maps || o.total_failures > 0))
            })
            .map(|o| {
                format!(
                    "{}/{:?} (node_loss {}, map_attempts {}, failures {})",
                    o.engine, o.mode, o.node_loss_failures, o.map_attempts, o.total_failures
                )
            })
            .collect();
        invariants.push(Invariant {
            name: "transient-no-node-loss".into(),
            passed: bad.is_empty(),
            detail: if bad.is_empty() {
                if transient_only {
                    "healed partition absorbed: zero node-lost declarations, zero map re-executions, zero failures in both engines".into()
                } else {
                    "healed partition absorbed: zero node-lost declarations in both engines".into()
                }
            } else {
                format!("partition mistaken for node loss under: {}", bad.join(", "))
            },
        });
    }

    // An *asymmetric* partition is the half-open gray link: one direction
    // cut, the reverse (and with it heartbeats) healthy. Absent a crash
    // fault, neither engine may ever declare a node lost over it — the
    // fetcher parks, the source keeps serving everyone else, and the run
    // completes.
    let has_asymmetric = scenario.faults.iter().any(|f| {
        matches!(
            f,
            crate::scenario::ChaosFault::PartitionLink { direction, .. }
                if *direction != alm_types::LinkDirection::Both
        )
    });
    if has_asymmetric && !has_crash {
        let bad: Vec<String> = outcomes
            .iter()
            .filter(|o| o.node_loss_failures > 0 || !o.succeeded)
            .map(|o| {
                format!(
                    "{}/{:?} (succeeded {}, node_loss {})",
                    o.engine, o.mode, o.succeeded, o.node_loss_failures
                )
            })
            .collect();
        invariants.push(Invariant {
            name: "asymmetric-partition-no-node-loss".into(),
            passed: bad.is_empty(),
            detail: if bad.is_empty() {
                "half-open link absorbed: both engines complete with zero node-lost declarations".into()
            } else {
                format!("asymmetric partition mistaken for node loss under: {}", bad.join(", "))
            },
        });
    }

    // A flapping link (bounded sever→heal cycles) is the backoff stress
    // case: each heal re-pumps parked fetches and each re-sever parks them
    // again, and the exponential-backoff retry budget must survive every
    // cycle. When nothing else in the scenario can legitimately fail, no
    // reducer may be preempted through FetchFailureLimit and no failure may
    // be recorded at all, in either engine, in any mode.
    let has_flap = scenario
        .faults
        .iter()
        .any(|f| matches!(f, crate::scenario::ChaosFault::PartitionLink { flap: Some(_), .. }));
    if has_flap && scenario.faults.iter().all(|f| !f.produces_failures()) {
        let bad: Vec<String> = outcomes
            .iter()
            .filter(|o| !o.succeeded || o.spatial_amplification > 0 || o.total_failures > 0)
            .map(|o| {
                format!(
                    "{}/{:?} (succeeded {}, spatial {}, failures {})",
                    o.engine, o.mode, o.succeeded, o.spatial_amplification, o.total_failures
                )
            })
            .collect();
        invariants.push(Invariant {
            name: "flap-backoff-budget".into(),
            passed: bad.is_empty(),
            detail: if bad.is_empty() {
                "flap cycles absorbed: retry budget intact across every heal, zero preemptions and zero failures in both engines".into()
            } else {
                format!("flap cycles exhausted the retry budget under: {}", bad.join(", "))
            },
        });
    }

    // Checksummed corruption recovery must stay bounded and invisible to
    // the fetch-failure accounting: both engines complete, the runtime's
    // committed bytes still match the oracle with every log recovery
    // within one logging interval, and — when nothing else in the scenario
    // can fail — no reducer is ever preempted through FetchFailureLimit.
    let has_corruption =
        scenario.faults.iter().any(|f| matches!(f, crate::scenario::ChaosFault::CorruptData { .. }));
    if has_corruption {
        let nothing_else_fails = scenario.faults.iter().all(|f| !f.produces_failures());
        let bad: Vec<String> = outcomes
            .iter()
            .filter(|o| {
                let engine_ok = match o.engine {
                    EngineKind::Runtime => {
                        o.succeeded && o.recoveries_bounded == Some(true) && o.output_verified == Some(true)
                    }
                    EngineKind::Simulator => o.succeeded,
                };
                !engine_ok || (nothing_else_fails && o.spatial_amplification > 0)
            })
            .map(|o| {
                format!(
                    "{}/{:?} (succeeded {}, bounded {:?}, spatial {})",
                    o.engine, o.mode, o.succeeded, o.recoveries_bounded, o.spatial_amplification
                )
            })
            .collect();
        invariants.push(Invariant {
            name: "corruption-bounded-recovery".into(),
            passed: bad.is_empty(),
            detail: if bad.is_empty() {
                "corruption absorbed: both engines complete, runtime recoveries bounded by one logging interval, no FetchFailureLimit preemption".into()
            } else {
                format!("corruption recovery violated under: {}", bad.join(", "))
            },
        });
    }

    // Committed-output rot must be invisible to consumers: with up to
    // R−1 replicas of a block corrupted, the verified read path serves
    // clean bytes by failing over (charged to the faulted scenario as
    // `dfs_read_failovers`), and the repair pipeline re-replicates until
    // no corrupt replica remains — replication restored, repair bytes
    // charged. Both engines must agree.
    let dfs_rot: std::collections::BTreeSet<(u32, u32)> = scenario
        .faults
        .iter()
        .filter_map(|f| match f {
            crate::scenario::ChaosFault::CorruptData {
                target: alm_types::CorruptTarget::DfsBlock { reduce_index, block },
                ..
            } => Some((*reduce_index, *block)),
            _ => None,
        })
        .collect();
    if !dfs_rot.is_empty() {
        let want_failovers = dfs_rot.len() as u32;
        let bad: Vec<String> = outcomes
            .iter()
            .filter(|o| {
                let engine_ok = match o.engine {
                    EngineKind::Runtime => {
                        o.succeeded
                            && o.output_verified == Some(true)
                            && o.partitions_committed == Some(scale.num_reduces)
                    }
                    EngineKind::Simulator => o.succeeded,
                };
                !engine_ok
                    || o.dfs_read_failovers < want_failovers
                    || o.dfs_corrupt_replicas > 0
                    || o.dfs_repair_bytes == 0
            })
            .map(|o| {
                format!(
                    "{}/{:?} (failovers {}, corrupt replicas {}, repair bytes {})",
                    o.engine, o.mode, o.dfs_read_failovers, o.dfs_corrupt_replicas, o.dfs_repair_bytes
                )
            })
            .collect();
        invariants.push(Invariant {
            name: "dfs-verified-read".into(),
            passed: bad.is_empty(),
            detail: if bad.is_empty() {
                format!(
                    "committed-output rot absorbed: ≥{want_failovers} read failover(s) served clean bytes and repair restored replication in both engines"
                )
            } else {
                format!("rotten bytes surfaced or replication unrepaired under: {}", bad.join(", "))
            },
        });
    }

    DifferentialReport { scenario: scenario.name.clone(), modes: modes.to_vec(), invariants, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ChaosFault;

    #[test]
    fn task_kill_scenario_validates_across_engines() {
        let scenario =
            ChaosScenario::new("diff-kill").with(ChaosFault::KillReduce { index: 1, at_progress: 0.5 });
        let report = validate_scenario(&scenario, &[RecoveryMode::Baseline, RecoveryMode::SfmAlg]);
        assert!(report.ok(), "{}", report.render_text());
        assert_eq!(report.outcomes.len(), 4);
        let json = report.to_json();
        let back: DifferentialReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn sign_is_a_three_way_comparison() {
        assert_eq!(sign(0, 1), -1);
        assert_eq!(sign(1, 1), 0);
        assert_eq!(sign(2, 1), 1);
    }
}
