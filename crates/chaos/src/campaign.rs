//! Campaign execution: scenarios × recovery modes × engines.
//!
//! A campaign takes declarative [`ChaosScenario`]s and executes each under
//! every recovery mode of interest, on the discrete-event simulator
//! ([`SimCampaign`], paper scale, virtual time) and/or the threaded
//! runtime ([`RuntimeCampaign`], real bytes — every successful run's
//! committed output is checked against the `alm_workloads::reference`
//! oracle). Outcomes accumulate into a [`CampaignReport`] that renders as
//! text/markdown and serialises to JSON.

use std::sync::Arc;

use alm_metrics::TextTable;
use alm_runtime::am::run_job;
use alm_runtime::{JobDef, MiniCluster};
use alm_sim::experiment::run_one;
use alm_sim::{ExperimentEnv, SimFault, SimJobSpec};
use alm_types::{AlmConfig, ClusterSpec, JobId, RecoveryMode, YarnConfig};
use alm_workloads::reference::{canonicalize, reference_output};
use alm_workloads::{Record, Workload};
use serde::{Deserialize, Serialize};

use crate::analyze::{analyze_runtime, analyze_sim, DfsAudit, EngineKind, ScenarioOutcome};
use crate::scenario::{ChaosScenario, LoweringProfile};
use crate::space::FaultSpace;
use crate::warehouse::TenantImpactRow;

/// Simulator-side campaign configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCampaign {
    pub spec: SimJobSpec,
    pub cluster: ClusterSpec,
    pub yarn: YarnConfig,
    pub modes: Vec<RecoveryMode>,
}

impl SimCampaign {
    /// Paper testbed (21 nodes / 2 racks, Table I) around a job spec.
    pub fn paper(spec: SimJobSpec, modes: Vec<RecoveryMode>) -> SimCampaign {
        SimCampaign { spec, cluster: ClusterSpec::default(), yarn: YarnConfig::default(), modes }
    }

    pub fn profile(&self) -> LoweringProfile {
        LoweringProfile::simulator(&self.cluster)
    }

    /// The fixed-seed golden-gate campaign behind the `campaign_gate` CI
    /// regression gate: `n` scenarios sampled from a §V-shaped
    /// [`FaultSpace`] at `seed`, to be run at paper scale under all four
    /// recovery modes. Deterministic in `(seed, n)`; any policy change
    /// that shifts amplification/failure counts shows up as a diff
    /// against the checked-in golden report.
    pub fn golden_gate(seed: u64, n: usize) -> (SimCampaign, Vec<ChaosScenario>) {
        let spec = SimJobSpec::paper(alm_workloads::WorkloadKind::Terasort, seed);
        let campaign = SimCampaign::paper(
            spec.clone(),
            vec![RecoveryMode::Baseline, RecoveryMode::Alg, RecoveryMode::Sfm, RecoveryMode::SfmAlg],
        );
        let profile = campaign.profile();
        // Same map-count derivation as the simulator's quantity model:
        // one map per DFS block of input.
        let num_maps = spec.input_bytes.div_ceil(campaign.yarn.dfs_block_size).max(1) as u32;
        let scenarios = FaultSpace::paper_like(profile.workers, profile.racks, num_maps, spec.num_reduces)
            .sample(n, seed);
        (campaign, scenarios)
    }

    /// Run one scenario under one mode.
    pub fn run_scenario(&self, scenario: &ChaosScenario, mode: RecoveryMode) -> ScenarioOutcome {
        let env = ExperimentEnv {
            cluster: self.cluster.clone(),
            yarn: self.yarn.clone(),
            alm: AlmConfig::with_mode(mode),
        };
        let profile = self.profile();
        let plan = scenario.lower(JobId(0), &profile);
        let report = run_one(&self.spec, &env, SimFault::lower_plan(&plan));
        analyze_sim(scenario, mode, &report, &profile)
    }

    /// Every scenario under every mode.
    pub fn run(&self, scenarios: &[ChaosScenario]) -> Vec<ScenarioOutcome> {
        let mut out = Vec::with_capacity(scenarios.len() * self.modes.len());
        for s in scenarios {
            for &m in &self.modes {
                out.push(self.run_scenario(s, m));
            }
        }
        out
    }
}

/// Threaded-runtime campaign configuration (test-scaled, real bytes).
#[derive(Clone)]
pub struct RuntimeCampaign {
    pub workload: Arc<dyn Workload>,
    pub num_maps: u32,
    pub num_reduces: u32,
    pub seed: u64,
    /// Cluster size; `MiniCluster::for_tests` supplies 2 racks and the
    /// millisecond-scale `YarnConfig`.
    pub nodes: u32,
    /// Scenario-seconds compress to this many wall milliseconds.
    pub ms_per_scenario_sec: f64,
    pub modes: Vec<RecoveryMode>,
}

impl RuntimeCampaign {
    /// The lowering profile for this campaign's cluster. The rack count is
    /// single-sourced from [`MiniCluster::test_racks`] — the same policy
    /// [`MiniCluster::for_tests`] builds its topology with — so rack-fault
    /// lowering and the actual cluster can never disagree on membership.
    pub fn profile(&self) -> LoweringProfile {
        LoweringProfile::runtime(self.nodes, MiniCluster::test_racks(self.nodes), self.ms_per_scenario_sec)
    }

    fn oracle(&self) -> Vec<Record> {
        canonicalize(&reference_output(self.workload.as_ref(), self.num_maps, self.num_reduces, self.seed))
    }

    fn committed(cluster: &MiniCluster, job: &JobDef) -> Option<Vec<Record>> {
        let mut all = Vec::new();
        for r in 0..job.num_reduces {
            let data = cluster.dfs.read(&job.output_path(r)).ok()?;
            let mut off = 0;
            while let Some((k, v, next)) = alm_shuffle::codec::decode_at(&data, off).ok()? {
                all.push(Record::new(k.to_vec(), v.to_vec()));
                off = next;
            }
        }
        all.sort();
        Some(all)
    }

    /// Reduce partitions whose committed output file is present and fully
    /// readable on the DFS. This is *commit status*, not record presence:
    /// a legitimately empty partition (its key range got no records)
    /// counts as committed, while a committed file whose blocks all lost
    /// their live replicas does not.
    pub fn committed_partitions(cluster: &MiniCluster, job: &JobDef) -> u32 {
        (0..job.num_reduces).filter(|r| cluster.dfs.is_available(&job.output_path(*r))).count() as u32
    }

    /// Run one scenario under one mode, verifying committed bytes against
    /// the reference oracle.
    pub fn run_scenario(&self, scenario: &ChaosScenario, mode: RecoveryMode) -> ScenarioOutcome {
        let cluster = Arc::new(MiniCluster::for_tests(self.nodes));
        let mut alm = AlmConfig::with_mode(mode);
        alm.logging_interval_ms = 1; // log eagerly at test scale
        let job =
            JobDef::new(JobId(0), self.workload.clone(), self.num_maps, self.num_reduces, self.seed, alm);
        // Lower against the topology the cluster actually has, not a
        // parallel reconstruction of it.
        let profile = LoweringProfile::runtime(self.nodes, cluster.racks(), self.ms_per_scenario_sec);
        let plan = scenario.lower(job.id, &profile);
        let report = run_job(cluster.clone(), job.clone(), plan);
        // The oracle comparison reads every committed partition through the
        // verified path: rotten replicas are detected here, charged as read
        // failovers, and queued for repair...
        let verified =
            report.succeeded && Self::committed(&cluster, &job).is_some_and(|got| got == self.oracle());
        // ...then the background repair pipeline runs to quiescence, and
        // commit status is counted on the healed DFS.
        cluster.dfs.repair();
        let partitions = Self::committed_partitions(&cluster, &job);
        let stats = cluster.dfs.stats();
        let dfs = DfsAudit {
            read_failovers: stats.read_failovers as u32,
            repair_bytes: stats.repair_bytes,
            corrupt_replicas: cluster.dfs.corrupt_replica_count() as u32,
        };
        analyze_runtime(scenario, mode, &report, &profile, verified, partitions, dfs)
    }

    /// Every scenario under every mode.
    pub fn run(&self, scenarios: &[ChaosScenario]) -> Vec<ScenarioOutcome> {
        let mut out = Vec::with_capacity(scenarios.len() * self.modes.len());
        for s in scenarios {
            for &m in &self.modes {
                out.push(self.run_scenario(s, m));
            }
        }
        out
    }
}

/// Accumulated campaign results + renderers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    pub name: String,
    pub seed: u64,
    pub outcomes: Vec<ScenarioOutcome>,
    /// Per-tenant impact rows from warehouse-scale runs (empty for
    /// single-job campaigns; see [`crate::warehouse`]).
    pub tenant_rows: Vec<TenantImpactRow>,
}

impl CampaignReport {
    pub fn new(name: impl Into<String>, seed: u64) -> CampaignReport {
        CampaignReport { name: name.into(), seed, outcomes: Vec::new(), tenant_rows: Vec::new() }
    }

    pub fn extend(&mut self, outcomes: Vec<ScenarioOutcome>) -> &mut Self {
        self.outcomes.extend(outcomes);
        self
    }

    pub fn extend_tenants(&mut self, rows: Vec<TenantImpactRow>) -> &mut Self {
        self.tenant_rows.extend(rows);
        self
    }

    fn modes(&self) -> Vec<(EngineKind, RecoveryMode)> {
        let mut keys: Vec<(EngineKind, RecoveryMode)> =
            self.outcomes.iter().map(|o| (o.engine, o.mode)).collect();
        keys.sort_by_key(|(e, m)| (*e, *m as u8));
        keys.dedup();
        keys
    }

    fn of(&self, engine: EngineKind, mode: RecoveryMode) -> impl Iterator<Item = &ScenarioOutcome> {
        self.outcomes.iter().filter(move |o| o.engine == engine && o.mode == mode)
    }

    /// Per engine × mode aggregate (the Table II shape, campaign-wide).
    pub fn mode_table(&self) -> TextTable {
        let mut t = TextTable::new(
            format!("campaign {} (seed {})", self.name, self.seed),
            &["engine", "mode", "scenarios", "ok", "spatial>0", "spatial total", "temporal max", "mean secs"],
        );
        for (engine, mode) in self.modes() {
            let runs: Vec<&ScenarioOutcome> = self.of(engine, mode).collect();
            let n = runs.len().max(1);
            let mean = runs.iter().map(|o| o.duration_secs).sum::<f64>() / n as f64;
            t.row(&[
                engine.to_string(),
                format!("{mode:?}"),
                runs.len().to_string(),
                runs.iter().filter(|o| o.succeeded).count().to_string(),
                runs.iter().filter(|o| o.spatial_amplification > 0).count().to_string(),
                runs.iter().map(|o| o.spatial_amplification).sum::<usize>().to_string(),
                runs.iter().map(|o| o.temporal_amplification).max().unwrap_or(0).to_string(),
                format!("{mean:.1}"),
            ]);
        }
        t
    }

    /// Scenarios where `baseline` shows spatial amplification, paired with
    /// `treated`'s count on the same scenario — the paper's headline
    /// contrast (Table II: YARN amplifies, SFM does not).
    pub fn spatial_contrast(
        &self,
        engine: EngineKind,
        baseline: RecoveryMode,
        treated: RecoveryMode,
    ) -> Vec<(String, usize, usize)> {
        self.of(engine, baseline)
            .filter(|b| b.spatial_amplification > 0)
            .filter_map(|b| {
                self.of(engine, treated)
                    .find(|t| t.scenario == b.scenario)
                    .map(|t| (b.scenario.clone(), b.spatial_amplification, t.spatial_amplification))
            })
            .collect()
    }

    /// Per-tenant impact table from warehouse-scale runs. `None` when the
    /// campaign had no multi-tenant component.
    pub fn tenant_table(&self) -> Option<TextTable> {
        if self.tenant_rows.is_empty() {
            return None;
        }
        let mut t = TextTable::new(
            format!("campaign {} per-tenant impact (seed {})", self.name, self.seed),
            &[
                "scenario",
                "mode",
                "policy",
                "tenant",
                "jobs",
                "ok",
                "failures",
                "fetch>0",
                "slowdown",
                "clean",
                "amplification",
            ],
        );
        for r in &self.tenant_rows {
            t.row(&[
                r.scenario.clone(),
                format!("{:?}", r.mode),
                r.policy.clone(),
                r.tenant.clone(),
                r.jobs.to_string(),
                r.finished.to_string(),
                r.failures.to_string(),
                r.fetch_failures.to_string(),
                format!("{:.2}", r.mean_slowdown),
                format!("{:.2}", r.clean_mean_slowdown),
                format!("{:.2}", r.amplification()),
            ]);
        }
        Some(t)
    }

    /// Ranked root-cause triage over every outcome in the campaign (see
    /// [`crate::triage`]): failure signatures grouped and ordered by
    /// severity × blast radius, each with a remediation.
    pub fn triage(&self) -> crate::triage::TriageReport {
        crate::triage::triage(&self.outcomes)
    }

    pub fn render_text(&self) -> String {
        let mut out = self.mode_table().render_text();
        if let Some(t) = self.tenant_table() {
            out.push('\n');
            out.push_str(&t.render_text());
        }
        out
    }

    pub fn render_markdown(&self) -> String {
        let mut out = self.mode_table().render_markdown();
        if let Some(t) = self.tenant_table() {
            out.push('\n');
            out.push_str(&t.render_markdown());
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("campaign report serialisation cannot fail")
    }

    /// Canonical golden-file form: wall-clock-sensitive fields are
    /// stripped (`duration_secs` varies with host load on the runtime
    /// engine and with float formatting), keys render in a fixed order,
    /// and every kept value is an integer, bool or string. What stays is
    /// exactly the policy-sensitive surface — success, injected/total
    /// failure counts, spatial/temporal amplification, FCM attempts,
    /// map attempts, node-loss and corruption-refetch counts and (when
    /// present) bounded-recovery / oracle verdicts — so a recovery-policy regression
    /// diffs against the checked-in golden report while a slow CI host
    /// does not.
    pub fn canonical_json(&self) -> String {
        use serde_json::Value;
        let outcomes: Vec<Value> = self
            .outcomes
            .iter()
            .map(|o| {
                let mut fields = vec![
                    ("scenario", Value::Str(o.scenario.clone())),
                    ("engine", Value::Str(o.engine.to_string())),
                    ("mode", Value::Str(format!("{:?}", o.mode))),
                    ("succeeded", Value::Bool(o.succeeded)),
                    ("injected_faults", Value::U64(o.injected_faults as u64)),
                    ("total_failures", Value::U64(o.total_failures as u64)),
                    ("spatial_amplification", Value::U64(o.spatial_amplification as u64)),
                    ("temporal_amplification", Value::U64(o.temporal_amplification as u64)),
                    ("fcm_attempts", Value::U64(o.fcm_attempts as u64)),
                    ("map_attempts", Value::U64(o.map_attempts as u64)),
                    ("node_loss_failures", Value::U64(o.node_loss_failures as u64)),
                    ("corruption_refetches", Value::U64(o.corruption_refetches as u64)),
                ];
                // Gray-link drops appear only when a run actually crossed a
                // degraded link, so golden files from campaigns without
                // DegradedLink faults stay byte-identical.
                if o.degraded_drops > 0 {
                    fields.push(("degraded_drops", Value::U64(o.degraded_drops as u64)));
                }
                if let Some(b) = o.recoveries_bounded {
                    fields.push(("recoveries_bounded", Value::Bool(b)));
                }
                if let Some(v) = o.output_verified {
                    fields.push(("output_verified", Value::Bool(v)));
                }
                if let Some(p) = o.partitions_committed {
                    fields.push(("partitions_committed", Value::U64(p as u64)));
                }
                // DFS replica-management counters appear only when a run
                // actually exercised failover/repair, so golden files from
                // campaigns without DfsBlock faults stay byte-identical.
                if o.dfs_read_failovers > 0 {
                    fields.push(("dfs_read_failovers", Value::U64(o.dfs_read_failovers as u64)));
                }
                if o.dfs_repair_bytes > 0 {
                    fields.push(("dfs_repair_bytes", Value::U64(o.dfs_repair_bytes)));
                }
                if o.dfs_corrupt_replicas > 0 {
                    fields.push(("dfs_corrupt_replicas", Value::U64(o.dfs_corrupt_replicas as u64)));
                }
                // Chain/resident counters appear only for in-memory chain
                // campaigns, so single-job golden files stay byte-identical.
                if o.chain_iteration > 0 {
                    fields.push(("chain_iteration", Value::U64(o.chain_iteration as u64)));
                }
                if o.resident_hits > 0 {
                    fields.push(("resident_hits", Value::U64(o.resident_hits)));
                }
                Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            })
            .collect();
        let mut root = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("seed".to_string(), Value::U64(self.seed)),
            ("outcomes".to_string(), Value::Array(outcomes)),
        ];
        // Emitted only when present, so single-job golden files (and their
        // byte layout) are untouched by the warehouse extension. Slowdowns
        // quantize to milli-units like the sched reports.
        if !self.tenant_rows.is_empty() {
            let milli = |v: f64| Value::I64(if v < 0.0 { -1 } else { (v * 1000.0).round() as i64 });
            let rows: Vec<Value> = self
                .tenant_rows
                .iter()
                .map(|r| {
                    Value::Object(
                        vec![
                            ("scenario", Value::Str(r.scenario.clone())),
                            ("mode", Value::Str(format!("{:?}", r.mode))),
                            ("policy", Value::Str(r.policy.clone())),
                            ("tenant", Value::Str(r.tenant.clone())),
                            ("jobs", Value::U64(r.jobs as u64)),
                            ("finished", Value::U64(r.finished as u64)),
                            ("failures", Value::U64(r.failures as u64)),
                            ("fetch_failures", Value::U64(r.fetch_failures as u64)),
                            ("slowdown_milli", milli(r.mean_slowdown)),
                            ("clean_slowdown_milli", milli(r.clean_mean_slowdown)),
                            ("amplification_milli", milli(r.amplification())),
                        ]
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                    )
                })
                .collect();
            root.push(("tenants".to_string(), Value::Array(rows)));
        }
        serde_json::to_string_pretty(&Value::Object(root))
            .expect("canonical report serialisation cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::EngineKind;
    use crate::scenario::ChaosFault;
    use alm_types::units::GB;
    use alm_workloads::{Terasort, WorkloadKind};

    fn kill_reduce(name: &str, index: u32, p: f64) -> ChaosScenario {
        ChaosScenario::new(name).with(ChaosFault::KillReduce { index, at_progress: p })
    }

    #[test]
    fn sim_campaign_runs_scenarios_across_modes() {
        let campaign = SimCampaign::paper(
            SimJobSpec::new(WorkloadKind::Terasort, GB, 4, 11),
            vec![RecoveryMode::Baseline, RecoveryMode::SfmAlg],
        );
        let outcomes = campaign.run(&[kill_reduce("k0", 0, 0.5), kill_reduce("k1", 1, 0.2)]);
        assert_eq!(outcomes.len(), 4);
        for o in &outcomes {
            assert!(o.succeeded, "{o:?}");
            assert_eq!(o.engine, EngineKind::Simulator);
            assert_eq!(o.injected_faults, 1);
            assert!(o.total_failures >= 1, "the injected kill must be recorded: {o:?}");
        }
    }

    #[test]
    fn runtime_campaign_verifies_output_against_oracle() {
        let campaign = RuntimeCampaign {
            workload: Arc::new(Terasort::new(600)),
            num_maps: 3,
            num_reduces: 2,
            seed: 42,
            nodes: 4,
            ms_per_scenario_sec: 5.0,
            modes: vec![RecoveryMode::Baseline],
        };
        let outcomes = campaign.run(&[kill_reduce("k", 0, 0.5)]);
        assert_eq!(outcomes.len(), 1);
        let o = &outcomes[0];
        assert!(o.succeeded, "{o:?}");
        assert_eq!(o.engine, EngineKind::Runtime);
        assert_eq!(o.output_verified, Some(true), "committed bytes must match the oracle");
    }

    #[test]
    fn report_aggregates_and_contrasts() {
        let mk = |scenario: &str, mode, spatial| ScenarioOutcome {
            scenario: scenario.into(),
            engine: EngineKind::Simulator,
            mode,
            succeeded: true,
            duration_secs: 100.0,
            injected_faults: 1,
            total_failures: spatial + 1,
            spatial_amplification: spatial,
            temporal_amplification: 0,
            fcm_attempts: 0,
            map_attempts: 5,
            node_loss_failures: 0,
            corruption_refetches: 0,
            degraded_drops: 0,
            recoveries_bounded: None,
            output_verified: None,
            partitions_committed: None,
            dfs_read_failovers: 0,
            dfs_repair_bytes: 0,
            dfs_corrupt_replicas: 0,
            chain_iteration: 0,
            resident_hits: 0,
        };
        let mut r = CampaignReport::new("unit", 1);
        r.extend(vec![
            mk("a", RecoveryMode::Baseline, 2),
            mk("a", RecoveryMode::SfmAlg, 0),
            mk("b", RecoveryMode::Baseline, 0),
            mk("b", RecoveryMode::SfmAlg, 0),
        ]);
        let contrast =
            r.spatial_contrast(EngineKind::Simulator, RecoveryMode::Baseline, RecoveryMode::SfmAlg);
        assert_eq!(contrast, vec![("a".to_string(), 2, 0)]);
        let txt = r.render_text();
        assert!(txt.contains("Baseline") && txt.contains("SfmAlg"), "{txt}");
        let md = r.render_markdown();
        assert!(md.contains("| sim | Baseline |"), "{md}");
        let back: CampaignReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}
