//! Cross-engine **magnitude** calibration.
//!
//! The differential validator (`crate::differential`) checks *ordinal*
//! agreement: both engines complete, order recovery modes the same way,
//! lose no output. This module checks the stronger *cardinal* claim: when
//! the same fault hits both engines at matched scale, the **normalized
//! slowdown** — scenario duration over that engine's own fault-free
//! baseline, each in its native clock (virtual seconds for the simulator,
//! wall time for the runtime) — agrees within a recorded tolerance band.
//!
//! Two deliberate restrictions keep the comparison meaningful:
//!
//! * The calibration suite ([`calibration_suite`]) uses only
//!   *progress-triggered task kills*. Node crashes are excluded: crash
//!   **detection** costs a fixed `node_liveness_timeout` that the
//!   test-scaled runtime compresses to hundreds of wall-ms against ~ms
//!   jobs while the simulator charges at paper scale against
//!   ~100-virtual-second jobs. Slow nodes are excluded for the dual
//!   reason: the runtime throttle sleeps a fixed real duration per record
//!   while the simulator stretches task time proportionally, so at
//!   matched (compressed) scale the runtime's slowdown is magnified
//!   ~3–5x relative to the simulator's (measured: 4.6–7.2x vs 1.5x).
//!   Both fault classes stay covered by the ordinal invariants and the
//!   golden campaign gate.
//! * Runtime durations take the **minimum over repeats**: wall time has
//!   additive scheduler noise, and the minimum is the standard estimator
//!   for the noise-free cost.
//!
//! The measured per-mode bands live in [`ToleranceBands::measured`] and
//! are documented with the raw measurements in `EXPERIMENTS.md`.

use alm_types::RecoveryMode;
use serde::{Deserialize, Serialize};

use crate::differential::{matched_campaigns, DifferentialReport, Invariant, MatchedScale};
use crate::scenario::{ChaosFault, ChaosScenario};

/// Per-mode tolerance on the normalized-slowdown gap between engines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleranceBands {
    /// Mode-specific bands; modes not listed fall back to `default_band`.
    pub bands: Vec<(RecoveryMode, f64)>,
    pub default_band: f64,
}

impl ToleranceBands {
    /// One band for every mode.
    pub fn uniform(band: f64) -> ToleranceBands {
        ToleranceBands { bands: Vec::new(), default_band: band }
    }

    /// The bands measured at [`MatchedScale::default`] over
    /// [`calibration_suite`] (see `EXPERIMENTS.md`, "Cross-engine
    /// calibration"). Worst per-mode gap observed across 6 calibration
    /// runs (min over 3 runtime repeats each): Baseline 0.71, Alg 0.57,
    /// Sfm 0.72, SfmAlg 0.66. Bands add ~0.8 margin for wall-clock
    /// quantisation — runtime jobs at this scale run 4–6 ms against a
    /// 1 ms report resolution, so one tick moves a normalized slowdown
    /// by ~0.2–0.35 and slower CI hosts widen that further.
    pub fn measured() -> ToleranceBands {
        ToleranceBands {
            bands: vec![
                (RecoveryMode::Baseline, 1.5),
                (RecoveryMode::Alg, 1.4),
                (RecoveryMode::Sfm, 1.5),
                (RecoveryMode::SfmAlg, 1.5),
            ],
            default_band: 1.5,
        }
    }

    /// The bands measured at [`MatchedScale::default`] over
    /// [`transient_calibration_suite`] (see `EXPERIMENTS.md`, "Transient
    /// calibration"). Worst per-mode gaps across 3 calibration runs (min
    /// over 3 runtime repeats each): Baseline 2.38, Alg 0.40, Sfm 1.56,
    /// SfmAlg 0.63. The tail comes from the partition scenarios: when a
    /// parked fetch straddles one backoff window on a ~10 wall-ms runtime
    /// job, the wait alone moves the normalized slowdown by 1–2.5x, while
    /// the simulator rides out the same window against a ~8-virtual-second
    /// job for ~1.0x. Corruption scenarios agree tightly (≤ 0.6 — one
    /// re-fetched chunk in both clocks). Windows in the suite are kept
    /// short (≤3 scenario seconds) to bound the structural gap; longer
    /// windows are deliberately excluded (same clock-incommensurability
    /// argument that excludes node crashes from the kill suite).
    pub fn transient_measured() -> ToleranceBands {
        ToleranceBands {
            bands: vec![
                (RecoveryMode::Baseline, 3.5),
                (RecoveryMode::Alg, 3.5),
                (RecoveryMode::Sfm, 3.5),
                (RecoveryMode::SfmAlg, 3.5),
            ],
            default_band: 3.5,
        }
    }

    /// The band for `mode`.
    pub fn band(&self, mode: RecoveryMode) -> f64 {
        self.bands.iter().find(|(m, _)| *m == mode).map(|(_, b)| *b).unwrap_or(self.default_band)
    }
}

/// One scenario's normalized slowdown on each engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowdownPoint {
    pub scenario: String,
    /// Simulator: scenario virtual-secs / fault-free virtual-secs.
    pub sim: f64,
    /// Runtime: min-over-repeats wall-secs / fault-free wall-secs.
    pub runtime: f64,
}

impl SlowdownPoint {
    /// Absolute cross-engine gap in normalized slowdown.
    pub fn gap(&self) -> f64 {
        (self.sim - self.runtime).abs()
    }
}

/// One recovery mode's slowdown curve across the calibration suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeCurve {
    pub mode: RecoveryMode,
    /// Fault-free baseline durations in each engine's native clock.
    pub sim_baseline_secs: f64,
    pub runtime_baseline_secs: f64,
    pub points: Vec<SlowdownPoint>,
}

impl ModeCurve {
    pub fn max_gap(&self) -> f64 {
        self.points.iter().map(SlowdownPoint::gap).fold(0.0, f64::max)
    }

    pub fn mean_gap(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(SlowdownPoint::gap).sum::<f64>() / self.points.len() as f64
    }
}

/// The full calibration: per-mode curves at one matched scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    pub scale: MatchedScale,
    /// Runtime repeats per scenario (min taken over them).
    pub repeats: u32,
    pub curves: Vec<ModeCurve>,
}

impl CalibrationReport {
    /// Per-mode magnitude invariants: the worst cross-engine slowdown gap
    /// in each mode's curve stays inside that mode's tolerance band.
    pub fn check(&self, bands: &ToleranceBands) -> Vec<Invariant> {
        self.curves
            .iter()
            .map(|c| {
                let band = bands.band(c.mode);
                let max_gap = c.max_gap();
                let worst = c
                    .points
                    .iter()
                    .max_by(|a, b| a.gap().total_cmp(&b.gap()))
                    .map(|p| format!("{} (sim {:.2}x vs runtime {:.2}x)", p.scenario, p.sim, p.runtime))
                    .unwrap_or_else(|| "no calibration points".into());
                Invariant {
                    name: format!("magnitude-{:?}", c.mode),
                    passed: max_gap <= band,
                    detail: format!(
                        "max normalized-slowdown gap {max_gap:.2} (band {band:.2}), worst: {worst}"
                    ),
                }
            })
            .collect()
    }

    pub fn render_text(&self) -> String {
        let mut out = format!(
            "cross-engine calibration at workers={} maps={} reduces={} (runtime min over {} repeats)\n",
            self.scale.workers, self.scale.num_maps, self.scale.num_reduces, self.repeats
        );
        for c in &self.curves {
            out.push_str(&format!(
                "  {:?}: sim baseline {:.1}s, runtime baseline {:.4}s, mean gap {:.2}, max gap {:.2}\n",
                c.mode,
                c.sim_baseline_secs,
                c.runtime_baseline_secs,
                c.mean_gap(),
                c.max_gap()
            ));
            for p in &c.points {
                out.push_str(&format!(
                    "    {:<24} sim {:>6.2}x  runtime {:>6.2}x  gap {:.2}\n",
                    p.scenario,
                    p.sim,
                    p.runtime,
                    p.gap()
                ));
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("calibration report serialisation cannot fail")
    }
}

/// The shared calibration suite: progress-triggered task kills only (see
/// the module docs for why node crashes and slow nodes are excluded from
/// magnitude comparison).
pub fn calibration_suite() -> Vec<ChaosScenario> {
    vec![
        ChaosScenario::new("cal-kill-reduce-early")
            .with(ChaosFault::KillReduce { index: 0, at_progress: 0.2 }),
        ChaosScenario::new("cal-kill-reduce-late")
            .with(ChaosFault::KillReduce { index: 1, at_progress: 0.8 }),
        ChaosScenario::new("cal-kill-map-mid").with(ChaosFault::KillMap { index: 0, at_progress: 0.5 }),
        ChaosScenario::new("cal-double-kill")
            .with(ChaosFault::KillReduce { index: 0, at_progress: 0.3 })
            .with(ChaosFault::KillMap { index: 1, at_progress: 0.6 }),
    ]
}

/// The transient calibration suite: short healed partitions (symmetric
/// and asymmetric) and checksummed corruption. These are the absorbed
/// fault classes — none may record a failure — so the magnitude claim is
/// about *overhead*, not recovery cost: the normalized slowdown of riding
/// out the window / re-fetching the chunk. Windows are kept short (≤3
/// scenario seconds) to bound the structural clock gap documented on
/// [`ToleranceBands::transient_measured`].
pub fn transient_calibration_suite() -> Vec<ChaosScenario> {
    use alm_types::{CorruptTarget, LinkDirection};
    vec![
        ChaosScenario::new("cal-partition-brief").with(ChaosFault::PartitionLink {
            a: 0,
            b: 2,
            direction: LinkDirection::Both,
            from_secs: 1.0,
            heal_secs: 3.0,
            flap: None,
        }),
        ChaosScenario::new("cal-partition-asym").with(ChaosFault::PartitionLink {
            a: 1,
            b: 3,
            direction: LinkDirection::AToB,
            from_secs: 1.0,
            heal_secs: 3.0,
            flap: None,
        }),
        ChaosScenario::new("cal-corrupt-mof").with(ChaosFault::CorruptData {
            node: 1,
            target: CorruptTarget::MofPartition { map_index: 1, partition: 1 },
            at_secs: 1.0,
        }),
        ChaosScenario::new("cal-corrupt-alg").with(ChaosFault::CorruptData {
            node: 2,
            target: CorruptTarget::AlgRecord { reduce_index: 0, seq: 0 },
            at_secs: 2.0,
        }),
    ]
}

/// Floor for wall-clock durations: the runtime reports whole milliseconds,
/// so a sub-ms job must not divide by zero.
const MIN_WALL_SECS: f64 = 0.001;

/// Run `suite` on both engines at `scale` under each mode and build the
/// per-mode normalized slowdown curves. The fault-free baseline is an
/// empty scenario run through the identical path; runtime durations take
/// the minimum over `repeats` runs.
pub fn calibrate(
    suite: &[ChaosScenario],
    modes: &[RecoveryMode],
    scale: &MatchedScale,
    repeats: u32,
) -> CalibrationReport {
    let repeats = repeats.max(1);
    let (sim, runtime) = matched_campaigns(modes, scale);
    let fault_free = ChaosScenario::new("cal-fault-free");

    let runtime_secs = |scenario: &ChaosScenario, mode: RecoveryMode| -> f64 {
        (0..repeats)
            .map(|_| runtime.run_scenario(scenario, mode).duration_secs)
            .fold(f64::INFINITY, f64::min)
            .max(MIN_WALL_SECS)
    };

    let curves = modes
        .iter()
        .map(|&mode| {
            let sim_baseline = sim.run_scenario(&fault_free, mode).duration_secs;
            let runtime_baseline = runtime_secs(&fault_free, mode);
            let points = suite
                .iter()
                .map(|s| SlowdownPoint {
                    scenario: s.name.clone(),
                    sim: sim.run_scenario(s, mode).duration_secs / sim_baseline.max(f64::EPSILON),
                    runtime: runtime_secs(s, mode) / runtime_baseline,
                })
                .collect();
            ModeCurve {
                mode,
                sim_baseline_secs: sim_baseline,
                runtime_baseline_secs: runtime_baseline,
                points,
            }
        })
        .collect();

    CalibrationReport { scale: scale.clone(), repeats, curves }
}

/// Calibrated differential validation: run [`calibration_suite`] at
/// `scale` and fold the per-mode magnitude invariants into a
/// [`DifferentialReport`] — the cardinal companion to
/// `crate::differential::validate_at`'s ordinal checks.
pub fn validate_calibrated(
    modes: &[RecoveryMode],
    scale: &MatchedScale,
    bands: &ToleranceBands,
    repeats: u32,
) -> (DifferentialReport, CalibrationReport) {
    let calibration = calibrate(&calibration_suite(), modes, scale, repeats);
    let report = DifferentialReport {
        scenario: "calibration-suite".into(),
        modes: modes.to_vec(),
        invariants: calibration.check(bands),
        outcomes: Vec::new(),
    };
    (report, calibration)
}

/// Calibrated magnitude validation of the *absorbed* fault classes: run
/// [`transient_calibration_suite`] at `scale` and check each mode's worst
/// cross-engine overhead gap against `bands` (typically
/// [`ToleranceBands::transient_measured`]).
pub fn validate_calibrated_transient(
    modes: &[RecoveryMode],
    scale: &MatchedScale,
    bands: &ToleranceBands,
    repeats: u32,
) -> (DifferentialReport, CalibrationReport) {
    let calibration = calibrate(&transient_calibration_suite(), modes, scale, repeats);
    let report = DifferentialReport {
        scenario: "transient-calibration-suite".into(),
        modes: modes.to_vec(),
        invariants: calibration.check(bands),
        outcomes: Vec::new(),
    };
    (report, calibration)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(mode: RecoveryMode, gaps: &[(f64, f64)]) -> ModeCurve {
        ModeCurve {
            mode,
            sim_baseline_secs: 100.0,
            runtime_baseline_secs: 0.01,
            points: gaps
                .iter()
                .enumerate()
                .map(|(i, &(s, r))| SlowdownPoint { scenario: format!("p{i}"), sim: s, runtime: r })
                .collect(),
        }
    }

    #[test]
    fn bands_fall_back_to_default() {
        let b = ToleranceBands { bands: vec![(RecoveryMode::Alg, 0.5)], default_band: 1.5 };
        assert_eq!(b.band(RecoveryMode::Alg), 0.5);
        assert_eq!(b.band(RecoveryMode::Baseline), 1.5);
        assert_eq!(ToleranceBands::uniform(0.7).band(RecoveryMode::Sfm), 0.7);
    }

    #[test]
    fn gap_statistics_are_absolute() {
        let c = curve(RecoveryMode::Baseline, &[(1.2, 1.0), (1.0, 1.6), (2.0, 2.0)]);
        assert!((c.max_gap() - 0.6).abs() < 1e-9);
        assert!((c.mean_gap() - (0.2 + 0.6 + 0.0) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn check_flags_out_of_band_modes() {
        let report = CalibrationReport {
            scale: MatchedScale::default(),
            repeats: 3,
            curves: vec![
                curve(RecoveryMode::Baseline, &[(1.1, 1.2)]),
                curve(RecoveryMode::SfmAlg, &[(1.0, 3.5)]),
            ],
        };
        let inv = report.check(&ToleranceBands::uniform(0.5));
        assert_eq!(inv.len(), 2);
        assert!(inv[0].passed, "{:?}", inv[0]);
        assert_eq!(inv[0].name, "magnitude-Baseline");
        assert!(!inv[1].passed, "{:?}", inv[1]);
        assert_eq!(inv[1].name, "magnitude-SfmAlg");
        assert!(inv[1].detail.contains("band 0.50"), "{}", inv[1].detail);
        let text = report.render_text();
        assert!(text.contains("magnitude") || text.contains("gap"), "{text}");
    }

    #[test]
    fn calibration_report_serde_round_trips() {
        let report = CalibrationReport {
            scale: MatchedScale::default(),
            repeats: 2,
            curves: vec![curve(RecoveryMode::Sfm, &[(1.3, 1.4)])],
        };
        let back: CalibrationReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn transient_suite_contains_only_absorbed_faults() {
        let suite = transient_calibration_suite();
        assert!(suite.iter().any(|s| s.name.contains("partition")));
        assert!(suite.iter().any(|s| s.name.contains("corrupt")));
        for s in suite {
            assert!(!s.faults.is_empty(), "{} is fault-free", s.name);
            for f in &s.faults {
                assert!(
                    matches!(f, ChaosFault::PartitionLink { .. } | ChaosFault::CorruptData { .. }),
                    "transient suite must hold only absorbed faults: {f:?}"
                );
                assert!(!f.produces_failures(), "absorbed fault may not produce failures: {f:?}");
            }
        }
    }

    #[test]
    fn suite_contains_only_progress_triggered_kills() {
        for s in calibration_suite() {
            assert!(!s.faults.is_empty(), "{} is fault-free", s.name);
            for f in &s.faults {
                assert!(
                    matches!(f, ChaosFault::KillMap { .. } | ChaosFault::KillReduce { .. }),
                    "calibration suite must not contain clock-incommensurable faults: {f:?}"
                );
            }
        }
    }
}
