//! Chain campaigns: amplification measurement for the in-memory iterative
//! mode (`alm-mem`) across both engines.
//!
//! A [`ChainCampaign`] runs the same fixed-seed iterative pagerank chain —
//! with the same mid-chain node crash — under both [`MemMode`]s on both
//! engines, flattens every engine job run (replays included) into
//! per-iteration [`ScenarioOutcome`]s, and checks the
//! **`mem-amplification-bounded`** differential invariant:
//!
//! * under ALG+FCM the chain loses **zero** completed iterations (every
//!   recovery is a durable checkpoint restore, the in-flight job recovers
//!   in-job via SFM+ALG);
//! * under M3R-style lineage replay the same crash re-executes the whole
//!   completed prefix — strictly more iterations lost;
//! * both modes, on both engines, still converge to **byte-identical**
//!   final state.
//!
//! The per-mode rows render as the iterations-lost table in
//! EXPERIMENTS.md.

use alm_mem::{run_chain, ChainReport, CrashPlan, IterativeSpec, RuntimeChainEngine, SimChainEngine};
use alm_types::{MemConfig, MemMode};
use alm_workloads::{Pagerank, WorkloadKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::analyze::{EngineKind, ScenarioOutcome};
use crate::differential::Invariant;

/// One fixed-seed iterative chain, crashed mid-flight, on both engines
/// under both memory modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainCampaign {
    pub num_reduces: u32,
    pub seed: u64,
    /// Chain length (convergence disabled: the campaign wants fixed-length
    /// chains so iteration counts are comparable across modes).
    pub iterations: u32,
    /// Node to crash and the iteration whose job is in flight when it dies.
    pub crash_node: u32,
    pub crash_iteration: u32,
    /// Threaded-runtime cluster size (the simulator runs at paper scale).
    pub nodes: u32,
}

impl Default for ChainCampaign {
    fn default() -> ChainCampaign {
        // Crash at iteration 2 of 4: two completed generations at risk,
        // node 1 hosts a state stripe (3 reduces ring over 5 nodes).
        ChainCampaign { num_reduces: 3, seed: 42, iterations: 4, crash_node: 1, crash_iteration: 2, nodes: 5 }
    }
}

/// Per (engine, mode) summary — one row of the iterations-lost table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainModeRow {
    pub engine: EngineKind,
    pub mode: MemMode,
    pub iterations_completed: u32,
    pub iterations_lost: u32,
    pub durable_restores: u32,
    pub replay_runs: u32,
    pub resident_hits: u64,
    /// Virtual seconds (simulator) or wall seconds (runtime) across every
    /// engine run, replays included.
    pub total_job_secs: f64,
}

/// Verdict of one chain campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainDifferentialReport {
    pub crash_node: u32,
    pub crash_iteration: u32,
    pub invariants: Vec<Invariant>,
    pub rows: Vec<ChainModeRow>,
    /// Every engine job run of every (engine, mode) chain, flattened.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl ChainDifferentialReport {
    pub fn ok(&self) -> bool {
        self.invariants.iter().all(|i| i.passed)
    }

    /// The iterations-lost table, as markdown for EXPERIMENTS.md.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| engine | mode | iterations | lost to replay | durable restores | resident hits |\n|---|---|---|---|---|---|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.engine,
                r.mode,
                r.iterations_completed,
                r.iterations_lost,
                r.durable_restores,
                r.resident_hits
            ));
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("chain report serialisation cannot fail")
    }
}

impl ChainCampaign {
    fn spec(&self, mode: MemMode) -> IterativeSpec {
        let mut mem = MemConfig::scaled_for_tests();
        mem.mem_mode = mode;
        mem.mem_max_chain_iterations = self.iterations;
        // Epsilon of one micro-unit: the short campaign chain never
        // converges early, so both modes run the full budget.
        mem.mem_convergence_epsilon_micro = 1;
        IterativeSpec {
            workload: Arc::new(Pagerank::small()),
            num_reduces: self.num_reduces,
            seed: self.seed,
            mem,
        }
    }

    fn crash(&self) -> CrashPlan {
        CrashPlan { node: self.crash_node, iteration: self.crash_iteration }
    }

    /// Flatten one chain run into per-iteration outcomes.
    fn outcomes_of(&self, engine: EngineKind, mode: MemMode, report: &ChainReport) -> Vec<ScenarioOutcome> {
        report
            .runs
            .iter()
            .map(|run| {
                let crashed = !run.replay && run.iteration == self.crash_iteration;
                ScenarioOutcome {
                    scenario: format!(
                        "mem/pagerank/{}/iter{:02}{}",
                        mode,
                        run.iteration,
                        if run.replay { "-replay" } else { "" }
                    ),
                    engine,
                    mode: mode.recovery_mode(),
                    succeeded: run.succeeded,
                    duration_secs: run.job_secs,
                    injected_faults: usize::from(crashed),
                    total_failures: run.failures as usize,
                    spatial_amplification: 0,
                    temporal_amplification: 0,
                    fcm_attempts: 0,
                    map_attempts: 0,
                    node_loss_failures: 0,
                    corruption_refetches: 0,
                    degraded_drops: 0,
                    recoveries_bounded: None,
                    output_verified: None,
                    partitions_committed: None,
                    dfs_read_failovers: 0,
                    dfs_repair_bytes: 0,
                    dfs_corrupt_replicas: 0,
                    chain_iteration: run.iteration,
                    resident_hits: run.resident_hits,
                }
            })
            .collect()
    }

    fn row(engine: EngineKind, report: &ChainReport) -> ChainModeRow {
        ChainModeRow {
            engine,
            mode: report.mode,
            iterations_completed: report.iterations_completed,
            iterations_lost: report.iterations_lost,
            durable_restores: report.durable_restores,
            replay_runs: report.replay_runs() as u32,
            resident_hits: report.store.hits,
            total_job_secs: report.total_job_secs(),
        }
    }

    /// Run the campaign: both modes on both engines, same crash.
    pub fn run(&self) -> ChainDifferentialReport {
        let crash = Some(self.crash());
        let mut rows = Vec::new();
        let mut outcomes = Vec::new();
        let mut reports: Vec<(EngineKind, ChainReport)> = Vec::new();
        for mode in [MemMode::LineageReplay, MemMode::AlgFcm] {
            let spec = self.spec(mode);
            let mut sim = SimChainEngine::paper(WorkloadKind::Pagerank, &spec);
            let sim_report = run_chain(&mut sim, &spec, crash);
            let mut runtime = RuntimeChainEngine::new(self.nodes, &spec);
            let runtime_report = run_chain(&mut runtime, &spec, crash);
            for (engine, report) in
                [(EngineKind::Simulator, sim_report), (EngineKind::Runtime, runtime_report)]
            {
                rows.push(Self::row(engine, &report));
                outcomes.extend(self.outcomes_of(engine, mode, &report));
                reports.push((engine, report));
            }
        }

        let lost = |engine: EngineKind, mode: MemMode| {
            reports
                .iter()
                .find(|(e, r)| *e == engine && r.mode == mode)
                .map(|(_, r)| r.iterations_lost)
                .unwrap_or(u32::MAX)
        };
        let mut invariants = Vec::new();

        // The headline invariant: RAM-resident amplification is bounded by
        // ALG+FCM (zero iterations lost) and unbounded-by-prefix under
        // lineage replay (strictly more), on both engines.
        let bad: Vec<String> = [EngineKind::Simulator, EngineKind::Runtime]
            .into_iter()
            .filter_map(|engine| {
                let alg = lost(engine, MemMode::AlgFcm);
                let lineage = lost(engine, MemMode::LineageReplay);
                (alg != 0 || lineage <= alg)
                    .then(|| format!("{engine} (alg-fcm lost {alg}, lineage-replay lost {lineage})"))
            })
            .collect();
        invariants.push(Invariant {
            name: "mem-amplification-bounded".into(),
            passed: bad.is_empty(),
            detail: if bad.is_empty() {
                format!(
                    "crash at iteration {} of {}: alg-fcm loses 0 iterations, lineage-replay loses {} (sim) / {} (runtime)",
                    self.crash_iteration,
                    self.iterations,
                    lost(EngineKind::Simulator, MemMode::LineageReplay),
                    lost(EngineKind::Runtime, MemMode::LineageReplay),
                )
            } else {
                format!("amplification not bounded under: {}", bad.join("; "))
            },
        });

        // Recovery path must not change the math: every (engine, mode)
        // chain ends in the same final state, byte for byte.
        let states: Vec<&Vec<u64>> = reports.iter().map(|(_, r)| &r.final_state).collect();
        let agree = states.windows(2).all(|w| w[0] == w[1]);
        invariants.push(Invariant {
            name: "chain-state-identical".into(),
            passed: agree,
            detail: if agree {
                "all engine x mode chains converge to byte-identical final state".into()
            } else {
                "final states diverge across engines/modes".into()
            },
        });

        // Every engine run in every chain — including replays on a cluster
        // already missing the crashed node — must complete.
        let stuck: Vec<String> = outcomes
            .iter()
            .filter(|o| !o.succeeded)
            .map(|o| format!("{}/{}", o.engine, o.scenario))
            .collect();
        invariants.push(Invariant {
            name: "chain-completes".into(),
            passed: stuck.is_empty(),
            detail: if stuck.is_empty() {
                format!("all {} engine job runs completed", outcomes.len())
            } else {
                format!("did not complete: {}", stuck.join(", "))
            },
        });

        ChainDifferentialReport {
            crash_node: self.crash_node,
            crash_iteration: self.crash_iteration,
            invariants,
            rows,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_campaign_invariants_hold_on_both_engines() {
        let report = ChainCampaign::default().run();
        assert!(report.ok(), "{}", report.to_json());
        assert_eq!(report.rows.len(), 4, "2 engines x 2 modes");
        // The lineage rows carry the amplification; the alg rows do not.
        for row in &report.rows {
            match row.mode {
                MemMode::LineageReplay => {
                    assert!(row.iterations_lost > 0, "{row:?}");
                    assert_eq!(row.durable_restores, 0, "{row:?}");
                }
                MemMode::AlgFcm => {
                    assert_eq!(row.iterations_lost, 0, "{row:?}");
                    assert!(row.durable_restores > 0, "{row:?}");
                }
            }
        }
        // Per-iteration outcomes carry chain labels and the new counters.
        assert!(report.outcomes.iter().any(|o| o.scenario.ends_with("-replay")));
        assert!(report.outcomes.iter().any(|o| o.chain_iteration > 0));
        assert!(report.outcomes.iter().any(|o| o.resident_hits > 0));
        let md = report.render_markdown();
        assert!(md.contains("| sim | lineage-replay |"), "{md}");
        assert!(md.contains("| runtime | alg-fcm |"), "{md}");
    }

    #[test]
    fn chain_campaign_is_deterministic() {
        let campaign = ChainCampaign::default();
        let a = campaign.run();
        let b = campaign.run();
        // Sim chains are fully deterministic (virtual time included).
        let sim = |r: &ChainDifferentialReport| {
            r.outcomes.iter().filter(|o| o.engine == EngineKind::Simulator).cloned().collect::<Vec<_>>()
        };
        assert_eq!(sim(&a), sim(&b));
        // Runtime chains run on wall time and their MOF cache traffic
        // depends on thread interleaving; the chain *protocol* — which
        // jobs ran, in what order, with what recovery accounting — must
        // still replay identically.
        let protocol = |r: &ChainDifferentialReport| {
            r.rows
                .iter()
                .map(|row| {
                    (
                        row.engine,
                        row.mode,
                        row.iterations_completed,
                        row.iterations_lost,
                        row.durable_restores,
                        row.replay_runs,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(protocol(&a), protocol(&b));
        let labels = |r: &ChainDifferentialReport| {
            r.outcomes.iter().map(|o| (o.scenario.clone(), o.engine, o.succeeded)).collect::<Vec<_>>()
        };
        assert_eq!(labels(&a), labels(&b));
    }
}
