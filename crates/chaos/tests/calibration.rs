//! Cross-engine magnitude calibration at the default matched scale: the
//! engines' normalized slowdowns must agree within the recorded
//! per-mode tolerance bands, and correlated rack loss must validate
//! differentially end to end.

use alm_chaos::{
    calibrate, calibration_suite, transient_calibration_suite, validate_calibrated,
    validate_calibrated_transient, ChaosFault, ChaosScenario, MatchedScale, ToleranceBands,
};
use alm_types::RecoveryMode;

const ALL_MODES: [RecoveryMode; 4] =
    [RecoveryMode::Baseline, RecoveryMode::Alg, RecoveryMode::Sfm, RecoveryMode::SfmAlg];

/// The tentpole invariant: per-mode normalized slowdown curves from both
/// engines stay inside the measured tolerance bands recorded in
/// `ToleranceBands::measured` / EXPERIMENTS.md.
#[test]
fn magnitude_invariants_hold_at_default_scale_for_all_modes() {
    let (report, calibration) =
        validate_calibrated(&ALL_MODES, &MatchedScale::default(), &ToleranceBands::measured(), 3);
    assert_eq!(report.invariants.len(), ALL_MODES.len());
    for inv in &report.invariants {
        assert!(inv.name.starts_with("magnitude-"), "{inv:?}");
    }
    assert!(
        report.ok(),
        "magnitude calibration out of band:\n{}\n{}",
        report.render_text(),
        calibration.render_text()
    );
    // Every mode curve covers the whole suite, and the baselines the
    // slowdowns are normalized against are sane.
    for curve in &calibration.curves {
        assert_eq!(curve.points.len(), calibration_suite().len());
        assert!(curve.sim_baseline_secs > 0.0, "{curve:?}");
        assert!(curve.runtime_baseline_secs > 0.0, "{curve:?}");
        for p in &curve.points {
            assert!(p.sim >= 1.0, "a fault cannot speed the simulator up: {p:?}");
            assert!(p.runtime > 0.0, "{p:?}");
        }
    }
}

/// Gray-failure companion to the tentpole: the *absorbed* fault classes
/// (healed partitions — symmetric and asymmetric — and checksummed
/// corruption) must also agree in magnitude across engines, within the
/// wider transient bands recorded in `ToleranceBands::transient_measured`
/// / EXPERIMENTS.md.
#[test]
fn transient_magnitude_invariants_hold_at_default_scale_for_all_modes() {
    let (report, calibration) = validate_calibrated_transient(
        &ALL_MODES,
        &MatchedScale::default(),
        &ToleranceBands::transient_measured(),
        3,
    );
    assert_eq!(report.invariants.len(), ALL_MODES.len());
    assert!(
        report.ok(),
        "transient magnitude calibration out of band:\n{}\n{}",
        report.render_text(),
        calibration.render_text()
    );
    for curve in &calibration.curves {
        assert_eq!(curve.points.len(), transient_calibration_suite().len());
        for p in &curve.points {
            // Absorbed faults may cost overhead but never a recovery
            // cliff: the simulator's slowdown stays under 2x throughout.
            assert!((1.0..2.0).contains(&p.sim), "absorbed fault shows a recovery cliff: {p:?}");
            assert!(p.runtime > 0.0, "{p:?}");
        }
    }
}

/// Deliberately absurd bands must fail — the check is not vacuous.
#[test]
fn magnitude_check_is_not_vacuous() {
    let calibration = calibrate(&calibration_suite(), &[RecoveryMode::Sfm], &MatchedScale::default(), 2);
    let strict = calibration.check(&ToleranceBands::uniform(0.0));
    // With a zero band any nonzero gap fails; the engines' clocks differ,
    // so at least one scenario must show a nonzero gap.
    assert!(
        strict.iter().any(|i| !i.passed),
        "zero-tolerance bands unexpectedly passed: {}",
        calibration.render_text()
    );
}

/// Satellite: correlated rack loss wired through both campaigns and
/// checked by the `correlated-crash-recovery` differential invariant —
/// runtime recovers to oracle-identical committed output, simulator
/// completes under SfmAlg.
#[test]
fn correlated_rack_crash_validates_differentially() {
    let scenario = ChaosScenario::new("diff-rack-loss").with(ChaosFault::CrashRack { rack: 1, at_secs: 0.5 });
    let report = alm_chaos::validate_scenario(&scenario, &[RecoveryMode::Baseline, RecoveryMode::SfmAlg]);
    let inv = report
        .invariants
        .iter()
        .find(|i| i.name == "correlated-crash-recovery")
        .expect("rack scenarios must add the correlated-crash invariant");
    assert!(inv.passed, "{}", report.render_text());
    assert!(report.ok(), "{}", report.render_text());
    // The invariant is conditional: non-rack scenarios must not carry it.
    let kill = ChaosScenario::new("k").with(ChaosFault::KillReduce { index: 0, at_progress: 0.5 });
    let plain = alm_chaos::validate_scenario(&kill, &[RecoveryMode::Baseline]);
    assert!(plain.invariants.iter().all(|i| i.name != "correlated-crash-recovery"));
}
