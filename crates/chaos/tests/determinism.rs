//! DES determinism under chaos scenarios: the simulator is a pure function
//! of (spec, env, faults). For any seeded [`ChaosScenario`] drawn from a
//! [`FaultSpace`], running the lowered scenario twice must produce
//! **byte-identical traces** — the serialized [`SimReport`]s compare equal
//! as strings, not merely as values.

use proptest::prelude::*;

use alm_chaos::{ChaosScenario, FaultSpace, LoweringProfile};
use alm_sim::experiment::run_one;
use alm_sim::{ExperimentEnv, SimFault, SimJobSpec};
use alm_types::units::GB;
use alm_types::{ClusterSpec, JobId, RecoveryMode};
use alm_workloads::WorkloadKind;

fn trace_of(scenario: &ChaosScenario, mode: RecoveryMode) -> String {
    let mut env = ExperimentEnv::paper(mode);
    env.cluster = ClusterSpec { nodes: 9, ..ClusterSpec::default() };
    let spec = SimJobSpec::new(WorkloadKind::Terasort, 2 * GB, 6, 17);
    let plan = scenario.lower(JobId(0), &LoweringProfile::simulator(&env.cluster));
    let report = run_one(&spec, &env, SimFault::lower_plan(&plan));
    serde_json::to_string(&report).expect("SimReport serialises")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Same seed, same scenario, two independent runs: identical bytes.
    #[test]
    fn same_seed_same_scenario_byte_identical_traces(seed in 0u64..10_000, pick in 0usize..6) {
        let space = FaultSpace::paper_like(8, 2, 16, 6);
        let scenario = &space.sample(6, seed)[pick];
        for mode in [RecoveryMode::Baseline, RecoveryMode::SfmAlg] {
            let a = trace_of(scenario, mode);
            let b = trace_of(scenario, mode);
            prop_assert_eq!(&a, &b, "trace divergence under {:?} for {:?}", mode, scenario);
        }
    }

    /// The sweep itself is deterministic: resampling the space with the
    /// same seed reproduces the exact scenario list.
    #[test]
    fn fault_space_resampling_is_stable(seed in 0u64..1_000_000) {
        let space = FaultSpace::paper_like(20, 2, 80, 20);
        prop_assert_eq!(space.sample(10, seed), space.sample(10, seed));
    }
}
