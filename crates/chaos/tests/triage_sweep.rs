//! Acceptance sweep for the gray-failure tentpole: a 200+-run triage
//! campaign over the gray fault space must produce a *ranked* root-cause
//! report — categories ordered by severity then blast radius, every one
//! carrying a non-empty remediation — and the two new differential
//! invariants must pass over a seeded `FaultSpace` sample.

use alm_chaos::{triage, validate_scenario, ChaosFault, FaultSpace, LoweringProfile, Severity, SimCampaign};
use alm_sim::SimJobSpec;
use alm_types::{LinkDirection, RecoveryMode};
use alm_workloads::WorkloadKind;

const ALL_MODES: [RecoveryMode; 4] =
    [RecoveryMode::Baseline, RecoveryMode::Alg, RecoveryMode::Sfm, RecoveryMode::SfmAlg];

#[test]
fn gray_sweep_triages_200_plus_runs_into_ranked_categories() {
    // 55 scenarios x 4 modes = 220 simulator runs at paper scale — the
    // fault space draws its windows against ~100-virtual-second jobs, so
    // the sweep must run the paper spec for gray windows to overlap the
    // shuffle at all.
    let campaign = SimCampaign::paper(SimJobSpec::paper(WorkloadKind::Terasort, 7), ALL_MODES.to_vec());
    let profile = campaign.profile();
    // Task indices in the space must match the job: one map per DFS block
    // of input, and the spec's own reduce count.
    let num_maps = campaign.spec.input_bytes.div_ceil(campaign.yarn.dfs_block_size).max(1) as u32;
    let space = FaultSpace::gray_like(profile.workers, profile.racks, num_maps, campaign.spec.num_reduces);
    let scenarios = space.sample(55, 7);
    let outcomes = campaign.run(&scenarios);
    assert!(outcomes.len() >= 200, "sweep too small: {} runs", outcomes.len());

    let report = triage(&outcomes);
    assert_eq!(report.runs, outcomes.len());
    assert!(
        report.groups.len() >= 3,
        "a gray sweep must surface multiple signatures:\n{}",
        report.render_text()
    );

    // Ranked: severity never increases down the list, and within one
    // severity the blast radius (run count) never increases.
    for pair in report.groups.windows(2) {
        assert!(
            pair[0].severity > pair[1].severity
                || (pair[0].severity == pair[1].severity && pair[0].count >= pair[1].count),
            "ranking violated between {} and {}:\n{}",
            pair[0].category,
            pair[1].category,
            report.render_text()
        );
    }

    // Every category is actionable and accounted for.
    let mut total = 0;
    for g in &report.groups {
        assert!(!g.remediation.trim().is_empty(), "{} has no remediation", g.category);
        assert!(g.count > 0 && g.distinct_scenarios > 0 && !g.examples.is_empty(), "{g:?}");
        total += g.count;
    }
    assert_eq!(total, report.runs, "triage dropped runs");

    // The gray vocabulary must actually show up in the signatures: some
    // run crossed a degraded link, and the amplification machinery (the
    // sweep also samples crashes) produced at least one High finding for
    // the report to rank above the absorbed categories.
    assert!(
        report.groups.iter().any(|g| g.category == "gray-link-absorbed"),
        "no degraded-link run surfaced:\n{}",
        report.render_text()
    );
    assert!(report.at_least(Severity::Medium).count() >= 1, "{}", report.render_text());

    // The markdown artifact CI uploads renders with the ranked rows.
    let md = report.render_markdown();
    assert!(md.contains("| rank |") && md.contains("| 1 |"), "{md}");
}

#[test]
fn gray_invariants_hold_over_a_seeded_fault_space_sample() {
    // Differential acceptance: sample gray scenarios and validate every
    // one that carries the new vocabulary on BOTH engines. Keep the
    // differential budget modest — each validation runs scenario x modes
    // on the threaded runtime too.
    let profile = LoweringProfile::runtime(5, 2, 5.0);
    let space = FaultSpace::gray_like(profile.workers, profile.racks, 5, 3);
    let scenarios = space.sample(24, 1907);
    let modes = [RecoveryMode::Baseline, RecoveryMode::SfmAlg];

    let mut asym_checked = 0;
    let mut flap_checked = 0;
    for s in &scenarios {
        let has_asym = s.faults.iter().any(
            |f| matches!(f, ChaosFault::PartitionLink { direction, .. } if *direction != LinkDirection::Both),
        );
        let has_flap = s.faults.iter().any(|f| matches!(f, ChaosFault::PartitionLink { flap: Some(_), .. }));
        if !has_asym && !has_flap {
            continue;
        }
        // The invariants are conditional (skipped when a crash fault
        // legitimises node loss, or when a non-transient fault shares the
        // scenario); whenever the validator emits one it must pass.
        let report = validate_scenario(s, &modes);
        for inv in &report.invariants {
            match inv.name.as_str() {
                "asymmetric-partition-no-node-loss" => {
                    assert!(inv.passed, "{}:\n{}", s.name, report.render_text());
                    asym_checked += 1;
                }
                "flap-backoff-budget" => {
                    assert!(inv.passed, "{}:\n{}", s.name, report.render_text());
                    flap_checked += 1;
                }
                _ => {}
            }
        }
    }
    assert!(asym_checked >= 2, "sample exercised too few asymmetric scenarios: {asym_checked}");
    assert!(flap_checked >= 1, "sample exercised too few flapping scenarios: {flap_checked}");
}
