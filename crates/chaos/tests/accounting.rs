//! Regression tests for fault-accounting bugs: duplicate crash injection
//! from overlapping rack faults, rack-blind amplification denominators,
//! record-presence (instead of commit-status) partition counting, and
//! rack-count drift between the lowering profile and the real cluster.

use std::cmp::Ordering;
use std::sync::Arc;

use alm_chaos::{ChaosFault, ChaosScenario, RuntimeCampaign};
use alm_runtime::{JobDef, MiniCluster};
use alm_types::{AlmConfig, JobId, NodeId, RecoveryMode, ReplicationLevel};
use alm_workloads::{Record, Terasort, Workload, WorkloadModel};
use bytes::Bytes;

/// Terasort with a partitioner that never routes to the last partition:
/// a legal workload whose final reduce partition is legitimately empty.
struct HolePartition(Terasort);

impl Workload for HolePartition {
    fn name(&self) -> &'static str {
        "terasort-hole"
    }
    fn gen_split(&self, split: u32, seed: u64) -> Vec<Record> {
        self.0.gen_split(split, seed)
    }
    fn map(&self, rec: &Record, emit: &mut dyn FnMut(Record)) {
        self.0.map(rec, emit)
    }
    fn reduce(&self, key: &[u8], values: &[Vec<u8>], emit: &mut dyn FnMut(Record)) {
        self.0.reduce(key, values, emit)
    }
    fn partition(&self, key: &[u8], num_reduces: u32) -> u32 {
        if num_reduces > 1 {
            self.0.partition(key, num_reduces - 1)
        } else {
            0
        }
    }
    fn compare_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        self.0.compare_keys(a, b)
    }
    fn model(&self) -> WorkloadModel {
        self.0.model()
    }
}

/// An empty reduce partition is *committed*, not lost: the campaign must
/// report all partitions committed and the oracle must verify, so the
/// differential `no-mof-loss` invariant sees no false MOF loss.
#[test]
fn empty_partition_commits_and_verifies() {
    let campaign = RuntimeCampaign {
        workload: Arc::new(HolePartition(Terasort::new(600))),
        num_maps: 3,
        num_reduces: 3,
        seed: 42,
        nodes: 4,
        ms_per_scenario_sec: 5.0,
        modes: vec![RecoveryMode::Baseline, RecoveryMode::SfmAlg],
    };
    let scenarios = vec![
        ChaosScenario::new("clean"),
        ChaosScenario::new("kill").with(ChaosFault::KillReduce { index: 0, at_progress: 0.5 }),
    ];
    for o in campaign.run(&scenarios) {
        assert!(o.succeeded, "{o:?}");
        assert_eq!(o.output_verified, Some(true), "empty partition broke the oracle: {o:?}");
        assert_eq!(
            o.partitions_committed,
            Some(3),
            "empty partition must count as committed (commit status, not record presence): {o:?}"
        );
    }
}

/// Commit-status counting: an empty committed file counts, a never-written
/// partition does not, and a committed file whose blocks lost every live
/// replica no longer counts — record-presence accounting would miss the
/// last case entirely.
#[test]
fn committed_partitions_track_commit_status_not_record_presence() {
    let cluster = MiniCluster::for_tests(4);
    let job = JobDef::new(JobId(0), Arc::new(Terasort::new(100)), 2, 3, 1, AlmConfig::baseline());

    let mut buf = Vec::new();
    alm_shuffle::codec::encode_into(&mut buf, b"key", b"value");
    let meta0 = cluster
        .dfs
        .write(&job.output_path(0), Bytes::from(buf), NodeId(0), ReplicationLevel::Cluster)
        .unwrap();
    cluster.dfs.write(&job.output_path(1), Bytes::new(), NodeId(0), ReplicationLevel::Cluster).unwrap();

    // Partition 0 has records, partition 1 committed empty, partition 2
    // was never committed.
    assert_eq!(RuntimeCampaign::committed_partitions(&cluster, &job), 2);

    // Lose every replica of partition 0's blocks: the commit is gone, even
    // though a record-presence accounting would still count the partition.
    for block_replicas in &meta0.replicas {
        for n in block_replicas {
            cluster.dfs.set_node_alive(*n, false);
        }
    }
    assert_eq!(RuntimeCampaign::committed_partitions(&cluster, &job), 1);
}

/// The campaign's lowering profile and the cluster the campaign actually
/// builds must agree on the rack count for every cluster size — rack-fault
/// membership is computed from the profile and executed on the cluster.
#[test]
fn campaign_profile_racks_match_cluster_topology() {
    for nodes in 1..=6u32 {
        let campaign = RuntimeCampaign {
            workload: Arc::new(Terasort::new(100)),
            num_maps: 2,
            num_reduces: 2,
            seed: 7,
            nodes,
            ms_per_scenario_sec: 5.0,
            modes: vec![RecoveryMode::Baseline],
        };
        let cluster = MiniCluster::for_tests(nodes);
        assert_eq!(campaign.profile().racks, cluster.racks(), "nodes = {nodes}");
        assert_eq!(campaign.profile().racks, MiniCluster::test_racks(nodes), "nodes = {nodes}");
    }
}
