//! Differential validation of transient faults (ISSUE: transient-fault
//! tolerance): a network partition that heals inside the liveness window
//! and checksummed data corruption must be absorbed by BOTH engines
//! without node-loss declarations, map re-executions or retry-budget
//! burn — the `transient-no-node-loss`, `corruption-bounded-recovery`
//! and `dfs-verified-read` invariants. Gray failures ride the same bar:
//! asymmetric (half-open) partitions and seeded flap schedules must be
//! absorbed too — `asymmetric-partition-no-node-loss` and
//! `flap-backoff-budget`.

use alm_chaos::{validate_scenario, ChaosFault, ChaosFlap, ChaosScenario, EngineKind};
use alm_types::{CorruptTarget, LinkDirection, RecoveryMode};

const MODES: &[RecoveryMode] = &[RecoveryMode::Baseline, RecoveryMode::SfmAlg];

fn invariant<'r>(report: &'r alm_chaos::DifferentialReport, name: &str) -> &'r alm_chaos::Invariant {
    report
        .invariants
        .iter()
        .find(|i| i.name == name)
        .unwrap_or_else(|| panic!("invariant {name} missing from report:\n{}", report.render_text()))
}

#[test]
fn healing_partition_causes_no_node_loss_in_either_engine() {
    let scenario = ChaosScenario::new("transient-partition").with(ChaosFault::PartitionLink {
        a: 0,
        b: 2,
        direction: LinkDirection::Both,
        from_secs: 0.0,
        heal_secs: 40.0,
        flap: None,
    });
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "transient-no-node-loss").passed);
    assert_eq!(report.outcomes.len(), 4);
    for o in &report.outcomes {
        assert_eq!(o.node_loss_failures, 0, "healed partition declared a node lost: {o:?}");
        assert_eq!(o.map_attempts, 5, "healed partition re-executed a map: {o:?}");
        assert_eq!(o.total_failures, 0, "healed partition recorded a failure: {o:?}");
    }
}

#[test]
fn corrupted_mof_chunk_recovers_bounded_in_both_engines() {
    let scenario = ChaosScenario::new("transient-corrupt-mof").with(ChaosFault::CorruptData {
        node: 1,
        target: CorruptTarget::MofPartition { map_index: 1, partition: 2 },
        at_secs: 1.0,
    });
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "corruption-bounded-recovery").passed);
    for o in &report.outcomes {
        assert!(o.succeeded, "{o:?}");
        assert_eq!(o.spatial_amplification, 0, "corruption burned retry budget: {o:?}");
    }
}

#[test]
fn flapping_partition_keeps_retry_budget_across_heal_cycles() {
    // Sever/heal the same link three times (ROADMAP gray-failures item).
    // Each heal unparks the waiting fetches and the next sever re-parks
    // them; the exponential fetch backoff caps at half the liveness
    // window, so repeated cycles must never accumulate enough misses to
    // burn the retry budget — zero FetchFailureLimit preemptions, zero
    // node-loss declarations, zero map re-executions, in both engines.
    let mut scenario = ChaosScenario::new("transient-flap");
    for i in 0..3u32 {
        let from = f64::from(i) * 15.0;
        scenario = scenario.with(ChaosFault::PartitionLink {
            a: 0,
            b: 2,
            direction: LinkDirection::Both,
            from_secs: from,
            heal_secs: from + 10.0,
            flap: None,
        });
    }
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "transient-no-node-loss").passed);
    for o in &report.outcomes {
        assert!(o.succeeded, "{o:?}");
        assert_eq!(o.total_failures, 0, "flapping link burned the retry budget: {o:?}");
        assert_eq!(o.node_loss_failures, 0, "flapping link declared a node lost: {o:?}");
        assert_eq!(o.map_attempts, 5, "flapping link re-executed a map: {o:?}");
        assert_eq!(o.spatial_amplification, 0, "flapping link preempted a reducer: {o:?}");
    }
}

#[test]
fn asymmetric_partition_is_absorbed_in_both_engines() {
    // Sever only the fetch direction (reducer node 2 cannot reach map
    // node 0); the reverse path — and with it heartbeats — stays healthy.
    // The half-open link must never be escalated to a node loss.
    let scenario = ChaosScenario::new("gray-asymmetric").with(ChaosFault::PartitionLink {
        a: 2,
        b: 0,
        direction: LinkDirection::AToB,
        from_secs: 0.0,
        heal_secs: 40.0,
        flap: None,
    });
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "asymmetric-partition-no-node-loss").passed);
    for o in &report.outcomes {
        assert!(o.succeeded, "{o:?}");
        assert_eq!(o.node_loss_failures, 0, "half-open link declared a node lost: {o:?}");
        assert_eq!(o.total_failures, 0, "half-open link recorded a failure: {o:?}");
    }
}

#[test]
fn backoff_cap_and_retry_budget_hold_under_arbitrary_flap_schedules() {
    // Property check (hand-rolled, deterministic seeds): for a spread of
    // seeded `FlapSchedule`s — varying cycle count, period, duty cycle and
    // jitter seed — the exponential fetch backoff stays capped at half the
    // liveness window and the `FetchFailureLimit` retry budget survives
    // every sever→heal cycle, in BOTH engines, in every recovery mode.
    // Each seed produces a different jittered window layout inside the
    // schedule (the seed feeds splitmix64 per-cycle draws), so this sweeps
    // genuinely distinct flap shapes, not one schedule repeated.
    for case in 0u64..6 {
        let cycles = 2 + (case % 3) as u32;
        let period_secs = 8.0 + case as f64 * 3.0;
        let down_secs = period_secs * (0.25 + 0.1 * case as f64).min(0.75);
        let flap =
            ChaosFlap { seed: 0x5EED ^ (case.wrapping_mul(0x9E37_79B9)), cycles, period_secs, down_secs };
        let scenario = ChaosScenario::new(format!("gray-flap-{case}")).with(ChaosFault::PartitionLink {
            a: 0,
            b: 2,
            direction: if case % 2 == 0 { LinkDirection::Both } else { LinkDirection::AToB },
            from_secs: 1.0 + case as f64,
            heal_secs: 0.0, // ignored when flapping: the schedule bounds the fault
            flap: Some(flap),
        });
        let report = validate_scenario(&scenario, MODES);
        assert!(report.ok(), "flap case {case}:\n{}", report.render_text());
        assert!(invariant(&report, "flap-backoff-budget").passed, "flap case {case}");
        for o in &report.outcomes {
            assert!(o.succeeded, "flap case {case}: {o:?}");
            assert_eq!(o.total_failures, 0, "flap case {case} burned the retry budget: {o:?}");
            assert_eq!(o.spatial_amplification, 0, "flap case {case} preempted a reducer: {o:?}");
            assert_eq!(o.map_attempts, 5, "flap case {case} re-executed a map: {o:?}");
        }
    }
}

#[test]
fn dfs_block_rot_fails_over_and_repairs_in_both_engines() {
    // Rot one replica of two different reduces' committed output. The
    // verified read path must serve clean bytes (runtime output stays
    // oracle-identical), charge the failovers to the scenario, and end
    // with replication restored — the `dfs-verified-read` invariant.
    let scenario = ChaosScenario::new("dfs-rot")
        .with(ChaosFault::CorruptData {
            node: 1,
            target: CorruptTarget::DfsBlock { reduce_index: 0, block: 0 },
            at_secs: 30.0,
        })
        .with(ChaosFault::CorruptData {
            node: 3,
            target: CorruptTarget::DfsBlock { reduce_index: 2, block: 0 },
            at_secs: 45.0,
        });
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "dfs-verified-read").passed);
    for o in &report.outcomes {
        assert!(o.succeeded, "{o:?}");
        assert!(o.dfs_read_failovers >= 2, "both rotten replicas must be detected: {o:?}");
        assert_eq!(o.dfs_corrupt_replicas, 0, "repair left a rotten replica: {o:?}");
        assert!(o.dfs_repair_bytes > 0, "repair copied no bytes: {o:?}");
        if o.engine == EngineKind::Runtime {
            assert_eq!(o.output_verified, Some(true), "rotten bytes reached the reader: {o:?}");
            assert_eq!(o.partitions_committed, Some(3), "{o:?}");
        }
    }
}

#[test]
fn mixed_transient_faults_stay_invisible_to_failure_accounting() {
    // Partition + both corruption kinds + a slow node: nothing in this
    // scenario may produce a failure record, so the amplification
    // denominator is zero and both conditional invariants apply.
    let scenario = ChaosScenario::new("transient-mix")
        .with(ChaosFault::PartitionLink {
            a: 1,
            b: 3,
            direction: LinkDirection::Both,
            from_secs: 2.0,
            heal_secs: 30.0,
            flap: None,
        })
        .with(ChaosFault::CorruptData {
            node: 0,
            target: CorruptTarget::MofPartition { map_index: 0, partition: 0 },
            at_secs: 1.0,
        })
        .with(ChaosFault::CorruptData {
            node: 2,
            target: CorruptTarget::AlgRecord { reduce_index: 1, seq: 0 },
            at_secs: 5.0,
        })
        .with(ChaosFault::SlowNode { node: 4, at_secs: 0.0, factor: 2.0 });
    assert_eq!(scenario.injected_failure_faults(&alm_chaos::LoweringProfile::runtime(5, 2, 5.0)), 0);
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "transient-no-node-loss").passed);
    assert!(invariant(&report, "corruption-bounded-recovery").passed);
    for o in &report.outcomes {
        assert_eq!(o.node_loss_failures, 0, "{o:?}");
    }
}
