//! Differential validation of transient faults (ISSUE: transient-fault
//! tolerance): a network partition that heals inside the liveness window
//! and checksummed data corruption must be absorbed by BOTH engines
//! without node-loss declarations, map re-executions or retry-budget
//! burn — the `transient-no-node-loss` and `corruption-bounded-recovery`
//! invariants.

use alm_chaos::{validate_scenario, ChaosFault, ChaosScenario};
use alm_types::{CorruptTarget, RecoveryMode};

const MODES: &[RecoveryMode] = &[RecoveryMode::Baseline, RecoveryMode::SfmAlg];

fn invariant<'r>(report: &'r alm_chaos::DifferentialReport, name: &str) -> &'r alm_chaos::Invariant {
    report
        .invariants
        .iter()
        .find(|i| i.name == name)
        .unwrap_or_else(|| panic!("invariant {name} missing from report:\n{}", report.render_text()))
}

#[test]
fn healing_partition_causes_no_node_loss_in_either_engine() {
    let scenario = ChaosScenario::new("transient-partition").with(ChaosFault::PartitionLink {
        a: 0,
        b: 2,
        from_secs: 0.0,
        heal_secs: 40.0,
    });
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "transient-no-node-loss").passed);
    assert_eq!(report.outcomes.len(), 4);
    for o in &report.outcomes {
        assert_eq!(o.node_loss_failures, 0, "healed partition declared a node lost: {o:?}");
        assert_eq!(o.map_attempts, 5, "healed partition re-executed a map: {o:?}");
        assert_eq!(o.total_failures, 0, "healed partition recorded a failure: {o:?}");
    }
}

#[test]
fn corrupted_mof_chunk_recovers_bounded_in_both_engines() {
    let scenario = ChaosScenario::new("transient-corrupt-mof").with(ChaosFault::CorruptData {
        node: 1,
        target: CorruptTarget::MofPartition { map_index: 1, partition: 2 },
        at_secs: 1.0,
    });
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "corruption-bounded-recovery").passed);
    for o in &report.outcomes {
        assert!(o.succeeded, "{o:?}");
        assert_eq!(o.spatial_amplification, 0, "corruption burned retry budget: {o:?}");
    }
}

#[test]
fn mixed_transient_faults_stay_invisible_to_failure_accounting() {
    // Partition + both corruption kinds + a slow node: nothing in this
    // scenario may produce a failure record, so the amplification
    // denominator is zero and both conditional invariants apply.
    let scenario = ChaosScenario::new("transient-mix")
        .with(ChaosFault::PartitionLink { a: 1, b: 3, from_secs: 2.0, heal_secs: 30.0 })
        .with(ChaosFault::CorruptData {
            node: 0,
            target: CorruptTarget::MofPartition { map_index: 0, partition: 0 },
            at_secs: 1.0,
        })
        .with(ChaosFault::CorruptData {
            node: 2,
            target: CorruptTarget::AlgRecord { reduce_index: 1, seq: 0 },
            at_secs: 5.0,
        })
        .with(ChaosFault::SlowNode { node: 4, at_secs: 0.0, factor: 2.0 });
    assert_eq!(scenario.injected_failure_faults(&alm_chaos::LoweringProfile::runtime(5, 2, 5.0)), 0);
    let report = validate_scenario(&scenario, MODES);
    assert!(report.ok(), "{}", report.render_text());
    assert!(invariant(&report, "transient-no-node-loss").passed);
    assert!(invariant(&report, "corruption-bounded-recovery").passed);
    for o in &report.outcomes {
        assert_eq!(o.node_loss_failures, 0, "{o:?}");
    }
}
