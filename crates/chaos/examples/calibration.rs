//! Print the cross-engine magnitude calibration at the default matched
//! scale, plus the per-mode invariant verdicts against the recorded
//! tolerance bands (`ToleranceBands::measured`, documented in
//! EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p alm-chaos --example calibration
//! ```

use alm_chaos::{validate_calibrated, MatchedScale, ToleranceBands};
use alm_types::RecoveryMode;

fn main() {
    let modes = [RecoveryMode::Baseline, RecoveryMode::Alg, RecoveryMode::Sfm, RecoveryMode::SfmAlg];
    let (report, calibration) =
        validate_calibrated(&modes, &MatchedScale::default(), &ToleranceBands::measured(), 3);
    print!("{}", calibration.render_text());
    print!("{}", report.render_text());
    std::process::exit(if report.ok() { 0 } else { 1 });
}
