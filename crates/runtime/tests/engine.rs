//! End-to-end tests of the threaded mini-YARN: every scenario checks both
//! *liveness* (the job completes despite injected faults) and *safety*
//! (committed output is byte-identical to the reference oracle's).

use std::sync::Arc;

use alm_runtime::am::run_job;
use alm_runtime::{FaultPlan, JobDef, MiniCluster};
use alm_types::{AlmConfig, CorruptTarget, JobId, NodeId, RecoveryMode, TaskId};
use alm_workloads::reference::{canonicalize, reference_output};
use alm_workloads::{Record, SecondarySort, Terasort, Wordcount, Workload};

fn job(id: u32, workload: Arc<dyn Workload>, maps: u32, reduces: u32, mode: RecoveryMode) -> JobDef {
    JobDef::new(JobId(id), workload, maps, reduces, 42, AlmConfig::with_mode(mode))
}

/// Read committed outputs back from the DFS and decode them.
fn committed_outputs(cluster: &MiniCluster, job: &JobDef) -> Vec<Vec<Record>> {
    (0..job.num_reduces)
        .map(|r| {
            let data = cluster
                .dfs
                .read(&job.output_path(r))
                .unwrap_or_else(|e| panic!("partition {r} missing: {e}"));
            let mut out = Vec::new();
            let mut off = 0;
            while let Some((k, v, next)) = alm_shuffle::codec::decode_at(&data, off).unwrap() {
                out.push(Record::new(k.to_vec(), v.to_vec()));
                off = next;
            }
            out
        })
        .collect()
}

fn assert_output_matches(cluster: &MiniCluster, jd: &JobDef) {
    let got = committed_outputs(cluster, jd);
    let expected = reference_output(jd.workload.as_ref(), jd.num_maps, jd.num_reduces, jd.seed);
    assert_eq!(
        canonicalize(&got),
        canonicalize(&expected),
        "engine output must equal the reference oracle's"
    );
}

// ---------- failure-free correctness, all workloads, all modes ----------

fn run_clean(workload: Arc<dyn Workload>, maps: u32, reduces: u32, mode: RecoveryMode, id: u32) {
    let cluster = Arc::new(MiniCluster::for_tests(4));
    let jd = job(id, workload, maps, reduces, mode);
    let report = run_job(cluster.clone(), jd.clone(), FaultPlan::none());
    assert!(report.succeeded, "failure-free job must succeed: {report:?}");
    assert!(report.failures.is_empty());
    assert_output_matches(&cluster, &jd);
}

#[test]
fn terasort_clean_baseline() {
    run_clean(Arc::new(Terasort::new(800)), 3, 4, RecoveryMode::Baseline, 1);
}

#[test]
fn terasort_clean_sfm_alg() {
    run_clean(Arc::new(Terasort::new(800)), 3, 4, RecoveryMode::SfmAlg, 2);
}

#[test]
fn wordcount_clean_baseline() {
    run_clean(Arc::new(Wordcount::new(4000, 20)), 3, 2, RecoveryMode::Baseline, 3);
}

#[test]
fn wordcount_clean_alg() {
    run_clean(Arc::new(Wordcount::new(4000, 20)), 3, 2, RecoveryMode::Alg, 4);
}

#[test]
fn secondarysort_clean_baseline() {
    run_clean(Arc::new(SecondarySort::new(700)), 2, 3, RecoveryMode::Baseline, 5);
}

#[test]
fn secondarysort_clean_sfm_alg() {
    run_clean(Arc::new(SecondarySort::new(700)), 2, 3, RecoveryMode::SfmAlg, 6);
}

// ---------- single task failures (Fig. 2 / Fig. 8 scenario) ----------

#[test]
fn map_oom_recovers_quickly_baseline() {
    let cluster = Arc::new(MiniCluster::for_tests(4));
    let jd = job(10, Arc::new(Terasort::new(600)), 4, 2, RecoveryMode::Baseline);
    let plan = FaultPlan::kill_task(TaskId::map(JobId(10), 1), 0.5);
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded);
    assert_eq!(report.failures.len(), 1);
    assert!(report.map_attempts >= 5, "the failed map re-ran");
    assert_output_matches(&cluster, &jd);
}

#[test]
fn reduce_oom_recovers_baseline() {
    let cluster = Arc::new(MiniCluster::for_tests(4));
    let jd = job(11, Arc::new(Terasort::new(600)), 3, 2, RecoveryMode::Baseline);
    let plan = FaultPlan::kill_task(TaskId::reduce(JobId(11), 0), 0.9);
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    assert!(report.failures.iter().any(|f| f.task == TaskId::reduce(JobId(11), 0)));
    assert_output_matches(&cluster, &jd);
}

#[test]
fn reduce_oom_resumes_from_logs_alg() {
    let cluster = Arc::new(MiniCluster::for_tests(4));
    let mut alm = AlmConfig::with_mode(RecoveryMode::Alg);
    alm.logging_interval_ms = 1; // log eagerly so the resume path is exercised
    let jd = JobDef::new(JobId(12), Arc::new(Terasort::new(1500)), 3, 2, 42, alm);
    let plan = FaultPlan::kill_task(TaskId::reduce(JobId(12), 1), 0.9);
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    assert_output_matches(&cluster, &jd);
}

#[test]
fn reduce_oom_all_workloads_sfm_alg() {
    let workloads: Vec<(u32, Arc<dyn Workload>)> = vec![
        (13, Arc::new(Terasort::new(700))),
        (14, Arc::new(Wordcount::new(3000, 25))),
        (15, Arc::new(SecondarySort::new(600))),
    ];
    for (id, w) in workloads {
        let cluster = Arc::new(MiniCluster::for_tests(4));
        let mut alm = AlmConfig::with_mode(RecoveryMode::SfmAlg);
        alm.logging_interval_ms = 1;
        let jd = JobDef::new(JobId(id), w, 3, 2, 42, alm);
        let plan = FaultPlan::kill_task(TaskId::reduce(JobId(id), 0), 0.5);
        let report = run_job(cluster.clone(), jd.clone(), plan);
        assert!(report.succeeded, "job {id}: {report:?}");
        assert_output_matches(&cluster, &jd);
    }
}

// ---------- node crashes (Figs. 3/4/9/10, Table II scenario) ----------

#[test]
fn node_crash_baseline_recovers_with_amplification() {
    let cluster = Arc::new(MiniCluster::for_tests(5));
    let jd = job(20, Arc::new(Terasort::new(900)), 5, 3, RecoveryMode::Baseline);
    // Crash node 1 once reduce 0 is mid-shuffle; its MOFs are lost.
    let plan = FaultPlan::crash_node_at_reduce_progress(NodeId(1), 0, 0.05);
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    // Losing a node's MOFs must have caused at least one observable failure
    // (fetch-failure preemptions and/or node-crash task deaths).
    assert!(!report.failures.is_empty(), "baseline cannot hide a node loss");
    assert_output_matches(&cluster, &jd);
}

#[test]
fn node_crash_sfm_no_reduce_amplification() {
    let cluster = Arc::new(MiniCluster::for_tests(5));
    let jd = job(21, Arc::new(Terasort::new(900)), 5, 3, RecoveryMode::Sfm);
    let plan = FaultPlan::crash_node_at_reduce_progress(NodeId(1), 0, 0.05);
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    // SFM's proactive regeneration means no healthy reducer is preempted
    // for fetch failures: the only failures are tasks that died with the node.
    assert!(
        report.failures.iter().all(|f| f.kind == alm_types::FailureKind::NodeCrash),
        "no fetch-failure amplification under SFM: {:?}",
        report.failures
    );
    assert_output_matches(&cluster, &jd);
}

#[test]
fn node_crash_sfm_alg_single_reducer_temporal_case() {
    // The Fig. 10 scenario: Wordcount with one ReduceTask, node crash mid-
    // reduce; SFM+ALG migrates with FCM and resumes from DFS logs.
    let cluster = Arc::new(MiniCluster::for_tests(4));
    let mut alm = AlmConfig::with_mode(RecoveryMode::SfmAlg);
    alm.logging_interval_ms = 1;
    let jd = JobDef::new(JobId(22), Arc::new(Wordcount::new(5000, 25)), 4, 1, 42, alm);
    // Crash the reducer's own node: reduce 0 runs on some node; crash node 0
    // at 50% reduce progress (node 0 hosts MOFs and possibly the reducer).
    let plan = FaultPlan::crash_node_at_reduce_progress(NodeId(0), 0, 0.5);
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    assert_output_matches(&cluster, &jd);
}

#[test]
fn multiple_concurrent_node_crashes_sfm() {
    let cluster = Arc::new(MiniCluster::for_tests(6));
    let jd = job(23, Arc::new(Terasort::new(600)), 4, 4, RecoveryMode::SfmAlg);
    let plan = FaultPlan::crash_node_at_reduce_progress(NodeId(1), 0, 0.05)
        .and(FaultPlan::crash_node_at_reduce_progress(NodeId(2), 1, 0.05));
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    assert_output_matches(&cluster, &jd);
}

#[test]
fn fcm_attempts_launched_on_node_failure_sfm() {
    let cluster = Arc::new(MiniCluster::for_tests(5));
    let jd = job(24, Arc::new(Terasort::new(800)), 4, 2, RecoveryMode::Sfm);
    // Crash a node hosting MOFs + possibly a reducer.
    let plan = FaultPlan::crash_node_at_reduce_progress(NodeId(0), 0, 0.05);
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    if report.failures.iter().any(|f| f.task.is_reduce()) {
        assert!(report.fcm_attempts > 0, "reduce recovery under SFM uses FCM mode");
    }
    assert_output_matches(&cluster, &jd);
}

// ---------- determinism / idempotence under duplicate attempts ----------

#[test]
fn speculative_duplicates_commit_identical_output() {
    // SFM often runs a local resume AND an FCM migration concurrently; the
    // first to finish wins, and output must be correct either way.
    for seed in [1u64, 2, 3] {
        let cluster = Arc::new(MiniCluster::for_tests(4));
        let mut alm = AlmConfig::with_mode(RecoveryMode::SfmAlg);
        alm.logging_interval_ms = 1;
        let jd = JobDef::new(JobId(30 + seed as u32), Arc::new(Terasort::new(500)), 3, 2, seed, alm);
        let plan = FaultPlan::kill_task(TaskId::reduce(jd.id, 0), 0.4);
        let report = run_job(cluster.clone(), jd.clone(), plan);
        assert!(report.succeeded, "seed {seed}: {report:?}");
        assert_output_matches(&cluster, &jd);
    }
}

// ---------- transient faults: partitions, corruption, checksummed recovery ----------

#[test]
fn partition_healing_before_liveness_causes_no_node_loss() {
    for (id, mode) in [(40, RecoveryMode::Baseline), (41, RecoveryMode::SfmAlg)] {
        let cluster = Arc::new(MiniCluster::for_tests(5));
        let jd = job(id, Arc::new(Terasort::new(900)), 5, 3, mode);
        // Sever two links at t=0 and heal them well before the scaled
        // liveness timeout (250 ms): every node keeps heartbeating, so the
        // partition must only delay the shuffle — never amplify.
        let plan = FaultPlan::partition_link(NodeId(0), NodeId(1), 0, 100).and(FaultPlan::partition_link(
            NodeId(2),
            NodeId(1),
            0,
            100,
        ));
        let report = run_job(cluster.clone(), jd.clone(), plan);
        assert!(report.succeeded, "{mode:?}: {report:?}");
        // Zero node-lost declarations, zero fetch-failure preemptions and
        // zero map re-executions: parked fetches burn no retry budget.
        assert_eq!(report.failures_of_kind(alm_types::FailureKind::NodeCrash), 0, "{mode:?}");
        assert_eq!(report.failures_of_kind(alm_types::FailureKind::FetchFailureLimit), 0, "{mode:?}");
        assert!(report.failures.is_empty(), "{mode:?}: {:?}", report.failures);
        assert_eq!(report.map_attempts, jd.num_maps, "no map re-execution under {mode:?}");
        assert_eq!(report.reduce_attempts, jd.num_reduces, "no reduce re-execution under {mode:?}");
        assert_output_matches(&cluster, &jd);
    }
}

#[test]
fn corrupted_mof_partition_is_refetched_without_preemption() {
    for (id, mode) in [(42, RecoveryMode::Baseline), (43, RecoveryMode::SfmAlg)] {
        let cluster = Arc::new(MiniCluster::for_tests(4));
        let jd = job(id, Arc::new(Terasort::new(800)), 3, 4, mode);
        // Rot reduce 2's partition of map 1's MOF the moment it commits.
        let plan =
            FaultPlan::corrupt_data(NodeId(0), CorruptTarget::MofPartition { map_index: 1, partition: 2 }, 0);
        let report = run_job(cluster.clone(), jd.clone(), plan);
        assert!(report.succeeded, "{mode:?}: {report:?}");
        // The reducer detected the rot and the AM regenerated the MOF; the
        // fetch-failure budget was never charged, so no task failed.
        assert!(report.corruption_refetches >= 1, "{mode:?}: rot must be reported: {report:?}");
        assert_eq!(report.failures_of_kind(alm_types::FailureKind::FetchFailureLimit), 0, "{mode:?}");
        assert!(report.failures.is_empty(), "{mode:?}: repair is failure-free: {:?}", report.failures);
        assert_eq!(report.map_attempts, jd.num_maps + 1, "exactly one regeneration under {mode:?}");
        assert_output_matches(&cluster, &jd);
    }
}

#[test]
fn corrupted_alg_log_recovery_is_bounded() {
    let cluster = Arc::new(MiniCluster::for_tests(4));
    let mut alm = AlmConfig::with_mode(RecoveryMode::SfmAlg);
    alm.logging_interval_ms = 1;
    // Allow a second attempt on the origin node: the local-resume path is the
    // one that consults the node-local shuffle-stage logs (Algorithm 1 l.9-12).
    alm.limit_local = 2;
    let jd = JobDef::new(JobId(44), Arc::new(Terasort::new(900)), 4, 2, 42, alm);
    // Reduce 0 parks behind a partitioned map source, writing shuffle-stage
    // log records the whole time; its first record rots on disk, and the
    // attempt is killed right after the shuffle completes. Recovery must
    // classify the rot, truncate at it, and redo at most one snapshot
    // interval of work.
    let plan = FaultPlan::partition_link(NodeId(0), NodeId(3), 0, 80)
        .and(FaultPlan::corrupt_data(NodeId(0), CorruptTarget::AlgRecord { reduce_index: 0, seq: 0 }, 0))
        .and(FaultPlan::kill_task(TaskId::reduce(JobId(44), 0), 0.34));
    let report = run_job(cluster.clone(), jd.clone(), plan);
    assert!(report.succeeded, "{report:?}");
    assert!(!report.log_recoveries.is_empty(), "the killed reducer must consult its logs: {report:?}");
    assert!(report.recoveries_bounded(), "at most one snapshot interval redone: {:?}", report.log_recoveries);
    assert!(
        report.log_recoveries.iter().any(|e| e.report.checksum_mismatches > 0),
        "the rotted record must be seen and classified: {:?}",
        report.log_recoveries
    );
    assert_output_matches(&cluster, &jd);
}
