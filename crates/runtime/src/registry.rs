//! The MOF registry and shuffle fetch service.
//!
//! The AM-side registry maps each map index to the node and MOF of its
//! latest successful attempt; reducers fetch partitions through
//! [`try_fetch`], which distinguishes the situations a reducer can meet
//! (§II-C):
//!
//! * **NotReady** — the map hasn't committed yet (or SFM marked it as being
//!   proactively regenerated, in which case the reducer *waits* instead of
//!   burning fetch retries — the fix for failure amplification);
//! * **Data** — the bytes arrived and verified;
//! * **SourceDead** — the MOF is registered but its host is gone: the
//!   fetch-retry treadmill starts, and with baseline recovery eventually
//!   kills the reducer;
//! * **Unreachable** — the host is alive and heartbeating but the link to
//!   it is severed (transient partition): the reducer *parks* the fetch
//!   with backoff instead of burning its retry budget;
//! * **CorruptData** — the bytes arrived but failed the CRC32 frame check:
//!   the data is bad while the source is healthy, so the reducer asks for
//!   regeneration and re-fetches — this never counts against the
//!   fetch-failure budget.

use alm_shuffle::{MofData, ShuffleError};
use alm_types::{JobId, NodeId};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::cluster::{LinkTable, NodeHandle};
use crate::resident::ResidentCache;

/// Shared MOF location table.
#[derive(Default)]
pub struct MofRegistry {
    inner: Mutex<HashMap<u32, (NodeId, MofData)>>,
    /// Map indices whose MOFs are being proactively regenerated (SFM).
    regenerating: Mutex<HashSet<u32>>,
}

impl MofRegistry {
    pub fn new() -> MofRegistry {
        MofRegistry::default()
    }

    /// Register (or replace, after re-execution) a map's MOF location.
    pub fn register(&self, map_index: u32, node: NodeId, mof: MofData) {
        self.inner.lock().insert(map_index, (node, mof));
        self.regenerating.lock().remove(&map_index);
    }

    pub fn lookup(&self, map_index: u32) -> Option<(NodeId, MofData)> {
        self.inner.lock().get(&map_index).cloned()
    }

    pub fn registered_count(&self) -> usize {
        self.inner.lock().len()
    }

    /// Map indices whose registered MOF lives on `node`.
    pub fn mofs_on_node(&self, node: NodeId) -> Vec<u32> {
        let mut v: Vec<u32> =
            self.inner.lock().iter().filter(|(_, (n, _))| *n == node).map(|(i, _)| *i).collect();
        v.sort_unstable();
        v
    }

    /// Mark a map's MOF as being regenerated; fetches return NotReady
    /// instead of SourceDead until the new MOF registers.
    pub fn mark_regenerating(&self, map_index: u32) {
        self.regenerating.lock().insert(map_index);
    }

    pub fn is_regenerating(&self, map_index: u32) -> bool {
        self.regenerating.lock().contains(&map_index)
    }
}

/// Result of one fetch attempt.
#[derive(Debug, Clone)]
pub enum FetchOutcome {
    /// The partition's bytes, CRC-verified, with the node that served
    /// them — the caller consults the [`LinkTable`] degradation state for
    /// this `fetcher → node` direction to model gray (slow/lossy) links.
    Data {
        node: NodeId,
        data: Bytes,
        /// Served from the chain layer's resident in-memory cache rather
        /// than a disk read — the reducer reports it so `JobReport` counts
        /// resident hits with the same semantics as the simulator.
        resident: bool,
    },
    /// Not available yet; wait without penalty.
    NotReady,
    /// Registered but unreachable: the host node is dead/wiped.
    SourceDead { node: NodeId },
    /// The host is alive but the link to it is partitioned: park the fetch
    /// (no fetch-failure report, no retry-budget burn) until it heals.
    Unreachable { node: NodeId },
    /// The bytes arrived but failed the frame checksum: the source is
    /// healthy, the data is not. Report for regeneration and re-fetch;
    /// never charged against the fetch-failure budget.
    CorruptData { node: NodeId },
}

/// Fetch `partition` of map `map_index` of `job` for the reducer running
/// on `fetcher`, honouring the cluster's data-plane link state.
///
/// When a chain-layer [`ResidentCache`] is installed, it is consulted
/// *before* any disk path: a resident copy on a live, reachable node is
/// served at memory speed (and shields the fetch from rotten disk bytes —
/// the copy was CRC-framed into RAM at admission); a successful disk fetch
/// admits its bytes back into the cache on the MOF's home node.
#[allow(clippy::too_many_arguments)]
pub fn try_fetch(
    nodes: &[Arc<NodeHandle>],
    links: &LinkTable,
    registry: &MofRegistry,
    resident: Option<&dyn ResidentCache>,
    fetcher: NodeId,
    job: JobId,
    map_index: u32,
    partition: u32,
) -> FetchOutcome {
    if let Some(cache) = resident {
        if let Some((holder, data)) = cache.lookup(job, map_index, partition) {
            if nodes[holder.0 as usize].is_alive() && !links.is_severed(fetcher, holder) {
                return FetchOutcome::Data { node: holder, data, resident: true };
            }
        }
    }
    let Some((node_id, mof)) = registry.lookup(map_index) else {
        return FetchOutcome::NotReady;
    };
    let node = &nodes[node_id.0 as usize];
    if !node.is_alive() {
        if registry.is_regenerating(map_index) {
            return FetchOutcome::NotReady;
        }
        return FetchOutcome::SourceDead { node: node_id };
    }
    if links.is_severed(fetcher, node_id) {
        // Alive and heartbeating, just cut off in the fetcher → source
        // direction (an asymmetric partition leaves the reverse path — and
        // with it heartbeats — healthy): this must never look like a dead
        // source or the partition amplifies into task preemption.
        return FetchOutcome::Unreachable { node: node_id };
    }
    match mof.read_partition(&node.fs, partition) {
        Ok(data) => {
            if let Some(cache) = resident {
                cache.admit(node_id, job, map_index, partition, &data);
            }
            FetchOutcome::Data { node: node_id, data, resident: false }
        }
        Err(ShuffleError::ChecksumMismatch(_)) => {
            if registry.is_regenerating(map_index) {
                FetchOutcome::NotReady
            } else {
                FetchOutcome::CorruptData { node: node_id }
            }
        }
        Err(_) => {
            // Store wiped between liveness check and read, or MOF dropped.
            if registry.is_regenerating(map_index) {
                FetchOutcome::NotReady
            } else {
                FetchOutcome::SourceDead { node: node_id }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::MiniCluster;
    use alm_shuffle::mof::write_mof;
    use alm_shuffle::LocalFs;
    use alm_types::LinkDirection;

    fn mini() -> (MiniCluster, MofData) {
        let c = MiniCluster::for_tests(3);
        let mut p0 = Vec::new();
        alm_shuffle::codec::encode_into(&mut p0, b"k", b"v");
        let mof = write_mof(&c.node(NodeId(1)).fs, "mof/m0", vec![p0]).unwrap();
        (c, mof)
    }

    #[test]
    fn fetch_states() {
        let (c, mof) = mini();
        let reg = MofRegistry::new();
        let me = NodeId(0);
        // Unregistered: not ready.
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, me, JobId(0), 0, 0),
            FetchOutcome::NotReady
        ));
        // Registered + alive: data.
        reg.register(0, NodeId(1), mof);
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, me, JobId(0), 0, 0),
            FetchOutcome::Data { .. }
        ));
        // Node crash: source dead.
        c.crash_node(NodeId(1));
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, me, JobId(0),0, 0),
            FetchOutcome::SourceDead { node } if node == NodeId(1)
        ));
        // SFM marks regenerating: reducers wait instead of failing.
        reg.mark_regenerating(0);
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, me, JobId(0), 0, 0),
            FetchOutcome::NotReady
        ));
    }

    #[test]
    fn partitioned_link_parks_instead_of_declaring_death() {
        let (c, mof) = mini();
        let reg = MofRegistry::new();
        reg.register(0, NodeId(1), mof);
        c.links.sever(NodeId(0), NodeId(1), LinkDirection::Both);
        // Fetcher behind the partition parks; the source is NOT dead.
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(0), JobId(0),0, 0),
            FetchOutcome::Unreachable { node } if node == NodeId(1)
        ));
        // A reducer on an unaffected node still fetches normally.
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(2), JobId(0), 0, 0),
            FetchOutcome::Data { .. }
        ));
        // The map's own node always reaches itself.
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(1), JobId(0), 0, 0),
            FetchOutcome::Data { .. }
        ));
        // Healing restores the flow.
        assert!(c.links.heal(NodeId(0), NodeId(1), LinkDirection::Both));
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(0), JobId(0), 0, 0),
            FetchOutcome::Data { .. }
        ));
    }

    #[test]
    fn asymmetric_partition_gates_only_the_cut_direction() {
        // Sever node 0 → node 1 only. Node 0 cannot fetch from node 1,
        // but a MOF on node 0 is still fetchable *by* node 1 — the gray
        // half-open link the symmetric model could not express.
        let (c, mof) = mini();
        let reg = MofRegistry::new();
        reg.register(0, NodeId(1), mof);
        let mut p0 = Vec::new();
        alm_shuffle::codec::encode_into(&mut p0, b"k2", b"v2");
        let mof0 = write_mof(&c.node(NodeId(0)).fs, "mof/m1", vec![p0]).unwrap();
        reg.register(1, NodeId(0), mof0);
        c.links.sever(NodeId(0), NodeId(1), LinkDirection::AToB);
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(0), JobId(0),0, 0),
            FetchOutcome::Unreachable { node } if node == NodeId(1)
        ));
        assert!(
            matches!(
                try_fetch(&c.nodes, &c.links, &reg, None, NodeId(1), JobId(0), 1, 0),
                FetchOutcome::Data { .. }
            ),
            "reverse direction must stay fetchable"
        );
    }

    #[test]
    fn rotted_partition_is_corrupt_data_until_regeneration() {
        let (c, mof) = mini();
        let reg = MofRegistry::new();
        let fs = &c.node(NodeId(1)).fs;
        // Flip one payload byte inside the stored frame.
        let (off, _) = mof.frame_range(0).unwrap();
        let mut blob = fs.read(&mof.path).unwrap().to_vec();
        blob[off as usize + alm_shuffle::frame::FRAME_HEADER_LEN] ^= 0x55;
        fs.write(&mof.path, Bytes::from(blob)).unwrap();
        reg.register(0, NodeId(1), mof);
        // Healthy source, bad bytes: distinct from SourceDead.
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(0), JobId(0),0, 0),
            FetchOutcome::CorruptData { node } if node == NodeId(1)
        ));
        // Once regeneration is underway, the reducer just waits.
        reg.mark_regenerating(0);
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(0), JobId(0), 0, 0),
            FetchOutcome::NotReady
        ));
    }

    #[test]
    fn resident_cache_serves_before_disk_and_admits_on_fetch() {
        use crate::resident::testutil::MapResident;
        let (c, mof) = mini();
        let reg = MofRegistry::new();
        reg.register(0, NodeId(1), mof.clone());
        let cache = MapResident::default();
        let job = JobId(0);

        // First fetch reads disk (resident: false) and admits the bytes
        // into the cache.
        let first = try_fetch(&c.nodes, &c.links, &reg, Some(&cache), NodeId(0), job, 0, 0);
        assert!(matches!(first, FetchOutcome::Data { node, resident: false, .. } if node == NodeId(1)));
        assert_eq!(cache.len(), 1, "fetched partition must be admitted");

        // Rot the on-disk frame: the resident copy shields the fetch, and
        // the outcome is marked resident so the AM can count the hit.
        let fs = &c.node(NodeId(1)).fs;
        let (off, _) = mof.frame_range(0).unwrap();
        let mut blob = fs.read(&mof.path).unwrap().to_vec();
        blob[off as usize + alm_shuffle::frame::FRAME_HEADER_LEN] ^= 0x55;
        fs.write(&mof.path, Bytes::from(blob)).unwrap();
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, Some(&cache), NodeId(0), job, 0, 0),
            FetchOutcome::Data { resident: true, .. }
        ));

        // A severed fetcher → holder link skips the resident copy (and the
        // disk path behind it): parked, never declared dead.
        c.links.sever(NodeId(0), NodeId(1), LinkDirection::AToB);
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, Some(&cache), NodeId(0), job, 0, 0),
            FetchOutcome::Unreachable { .. }
        ));
        assert!(c.links.heal(NodeId(0), NodeId(1), LinkDirection::AToB));

        // Invalidation exposes the rotten disk bytes again.
        cache.invalidate_node(NodeId(1));
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, Some(&cache), NodeId(0), job, 0, 0),
            FetchOutcome::CorruptData { node } if node == NodeId(1)
        ));
    }

    #[test]
    fn reregistration_clears_regenerating_and_redirects() {
        let (c, mof) = mini();
        let reg = MofRegistry::new();
        reg.register(0, NodeId(1), mof);
        c.crash_node(NodeId(1));
        reg.mark_regenerating(0);

        // Re-executed map commits on node 2.
        let mut p0 = Vec::new();
        alm_shuffle::codec::encode_into(&mut p0, b"k", b"v");
        let mof2 = write_mof(&c.node(NodeId(2)).fs, "mof/m0r1", vec![p0]).unwrap();
        reg.register(0, NodeId(2), mof2);
        assert!(!reg.is_regenerating(0));
        assert!(matches!(
            try_fetch(&c.nodes, &c.links, &reg, None, NodeId(0), JobId(0), 0, 0),
            FetchOutcome::Data { .. }
        ));
        assert_eq!(reg.mofs_on_node(NodeId(2)), vec![0]);
        assert!(reg.mofs_on_node(NodeId(1)).is_empty());
    }
}
