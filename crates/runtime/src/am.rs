//! The ApplicationMaster: scheduling, failure detection, and recovery.
//!
//! One `JobRunner` drives one job: it launches map/reduce attempts as
//! threads, consumes their events, injects planned faults, detects node
//! failures after the liveness timeout, and recovers according to the
//! configured [`alm_types::RecoveryMode`]:
//!
//! * **Baseline** (stock YARN): failed tasks are re-launched from scratch;
//!   lost MOFs are only re-executed after enough reducers *report* fetch
//!   failures — which is exactly how a single node crash snowballs into
//!   temporal and spatial failure amplification.
//! * **ALG/SFM/SFM+ALG**: Algorithm 1 — proactive high-priority map
//!   regeneration (reducers wait instead of failing), local log-resume
//!   relaunches, and speculative FCM-mode migration.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alm_core::{schedule_recovery, ExecMode, LogPaths, PolicyCtx, SchedAction};
use alm_shuffle::frame::FRAME_HEADER_LEN;
use alm_shuffle::LocalFs;
use alm_types::{
    AttemptId, CorruptTarget, FailureKind, FailureReport, LinkDegradation, LinkDirection, NodeId,
    ReplicationLevel, TaskId,
};
use bytes::Bytes;

use crate::cluster::MiniCluster;
use crate::events::TaskEvent;
use crate::faults::{Fault, FaultPlan};
use crate::job::JobDef;
use crate::maptask::{run_map, MapCtx};
use crate::reducetask::{run_reduce, ReduceCtx};
use crate::registry::MofRegistry;
use crate::report::{FailureEvent, JobReport, LogRecoveryEvent};

/// How many distinct fetch-failure reports against one map make baseline
/// YARN declare the MOF lost and re-execute the map.
const BASELINE_FETCH_REPORTS_TO_REEXECUTE: u32 = 3;

/// Hard wall-clock cap per job run (the runtime is test-scaled; a healthy
/// run finishes in well under a second).
const JOB_WALL_CAP: Duration = Duration::from_secs(60);

struct TaskState {
    completed: bool,
    attempts: u32,
    /// Running attempts: attempt -> (node, mode, cancel flag).
    running: HashMap<AttemptId, (NodeId, ExecMode, Arc<AtomicBool>)>,
    /// Reduce only: attempts made per node (Algorithm 1's limit_local).
    attempts_on_node: HashMap<NodeId, u32>,
}

impl TaskState {
    fn new() -> TaskState {
        TaskState { completed: false, attempts: 0, running: HashMap::new(), attempts_on_node: HashMap::new() }
    }
}

/// Drives one job to completion (or failure) on a mini-cluster.
pub struct JobRunner {
    cluster: Arc<MiniCluster>,
    job: Arc<JobDef>,
    faults: FaultPlan,
    registry: Arc<MofRegistry>,
    events_tx: Sender<TaskEvent>,
    events_rx: Receiver<TaskEvent>,
    epoch: Instant,
    maps: Vec<TaskState>,
    reduces: Vec<TaskState>,
    fetch_reports: HashMap<u32, u32>,
    /// Distinct reporters per map (baseline needs reports from distinct
    /// reducers, approximated by counting reports).
    handled_node_failures: Vec<NodeId>,
    threads: Vec<std::thread::JoinHandle<()>>,
    report: JobReport,
    rr_next: u32,
    pending_crashes_ms: Vec<(NodeId, u64)>,
    pending_crashes_progress: Vec<(NodeId, u32, f64)>,
    pending_slow_ms: Vec<(NodeId, u64, f64)>,
    /// Link severs and heals due at their timestamps (transient
    /// partitions, one entry per expanded flap window), with the direction
    /// each cut applies to.
    pending_severs: Vec<(NodeId, NodeId, LinkDirection, u64)>,
    pending_heals: Vec<(NodeId, NodeId, LinkDirection, u64)>,
    /// Degraded-link activations and restorations due at their timestamps.
    pending_degrades: Vec<LinkDegradation>,
    pending_undegrades: Vec<(NodeId, NodeId, LinkDirection, u64)>,
    /// Data corruptions due at their timestamps. A corruption whose target
    /// has not materialised yet (MOF not committed, log record not written)
    /// stays pending and is retried each scheduling tick.
    pending_corruptions: Vec<(NodeId, CorruptTarget, u64)>,
}

impl JobRunner {
    pub fn new(cluster: Arc<MiniCluster>, job: JobDef, faults: FaultPlan) -> JobRunner {
        let (events_tx, events_rx) = unbounded();
        let maps = (0..job.num_maps).map(|_| TaskState::new()).collect();
        let reduces = (0..job.num_reduces).map(|_| TaskState::new()).collect();
        let mut pending_crashes_ms = Vec::new();
        let mut pending_crashes_progress = Vec::new();
        let mut pending_slow_ms = Vec::new();
        let mut pending_severs = Vec::new();
        let mut pending_heals = Vec::new();
        let mut pending_degrades = Vec::new();
        let mut pending_undegrades = Vec::new();
        let mut pending_corruptions = Vec::new();
        // Partition windows (flap schedules included) come pre-expanded by
        // the shared plan helper, so this engine and the simulator lower
        // the exact same sever/heal timeline.
        for w in faults.partition_windows() {
            pending_severs.push((w.a, w.b, w.direction, w.from_ms));
            pending_heals.push((w.a, w.b, w.direction, w.heal_ms));
        }
        for f in &faults.faults {
            match f {
                Fault::CrashNodeAtMs { node, at_ms } => pending_crashes_ms.push((*node, *at_ms)),
                Fault::CrashNodeAtReduceProgress { node, reduce_index, at_progress } => {
                    pending_crashes_progress.push((*node, *reduce_index, *at_progress))
                }
                Fault::SlowNode { node, at_ms, factor } => pending_slow_ms.push((*node, *at_ms, *factor)),
                Fault::PartitionLink { .. } => {} // expanded above
                Fault::DegradedLink { a, b, direction, heal_ms, .. } => {
                    pending_undegrades.push((*a, *b, *direction, *heal_ms));
                }
                Fault::CorruptData { node, target, at_ms } => {
                    pending_corruptions.push((*node, *target, *at_ms))
                }
                Fault::KillTask { .. } => {}
            }
        }
        pending_degrades.extend(faults.degradations());
        JobRunner {
            cluster,
            job: Arc::new(job),
            faults,
            registry: Arc::new(MofRegistry::new()),
            events_tx,
            events_rx,
            epoch: Instant::now(),
            maps,
            reduces,
            fetch_reports: HashMap::new(),
            handled_node_failures: Vec::new(),
            threads: Vec::new(),
            report: JobReport::default(),
            rr_next: 0,
            pending_crashes_ms,
            pending_crashes_progress,
            pending_slow_ms,
            pending_severs,
            pending_heals,
            pending_degrades,
            pending_undegrades,
            pending_corruptions,
        }
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn alm_enabled(&self) -> bool {
        self.job.alm.mode.sfm_enabled()
    }

    /// Round-robin over alive nodes, optionally avoiding one.
    fn pick_node(&mut self, avoid: Option<NodeId>) -> Option<NodeId> {
        let n = self.cluster.nodes.len() as u32;
        for _ in 0..n {
            let id = NodeId(self.rr_next % n);
            self.rr_next += 1;
            if !self.cluster.node(id).is_alive() {
                continue;
            }
            if avoid == Some(id) && self.cluster.alive_nodes().len() > 1 {
                continue;
            }
            return Some(id);
        }
        None
    }

    fn launch_map(&mut self, task: TaskId, on: Option<NodeId>) {
        debug_assert!(task.is_map());
        let idx = task.index as usize;
        if self.maps[idx].completed && on.is_none() {
            return;
        }
        let Some(node_id) = on.or_else(|| self.pick_node(None)) else {
            return;
        };
        let state = &mut self.maps[idx];
        let attempt = task.attempt(state.attempts);
        state.attempts += 1;
        self.report.map_attempts += 1;
        let cancelled = Arc::new(AtomicBool::new(false));
        state.running.insert(attempt, (node_id, ExecMode::Regular, cancelled.clone()));
        let ctx = MapCtx {
            job: self.job.clone(),
            attempt,
            node: self.cluster.node(node_id).clone(),
            events: self.events_tx.clone(),
            config: self.cluster.config.clone(),
            kill_at: self.faults.kill_point(task, attempt.number),
            cancelled,
        };
        self.threads.push(std::thread::spawn(move || run_map(ctx)));
    }

    fn launch_reduce(&mut self, task: TaskId, on: Option<NodeId>, avoid: Option<NodeId>, mode: ExecMode) {
        debug_assert!(task.is_reduce());
        let idx = task.index as usize;
        if self.reduces[idx].completed {
            return;
        }
        let Some(node_id) = on.or_else(|| self.pick_node(avoid)) else {
            return;
        };
        let state = &mut self.reduces[idx];
        let attempt = task.attempt(state.attempts);
        state.attempts += 1;
        *state.attempts_on_node.entry(node_id).or_insert(0) += 1;
        self.report.reduce_attempts += 1;
        if mode == ExecMode::Fcm {
            self.report.fcm_attempts += 1;
        }
        let cancelled = Arc::new(AtomicBool::new(false));
        state.running.insert(attempt, (node_id, mode, cancelled.clone()));
        let nodes = Arc::new(self.cluster.nodes.clone());
        let ctx = ReduceCtx {
            job: self.job.clone(),
            attempt,
            node: self.cluster.node(node_id).clone(),
            nodes,
            links: self.cluster.links.clone(),
            dfs: self.cluster.dfs.clone(),
            registry: self.registry.clone(),
            resident: self.cluster.resident(),
            events: self.events_tx.clone(),
            config: self.cluster.config.clone(),
            kill_at: self.faults.kill_point(task, attempt.number),
            mode,
            cancelled,
            epoch: self.epoch,
        };
        self.threads.push(std::thread::spawn(move || run_reduce(ctx)));
    }

    fn record_failure(&mut self, attempt: AttemptId, kind: FailureKind) {
        // Transient kinds must be absorbed before reaching the report: slow
        // nodes keep heartbeating, partitioned fetches park, corrupt chunks
        // re-fetch against their checksum. A transient recorded here would
        // skew every amplification count the campaigns compare.
        debug_assert!(
            !matches!(
                kind,
                FailureKind::SlowNode | FailureKind::NetworkPartition | FailureKind::DataCorruption
            ),
            "transient kind {kind:?} must not be recorded as an attempt failure"
        );
        self.report.failures.push(FailureEvent {
            at_ms: self.now_ms(),
            task: attempt.task,
            attempt_number: attempt.number,
            kind,
        });
    }

    /// Count of running FCM attempts across the job (Algorithm 1 line 16).
    fn fcm_running(&self) -> usize {
        self.reduces.iter().flat_map(|t| t.running.values()).filter(|(_, m, _)| *m == ExecMode::Fcm).count()
    }

    fn execute_actions(&mut self, actions: Vec<SchedAction>) {
        for a in actions {
            match a {
                SchedAction::LaunchMap { task, high_priority: _ } => {
                    // High priority in this engine = launched immediately
                    // (threads start at once) and marked regenerating so
                    // reducers wait instead of failing.
                    self.registry.mark_regenerating(task.index);
                    self.maps[task.index as usize].completed = false;
                    self.launch_map(task, None);
                }
                SchedAction::RelaunchReduceOnOrigin { task, node } => {
                    self.launch_reduce(task, Some(node), None, ExecMode::Regular);
                }
                SchedAction::LaunchSpeculativeReduce { task, mode, avoid } => {
                    self.launch_reduce(task, None, avoid, mode);
                }
            }
        }
    }

    fn handle_task_failure(&mut self, attempt: AttemptId, node: NodeId, kind: FailureKind) {
        let task = attempt.task;
        self.record_failure(attempt, kind);
        // Drop the dead attempt from the running set.
        let state = if task.is_map() {
            &mut self.maps[task.index as usize]
        } else {
            &mut self.reduces[task.index as usize]
        };
        state.running.remove(&attempt);
        if state.completed {
            return;
        }

        if self.alm_enabled() {
            let mut report = FailureReport::task_failure(node, kind, task);
            report.node_alive = self.cluster.node(node).is_alive();
            let mut ctx = PolicyCtx::new(&self.job.alm, self.fcm_running());
            if task.is_reduce() {
                let st = &self.reduces[task.index as usize];
                ctx.attempts_on_source_node
                    .insert(task, st.attempts_on_node.get(&node).copied().unwrap_or(0));
                ctx.running_attempts.insert(task, st.running.len() as u32);
            }
            let actions = schedule_recovery(&report, &ctx);
            self.execute_actions(actions);
        } else {
            // Baseline: plain re-execution on some healthy node.
            if task.is_map() {
                self.launch_map(task, None);
            } else {
                self.launch_reduce(task, None, None, ExecMode::Regular);
            }
        }
    }

    fn handle_node_failure(&mut self, node: NodeId) {
        self.handled_node_failures.push(node);
        // Attempts running on the dead node died silently; fail them now.
        let mut dead_attempts: Vec<(AttemptId, ExecMode)> = Vec::new();
        for table in [&mut self.maps, &mut self.reduces] {
            for st in table.iter_mut() {
                let doomed: Vec<AttemptId> =
                    st.running.iter().filter(|(_, (n, _, _))| *n == node).map(|(a, _)| *a).collect();
                for a in doomed {
                    let (_, mode, _) = st.running.remove(&a).unwrap();
                    if !st.completed {
                        dead_attempts.push((a, mode));
                    }
                }
            }
        }
        for (a, _) in &dead_attempts {
            self.record_failure(*a, FailureKind::NodeCrash);
        }

        let lost_mofs: Vec<u32> = self.registry.mofs_on_node(node);

        if self.alm_enabled() {
            let running_tasks: Vec<TaskId> = dead_attempts.iter().map(|(a, _)| a.task).collect();
            let lost_map_tasks: Vec<TaskId> = if self.job.alm.proactive_map_regen {
                lost_mofs.iter().map(|&m| self.job.map_task(m)).collect()
            } else {
                // Ablation: only maps that were actually *running* there.
                Vec::new()
            };
            let report = FailureReport::node_crash(node, running_tasks, lost_map_tasks);
            let mut ctx = PolicyCtx::new(&self.job.alm, self.fcm_running());
            for r in &report.failed_reduces {
                let st = &self.reduces[r.index as usize];
                ctx.attempts_on_source_node.insert(*r, st.attempts_on_node.get(&node).copied().unwrap_or(0));
                ctx.running_attempts.insert(*r, st.running.len() as u32);
            }
            let actions = schedule_recovery(&report, &ctx);
            self.execute_actions(actions);
        } else {
            // Baseline YARN: relaunch only the tasks that were *running* on
            // the node. Lost MOFs are rediscovered the painful way, through
            // reducers' fetch-failure reports.
            for (a, _) in dead_attempts {
                if a.task.is_map() {
                    self.maps[a.task.index as usize].completed = false;
                    self.launch_map(a.task, None);
                } else {
                    self.launch_reduce(a.task, None, None, ExecMode::Regular);
                }
            }
        }
    }

    fn handle_fetch_failure(&mut self, _reducer: AttemptId, map_index: u32, source: NodeId) {
        let count = self.fetch_reports.entry(map_index).or_insert(0);
        *count += 1;
        let count = *count;
        if self.alm_enabled() {
            // With proactive regeneration this rarely triggers (reducers
            // wait on regenerating MOFs); if it does (regen disabled or
            // raced), regenerate immediately.
            if !self.registry.is_regenerating(map_index) && !self.cluster.node(source).is_alive() {
                self.registry.mark_regenerating(map_index);
                self.maps[map_index as usize].completed = false;
                self.launch_map(self.job.map_task(map_index), None);
            }
        } else if count == BASELINE_FETCH_REPORTS_TO_REEXECUTE {
            // Baseline: enough reports finally convince the AM the MOF is
            // gone; re-execute the map (normal priority).
            self.fetch_reports.remove(&map_index);
            self.maps[map_index as usize].completed = false;
            self.launch_map(self.job.map_task(map_index), None);
        }
    }

    /// Cancel every running attempt of a task except `keep`.
    fn cancel_others(&mut self, task: TaskId, keep: AttemptId) {
        let state = if task.is_map() {
            &mut self.maps[task.index as usize]
        } else {
            &mut self.reduces[task.index as usize]
        };
        for (a, (_, _, cancel)) in state.running.iter() {
            if *a != keep {
                cancel.store(true, Ordering::Relaxed);
            }
        }
        state.running.clear();
    }

    fn check_time_faults(&mut self) {
        let now = self.now_ms();
        let due: Vec<NodeId> =
            self.pending_crashes_ms.iter().filter(|(_, at)| *at <= now).map(|(n, _)| *n).collect();
        self.pending_crashes_ms.retain(|(_, at)| *at > now);
        for n in due {
            self.cluster.crash_node(n);
        }
        // Activate due slow-node degradations (the node stays alive).
        let due_slow: Vec<(NodeId, f64)> =
            self.pending_slow_ms.iter().filter(|(_, at, _)| *at <= now).map(|(n, _, f)| (*n, *f)).collect();
        self.pending_slow_ms.retain(|(_, at, _)| *at > now);
        for (n, f) in due_slow {
            self.cluster.node(n).set_slow(f);
        }
        // Sever due links, then apply due heals — so a zero-length
        // partition (from_ms == heal_ms) nets out healed. Flap schedules
        // guarantee every heal lands strictly before the same link's next
        // sever, so a heal here can never erase a later window's cut; a
        // heal of an already-healed link is LinkTable's explicit no-op.
        let due_severs: Vec<(NodeId, NodeId, LinkDirection)> = self
            .pending_severs
            .iter()
            .filter(|(_, _, _, at)| *at <= now)
            .map(|(a, b, d, _)| (*a, *b, *d))
            .collect();
        self.pending_severs.retain(|(_, _, _, at)| *at > now);
        for (a, b, d) in due_severs {
            self.cluster.links.sever(a, b, d);
        }
        let due_heals: Vec<(NodeId, NodeId, LinkDirection)> = self
            .pending_heals
            .iter()
            .filter(|(_, _, _, at)| *at <= now)
            .map(|(a, b, d, _)| (*a, *b, *d))
            .collect();
        self.pending_heals.retain(|(_, _, _, at)| *at > now);
        for (a, b, d) in due_heals {
            self.cluster.links.heal(a, b, d);
        }
        // Activate due link degradations, then lift the expired ones (a
        // zero-length degradation nets out healthy).
        let due_deg: Vec<LinkDegradation> =
            self.pending_degrades.iter().filter(|d| d.from_ms <= now).copied().collect();
        self.pending_degrades.retain(|d| d.from_ms > now);
        for d in due_deg {
            self.cluster.links.degrade(d.a, d.b, d.direction, d.factor, d.loss);
        }
        let due_undeg: Vec<(NodeId, NodeId, LinkDirection)> = self
            .pending_undegrades
            .iter()
            .filter(|(_, _, _, at)| *at <= now)
            .map(|(a, b, d, _)| (*a, *b, *d))
            .collect();
        self.pending_undegrades.retain(|(_, _, _, at)| *at > now);
        for (a, b, d) in due_undeg {
            self.cluster.links.clear_degrade(a, b, d);
        }
        // Flip bytes for due corruptions; targets that have not
        // materialised yet stay pending for the next tick.
        let due_cor: Vec<(NodeId, CorruptTarget, u64)> =
            self.pending_corruptions.iter().filter(|(_, _, at)| *at <= now).copied().collect();
        self.pending_corruptions.retain(|(_, _, at)| *at > now);
        for (n, t, at) in due_cor {
            if !self.apply_corruption(n, t) {
                self.pending_corruptions.push((n, t, at));
            }
        }
    }

    /// Flip a byte of `partition` inside `mof`'s stored CRC32 frame on
    /// `host` so the next read classifies as a checksum mismatch. Prefers
    /// a payload byte; an empty partition only has its header, so the
    /// stored CRC is rotted instead.
    fn corrupt_mof_blob(&self, host: NodeId, mof: &alm_shuffle::MofData, partition: u32) {
        let Some((off, framed_len)) = mof.frame_range(partition) else {
            return;
        };
        let fs = &self.cluster.node(host).fs;
        let Ok(blob) = fs.read(&mof.path) else {
            return;
        };
        let mut bytes = blob.to_vec();
        let flip = off as usize + if framed_len as usize > FRAME_HEADER_LEN { FRAME_HEADER_LEN } else { 4 };
        if flip < bytes.len() {
            bytes[flip] ^= 0x55;
            let _ = fs.write(&mof.path, Bytes::from(bytes));
        }
    }

    /// Inject one `Fault::CorruptData`: flip a payload byte inside the
    /// target's CRC32 frame so the next read classifies as a checksum
    /// mismatch. Returns `false` when the target does not exist yet.
    fn apply_corruption(&mut self, node: NodeId, target: CorruptTarget) -> bool {
        match target {
            CorruptTarget::MofPartition { map_index, partition } => {
                let Some((host, mof)) = self.registry.lookup(map_index) else {
                    return false; // map not committed yet; retry
                };
                // `node` names the intended victim, but re-execution may
                // have moved the MOF: rot the bytes where they now live.
                let _ = node;
                self.corrupt_mof_blob(host, &mof, partition);
                true
            }
            CorruptTarget::DfsBlock { reduce_index, block } => {
                if reduce_index >= self.job.num_reduces {
                    return true;
                }
                // Rot one replica of the committed reduce output — prefer
                // the copy hosted on the fault's victim node. False until
                // the reduce commits; the fault stays pending.
                let path = self.job.output_path(reduce_index);
                self.cluster.dfs.corrupt_replica(&path, block as usize, Some(node))
            }
            CorruptTarget::AlgRecord { reduce_index, seq } => {
                if reduce_index >= self.job.num_reduces {
                    return true;
                }
                let paths = LogPaths::for_task(self.job.reduce_task(reduce_index));
                let mut hit = false;
                // Reduce-stage records live on the DFS.
                let dfs_path = paths.dfs_record(seq);
                if let Ok(blob) = self.cluster.dfs.read(&dfs_path) {
                    let mut bytes = blob.to_vec();
                    if bytes.len() > FRAME_HEADER_LEN {
                        bytes[FRAME_HEADER_LEN] ^= 0x55;
                        if let Some(writer) = self.cluster.alive_nodes().first().copied() {
                            hit |= self
                                .cluster
                                .dfs
                                .write(&dfs_path, Bytes::from(bytes), writer, ReplicationLevel::Cluster)
                                .is_ok();
                        }
                    }
                }
                // Shuffle/merge-stage records live on the node-local store
                // of whichever node ran the attempt — rot every copy.
                let local_path = paths.local_record(seq);
                for n in &self.cluster.nodes {
                    if let Ok(blob) = n.fs.read(&local_path) {
                        let mut bytes = blob.to_vec();
                        if bytes.len() > FRAME_HEADER_LEN {
                            bytes[FRAME_HEADER_LEN] ^= 0x55;
                            hit |= n.fs.write(&local_path, Bytes::from(bytes)).is_ok();
                        }
                    }
                }
                hit
            }
        }
    }

    fn check_progress_faults(&mut self, reduce_index: u32, progress: f64) {
        let due: Vec<NodeId> = self
            .pending_crashes_progress
            .iter()
            .filter(|(_, r, p)| *r == reduce_index && progress >= *p)
            .map(|(n, _, _)| *n)
            .collect();
        self.pending_crashes_progress.retain(|(_, r, p)| !(*r == reduce_index && progress >= *p));
        for n in due {
            self.cluster.crash_node(n);
        }
    }

    fn check_node_detection(&mut self) {
        let timeout = Duration::from_millis(self.cluster.config.node_liveness_timeout_ms);
        let newly_dead: Vec<NodeId> = self
            .cluster
            .nodes
            .iter()
            .filter(|n| !n.is_alive() && !self.handled_node_failures.contains(&n.id))
            .filter(|n| n.crashed_for().is_some_and(|d| d >= timeout))
            .map(|n| n.id)
            .collect();
        for n in newly_dead {
            self.handle_node_failure(n);
        }
    }

    /// Run the job to completion; returns the report.
    pub fn run(mut self) -> JobReport {
        // Launch the first wave: all maps, then all reduces (reduces start
        // shuffling as MOFs appear — the paper's map/reduce overlap).
        for m in 0..self.job.num_maps {
            self.launch_map(self.job.map_task(m), None);
        }
        for r in 0..self.job.num_reduces {
            self.launch_reduce(self.job.reduce_task(r), None, None, ExecMode::Regular);
        }

        let started = Instant::now();
        let mut succeeded = false;
        loop {
            if started.elapsed() > JOB_WALL_CAP {
                break;
            }
            self.check_time_faults();
            self.check_node_detection();

            // Job-level failure: a task ran out of attempts with nothing running.
            let exhausted = self.reduces.iter().chain(self.maps.iter()).any(|t| {
                !t.completed && t.running.is_empty() && t.attempts >= self.cluster.config.max_task_attempts
            });
            if exhausted {
                break;
            }

            let ev = match self.events_rx.recv_timeout(Duration::from_millis(1)) {
                Ok(ev) => ev,
                Err(_) => continue,
            };
            match ev {
                TaskEvent::MapCompleted { attempt, node, mof } => {
                    let map_index = attempt.task.index;
                    let st = &mut self.maps[map_index as usize];
                    st.running.remove(&attempt);
                    st.completed = true;
                    // Apply any due corruption of this MOF *before* it
                    // becomes fetchable, so reducers can never race the
                    // injection to a clean read.
                    let now = self.now_ms();
                    let due_rot: Vec<u32> = self
                        .pending_corruptions
                        .iter()
                        .filter_map(|(_, t, at)| match t {
                            CorruptTarget::MofPartition { map_index: mi, partition }
                                if *mi == map_index && *at <= now =>
                            {
                                Some(*partition)
                            }
                            _ => None,
                        })
                        .collect();
                    if !due_rot.is_empty() {
                        self.pending_corruptions.retain(|(_, t, at)| {
                            !matches!(t, CorruptTarget::MofPartition { map_index: mi, .. }
                                if *mi == map_index && *at <= now)
                        });
                        for p in due_rot {
                            self.corrupt_mof_blob(node, &mof, p);
                        }
                    }
                    self.registry.register(map_index, node, mof);
                    self.cancel_others(attempt.task, attempt);
                }
                TaskEvent::ReduceCompleted { attempt, node: _, output_records } => {
                    let idx = attempt.task.index;
                    let st = &mut self.reduces[idx as usize];
                    if !st.completed {
                        st.completed = true;
                        self.report.output_records.insert(idx, output_records);
                    }
                    st.running.remove(&attempt);
                    self.cancel_others(attempt.task, attempt);
                    if self.reduces.iter().all(|t| t.completed) {
                        succeeded = true;
                        break;
                    }
                }
                TaskEvent::TaskFailed { attempt, node, kind } => {
                    self.handle_task_failure(attempt, node, kind);
                }
                TaskEvent::FetchFailure { reducer, map_index, source } => {
                    self.handle_fetch_failure(reducer, map_index, source);
                }
                TaskEvent::FetchCorruption { reducer: _, map_index, source: _ } => {
                    // Detected corruption is unambiguous in every mode (the
                    // source heartbeats; its data failed the checksum):
                    // regenerate the MOF at once while reducers re-fetch —
                    // no fetch-failure budget is charged.
                    self.report.corruption_refetches += 1;
                    if !self.registry.is_regenerating(map_index) {
                        self.registry.mark_regenerating(map_index);
                        self.maps[map_index as usize].completed = false;
                        self.launch_map(self.job.map_task(map_index), None);
                    }
                }
                TaskEvent::FetchDegraded { reducer: _, map_index: _, source: _ } => {
                    // A gray link dropped a transfer: count it and let the
                    // reducer re-fetch on its own backoff. Nothing is
                    // regenerated and no budget is charged — the source
                    // and its data are healthy, only the path is lossy.
                    self.report.degraded_drops += 1;
                }
                TaskEvent::FetchResident { reducer: _, map_index: _, source: _ } => {
                    // A fetch served from the resident in-memory cache:
                    // observational only — counted so the differential
                    // validator can compare resident hits across engines.
                    self.report.resident_fetch_hits += 1;
                }
                TaskEvent::LogRecovered { attempt, report } => {
                    self.report.log_recoveries.push(LogRecoveryEvent {
                        task: attempt.task,
                        attempt_number: attempt.number,
                        report,
                    });
                }
                TaskEvent::ReduceProgress { attempt, phase, progress } => {
                    let overall = crate::reducetask::overall_progress(phase, progress);
                    let now = self.now_ms();
                    self.report.reduce_timeline.entry(attempt.task.index).or_default().push((now, overall));
                    self.check_progress_faults(attempt.task.index, overall);
                }
                TaskEvent::MapProgress { .. } => {}
            }
        }

        // The loop breaks the instant the last reduce commits, so a
        // DfsBlock corruption aimed at committed output may still be
        // pending — flush those now (and only those: firing leftover
        // crash/partition faults after the job ended would change
        // outcomes the job itself already decided).
        let leftover: Vec<(NodeId, CorruptTarget, u64)> = self
            .pending_corruptions
            .iter()
            .filter(|(_, t, _)| matches!(t, CorruptTarget::DfsBlock { .. }))
            .copied()
            .collect();
        self.pending_corruptions.retain(|(_, t, _)| !matches!(t, CorruptTarget::DfsBlock { .. }));
        for (n, t, _) in leftover {
            let _ = self.apply_corruption(n, t);
        }

        // Tear down: cancel all still-running attempts and reap threads.
        for table in [&mut self.maps, &mut self.reduces] {
            for st in table.iter_mut() {
                for (_, (_, _, cancel)) in st.running.iter() {
                    cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        for h in self.threads.drain(..) {
            let _ = h.join();
        }

        self.report.succeeded = succeeded;
        self.report.job_time_ms = self.now_ms();
        self.report
    }
}

/// Convenience: build + run.
pub fn run_job(cluster: Arc<MiniCluster>, job: JobDef, faults: FaultPlan) -> JobReport {
    JobRunner::new(cluster, job, faults).run()
}
