//! ReduceTask execution: shuffle → merge → reduce, with analytics logging,
//! log-resume recovery, and FCM-mode collective recovery.
//!
//! The three stages follow §II-A; the ALG hooks follow §III; the FCM path
//! follows §IV-A. All blocking points are also *safe points*: the attempt
//! dies silently if its node crashed, exits if cancelled, self-fails if its
//! fault-injection point was reached, and fails with `FetchFailureLimit`
//! after exhausting fetch retries against a dead MOF source — the exact
//! behaviour whose consequences the paper analyses.

use crossbeam::channel::Sender;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use alm_core::{
    recover_state_with_report, spawn_participants, AnalyticsLogger, ExecMode, LogPaths, PartialOutput,
    Participant, RecoveredState, RecoveryReport,
};
use alm_dfs::DfsCluster;
use alm_shuffle::mpq::SortedRun;
use alm_shuffle::LocalFs;
use alm_shuffle::{MergeQueue, ReduceBuffers, SegmentReader, SegmentSource};
use alm_types::{AttemptId, FailureKind, ReducePhase, ReplicationLevel, YarnConfig};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::cluster::{LinkTable, NodeHandle};
use crate::events::TaskEvent;
use crate::job::JobDef;
use crate::registry::{try_fetch, FetchOutcome, MofRegistry};

/// Everything a reduce attempt thread needs.
pub struct ReduceCtx {
    pub job: Arc<JobDef>,
    pub attempt: AttemptId,
    pub node: Arc<NodeHandle>,
    pub nodes: Arc<Vec<Arc<NodeHandle>>>,
    pub links: Arc<LinkTable>,
    pub dfs: Arc<DfsCluster>,
    pub registry: Arc<MofRegistry>,
    /// Chain-layer resident MOF cache, when a job chain drives the cluster.
    pub resident: Option<Arc<dyn crate::resident::ResidentCache>>,
    pub events: Sender<TaskEvent>,
    pub config: YarnConfig,
    /// Self-fail at this fraction of overall task progress.
    pub kill_at: Option<f64>,
    pub mode: ExecMode,
    pub cancelled: Arc<AtomicBool>,
    /// Job start, for log timestamps and timelines.
    pub epoch: Instant,
}

impl ReduceCtx {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn partition(&self) -> u32 {
        self.attempt.task.index
    }

    /// Returns true if the attempt should die silently.
    fn dead_or_cancelled(&self) -> bool {
        !self.node.is_alive() || self.cancelled.load(Ordering::Relaxed)
    }

    /// Hot-loop safe point: straggle if the node is degraded (injected
    /// slow-node fault), then report whether the attempt should die.
    fn safe_point(&self) -> bool {
        self.node.throttle();
        self.dead_or_cancelled()
    }

    fn fail(&self, kind: FailureKind) {
        let _ = self.events.send(TaskEvent::TaskFailed { attempt: self.attempt, node: self.node.id, kind });
    }

    fn progress(&self, phase: ReducePhase, progress: f64) {
        let _ = self.events.send(TaskEvent::ReduceProgress { attempt: self.attempt, phase, progress });
    }

    fn should_self_kill(&self, phase: ReducePhase, frac: f64) -> bool {
        self.kill_at.is_some_and(|k| overall_progress(phase, frac) >= k)
    }

    /// The attempt's fetch-backoff jitter stream: derived from the job
    /// seed and the attempt identity (the same `(seed, label)` derivation
    /// the simulator uses), never from the wall clock.
    fn backoff_rng(&self) -> SmallRng {
        alm_des::rng::stream(self.job.seed, &format!("fetch-backoff/{}", self.attempt))
    }
}

/// Fetch-retry sleep for the `round`-th consecutive stalled round:
/// exponential growth from the configured base delay, capped at half the
/// node-liveness timeout, then jittered into `[cap/2, cap]` so competing
/// reducers desynchronise deterministically.
fn backoff_with_jitter(config: &YarnConfig, round: u32, rng: &mut SmallRng) -> u64 {
    let base = config.fetch_retry_delay_ms.max(1);
    let exp = base.saturating_mul(1u64 << round.saturating_sub(1).min(10));
    let cap = exp.min((config.node_liveness_timeout_ms / 2).max(base));
    cap / 2 + rng.random_range(0..=cap.div_ceil(2))
}

/// Overall task progress from a phase-local fraction (Hadoop's thirds:
/// shuffle, merge and reduce each contribute a third).
pub fn overall_progress(phase: ReducePhase, frac: f64) -> f64 {
    match phase {
        ReducePhase::Shuffle => frac / 3.0,
        ReducePhase::Merge => 1.0 / 3.0 + frac / 3.0,
        ReducePhase::Reduce => 2.0 / 3.0 + frac / 3.0,
    }
}

/// How the attempt starts, derived from the recovered log state.
enum StartState {
    Fresh,
    /// Resume mid-shuffle with restored buffers.
    Shuffle(ReduceBuffers),
    /// All data local (merge-stage log): buffers with everything fetched.
    MergeReady(ReduceBuffers),
    /// Reduce-stage log with all MPQ files readable here: direct resume.
    MpqResume(Vec<SegmentReader>),
    /// Reduce-stage log but the files are gone (migrated): replay the data
    /// path and skip the first `records_processed` records.
    SkipReplay(u64),
}

/// Run one reduce attempt on the current thread.
pub fn run_reduce(ctx: ReduceCtx) {
    let cmp = ctx.job.key_cmp();
    let logs_enabled = ctx.job.alm.mode.logs_enabled();
    let paths = LogPaths::for_task(ctx.attempt.task);
    let prefix = format!("reduce/{}/", ctx.attempt);

    // ---- Recovery: what did a previous attempt leave us? ----
    let recovered = if logs_enabled {
        let (state, rec_report) = recover_state_with_report(Some(&ctx.node.fs), &ctx.dfs, &paths);
        if rec_report != RecoveryReport::default() {
            // Surface the forensics (resume point, truncated/corrupt
            // records) so reports can assert bounded recovery.
            let _ = ctx.events.send(TaskEvent::LogRecovered { attempt: ctx.attempt, report: rec_report });
        }
        state
    } else {
        RecoveredState::Fresh
    };

    let mut logger = logs_enabled.then(|| AnalyticsLogger::new(&ctx.job.alm, ctx.attempt));
    if let (Some(lg), Some(seq)) = (logger.as_mut(), recovered.seq()) {
        lg.resume_after(seq);
    }

    // Restored (or fresh) partial output.
    let mut output = if logs_enabled {
        match PartialOutput::restore(&paths, &ctx.dfs) {
            Ok(o) => o,
            Err(_) => PartialOutput::new(&paths),
        }
    } else {
        PartialOutput::new(&paths)
    };

    let mem_budget = ctx.config.shuffle_buffer_bytes().max(1024);

    let start = match recovered {
        RecoveredState::Fresh => StartState::Fresh,
        RecoveredState::ShuffleStage { shuffled_bytes, fetched_mof_ids, intermediate_files, .. } => {
            if intermediate_files.iter().all(|p| ctx.node.fs.exists(p)) {
                StartState::Shuffle(ReduceBuffers::restore(
                    cmp.clone(),
                    prefix.clone(),
                    mem_budget,
                    ctx.config.merge_spill_fraction,
                    fetched_mof_ids.into_iter().collect(),
                    intermediate_files,
                    shuffled_bytes,
                ))
            } else {
                StartState::Fresh // files are on another (dead) node
            }
        }
        RecoveredState::MergeStage { intermediate_files, .. } => {
            if intermediate_files.iter().all(|p| ctx.node.fs.exists(p)) {
                StartState::MergeReady(ReduceBuffers::restore(
                    cmp.clone(),
                    prefix.clone(),
                    mem_budget,
                    ctx.config.merge_spill_fraction,
                    (0..ctx.job.num_maps).collect(),
                    intermediate_files,
                    0,
                ))
            } else {
                StartState::Fresh
            }
        }
        RecoveredState::ReduceStage { records_processed, mpq, .. } => {
            // Try the direct MPQ resume: every logged segment readable here.
            let mut readers = Vec::with_capacity(mpq.len());
            let mut ok = !mpq.is_empty();
            for e in &mpq {
                let data = match &e.source {
                    SegmentSource::LocalFile { path } => ctx.node.fs.read(path).ok(),
                    SegmentSource::Dfs { path } => ctx.dfs.read(path).ok(),
                    SegmentSource::Memory { .. } => None,
                };
                match data.and_then(|d| SegmentReader::resume(e.source.clone(), d, e.offset as usize).ok()) {
                    Some(r) => readers.push(r),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                StartState::MpqResume(readers)
            } else {
                StartState::SkipReplay(records_processed)
            }
        }
    };

    // ---- Execute ----
    match ctx.mode {
        ExecMode::Fcm => run_fcm(&ctx, &cmp, start, &mut logger, &mut output),
        ExecMode::Regular => run_regular(&ctx, &cmp, start, &mut logger, &mut output),
    }
}

fn run_regular(
    ctx: &ReduceCtx,
    cmp: &alm_shuffle::KeyCmp,
    start: StartState,
    logger: &mut Option<AnalyticsLogger>,
    output: &mut PartialOutput,
) {
    let (readers, skip) = match start {
        StartState::MpqResume(readers) => (readers, 0),
        StartState::Fresh => {
            let mut buffers = ReduceBuffers::new(
                cmp.clone(),
                format!("reduce/{}/", ctx.attempt),
                ctx.config.shuffle_buffer_bytes().max(1024),
                ctx.config.merge_spill_fraction,
            );
            match shuffle_phase(ctx, &mut buffers, logger) {
                Ok(()) => {}
                Err(exit) => return exit.dispatch(ctx),
            }
            match merge_phase(ctx, buffers, logger) {
                Ok(readers) => (readers, 0),
                Err(exit) => return exit.dispatch(ctx),
            }
        }
        StartState::Shuffle(mut buffers) => {
            match shuffle_phase(ctx, &mut buffers, logger) {
                Ok(()) => {}
                Err(exit) => return exit.dispatch(ctx),
            }
            match merge_phase(ctx, buffers, logger) {
                Ok(readers) => (readers, 0),
                Err(exit) => return exit.dispatch(ctx),
            }
        }
        StartState::MergeReady(buffers) => match merge_phase(ctx, buffers, logger) {
            Ok(readers) => (readers, 0),
            Err(exit) => return exit.dispatch(ctx),
        },
        StartState::SkipReplay(skip) => {
            let mut buffers = ReduceBuffers::new(
                cmp.clone(),
                format!("reduce/{}/", ctx.attempt),
                ctx.config.shuffle_buffer_bytes().max(1024),
                ctx.config.merge_spill_fraction,
            );
            match shuffle_phase(ctx, &mut buffers, logger) {
                Ok(()) => {}
                Err(exit) => return exit.dispatch(ctx),
            }
            match merge_phase(ctx, buffers, logger) {
                Ok(readers) => (readers, skip),
                Err(exit) => return exit.dispatch(ctx),
            }
        }
    };

    let q = MergeQueue::new(cmp.clone(), readers);
    if let Err(exit) = reduce_phase(ctx, q, skip, false, logger, output) {
        return exit.dispatch(ctx);
    }
    commit(ctx, output);
}

fn run_fcm(
    ctx: &ReduceCtx,
    cmp: &alm_shuffle::KeyCmp,
    start: StartState,
    logger: &mut Option<AnalyticsLogger>,
    output: &mut PartialOutput,
) {
    // FCM replays the whole partition stream; the only usable recovery
    // state is the reduce-stage skip count (plus the restored output).
    let skip = match start {
        StartState::SkipReplay(n) => n,
        StartState::MpqResume(_) | StartState::Fresh | StartState::Shuffle(_) | StartState::MergeReady(_) => {
            0
        }
    };

    // Wait until every MOF is present on a live node (the AM is
    // regenerating lost ones at high priority).
    let wait_cap = Duration::from_millis(ctx.config.shuffle_wait_cap_ms);
    let wait_start = Instant::now();
    let participants = loop {
        if ctx.dead_or_cancelled() {
            return;
        }
        if wait_start.elapsed() > wait_cap {
            return ctx.fail(FailureKind::TaskTimeout);
        }
        match build_participants(ctx) {
            Some(p) => break p,
            None => std::thread::sleep(Duration::from_millis(1)),
        }
    };

    let pipeline = match spawn_participants(cmp, participants, alm_core::sfm::fcm::DEFAULT_CHUNK_BYTES) {
        Ok(p) => p,
        Err(_) => return ctx.fail(FailureKind::TaskTimeout),
    };
    let q = MergeQueue::new(cmp.clone(), pipeline.into_runs_and_detach());
    if let Err(exit) = reduce_phase(ctx, q, skip, true, logger, output) {
        return exit.dispatch(ctx);
    }
    commit(ctx, output);
}

/// Gather, per live node, the local segments of this reducer's partition —
/// FCM's participant set. `None` until every map's MOF is fetchable.
fn build_participants(ctx: &ReduceCtx) -> Option<Vec<Participant>> {
    let mut by_node: HashMap<u32, Vec<SegmentReader>> = HashMap::new();
    let mut seg_id = 0u64;
    for m in 0..ctx.job.num_maps {
        let (node_id, mof) = ctx.registry.lookup(m)?;
        let node = &ctx.nodes[node_id.0 as usize];
        if !node.is_alive() {
            return None;
        }
        if ctx.links.is_severed(ctx.node.id, node_id) {
            // A partitioned participant is alive — wait for the heal
            // rather than treating its segments as lost.
            return None;
        }
        let data = mof.read_partition(&node.fs, ctx.partition()).ok()?;
        if data.is_empty() {
            continue;
        }
        let reader = SegmentReader::new(SegmentSource::Memory { id: seg_id }, data).ok()?;
        seg_id += 1;
        by_node.entry(node_id.0).or_default().push(reader);
    }
    let mut nodes: Vec<u32> = by_node.keys().copied().collect();
    nodes.sort_unstable();
    Some(
        nodes
            .into_iter()
            .map(|n| Participant { node: alm_types::NodeId(n), segments: by_node.remove(&n).unwrap() })
            .collect(),
    )
}

/// Why an attempt stopped without committing.
enum Exit {
    Silent,
    Failed(FailureKind),
}

impl Exit {
    fn dispatch(self, ctx: &ReduceCtx) {
        if let Exit::Failed(kind) = self {
            ctx.fail(kind);
        }
    }
}

/// The shuffle stage: fetch every missing MOF partition.
///
/// Fetch-retry pacing is exponential backoff with deterministic seeded
/// jitter (not the old uniform `fetch_retry_delay_ms` sleep). Only a
/// *dead* source charges the retry budget; a partitioned-but-alive source
/// parks the fetch, and a checksum-mismatching partition is reported for
/// regeneration and transparently re-fetched — neither can ever push the
/// reducer over `FetchFailureLimit` while the source heartbeats.
fn shuffle_phase(
    ctx: &ReduceCtx,
    buffers: &mut ReduceBuffers,
    logger: &mut Option<AnalyticsLogger>,
) -> Result<(), Exit> {
    let mut pending: Vec<u32> = (0..ctx.job.num_maps).filter(|m| !buffers.has_fetched(*m)).collect();
    let mut fail_counts: HashMap<u32, u32> = HashMap::new();
    let total = ctx.job.num_maps.max(1) as f64;
    let mut rng = ctx.backoff_rng();
    // Deterministic per-attempt stream for degraded-link loss draws, on
    // the same `(seed, label)` derivation as the backoff jitter.
    let mut loss_rng = alm_des::rng::stream(ctx.job.seed, &format!("degraded-loss/{}", ctx.attempt));
    // Consecutive no-progress rounds that met a dead or partitioned
    // source — the exponent of the backoff.
    let mut stall_rounds: u32 = 0;
    let mut stalled_since: Option<Instant> = None;

    while !pending.is_empty() {
        if ctx.safe_point() {
            return Err(Exit::Silent);
        }
        let frac = (total - pending.len() as f64) / total;
        if ctx.should_self_kill(ReducePhase::Shuffle, frac) {
            return Err(Exit::Failed(FailureKind::TaskOom));
        }

        let mut progressed = false;
        let mut backing_off = false;
        let mut i = 0;
        while i < pending.len() {
            let m = pending[i];
            match try_fetch(
                &ctx.nodes,
                &ctx.links,
                &ctx.registry,
                ctx.resident.as_deref(),
                ctx.node.id,
                ctx.job.id,
                m,
                ctx.partition(),
            ) {
                FetchOutcome::Data { node, data, resident } => {
                    if resident {
                        let _ = ctx.events.send(TaskEvent::FetchResident {
                            reducer: ctx.attempt,
                            map_index: m,
                            source: node,
                        });
                    }
                    if let Some((factor, loss)) = ctx.links.degradation(ctx.node.id, node) {
                        // Gray link: the transfer may be dropped (seeded
                        // deterministic draw) — park and re-fetch without
                        // charging the retry budget, exactly like a
                        // transient partition — and a surviving transfer
                        // runs `factor`× slower.
                        if loss > 0.0 && loss_rng.random_range(0..1_000_000u64) < (loss * 1e6) as u64 {
                            let _ = ctx.events.send(TaskEvent::FetchDegraded {
                                reducer: ctx.attempt,
                                map_index: m,
                                source: node,
                            });
                            backing_off = true;
                            i += 1;
                            continue;
                        }
                        if factor > 1.0 {
                            let us = ((factor - 1.0) * 500.0).min(5_000.0) as u64;
                            std::thread::sleep(Duration::from_micros(us));
                        }
                    }
                    if buffers.ingest(&ctx.node.fs, m, data).is_err() {
                        return Err(Exit::Silent); // our own store died
                    }
                    fail_counts.remove(&m);
                    pending.swap_remove(i);
                    progressed = true;
                }
                FetchOutcome::NotReady => {
                    i += 1;
                }
                FetchOutcome::Unreachable { .. } => {
                    // Transient partition: the source is alive and
                    // heartbeating, so park with backoff — no fetch-failure
                    // report, no retry-budget burn.
                    backing_off = true;
                    i += 1;
                }
                FetchOutcome::CorruptData { node } => {
                    // Healthy source, rotted bytes: ask the AM to
                    // regenerate and keep polling for the fresh MOF.
                    let _ = ctx.events.send(TaskEvent::FetchCorruption {
                        reducer: ctx.attempt,
                        map_index: m,
                        source: node,
                    });
                    i += 1;
                }
                FetchOutcome::SourceDead { node } => {
                    let _ = ctx.events.send(TaskEvent::FetchFailure {
                        reducer: ctx.attempt,
                        map_index: m,
                        source: node,
                    });
                    let c = fail_counts.entry(m).or_insert(0);
                    *c += 1;
                    if *c > ctx.config.fetch_retries_per_source {
                        // Exhausted retries: the reducer is preempted as
                        // faulty — the amplification trigger (§II-C).
                        return Err(Exit::Failed(FailureKind::FetchFailureLimit));
                    }
                    backing_off = true;
                    i += 1;
                }
            }
        }

        if let Some(lg) = logger.as_mut() {
            if lg.maybe_log_shuffle(ctx.now_ms(), &ctx.node.fs, buffers).is_err() {
                return Err(Exit::Silent);
            }
        }
        ctx.progress(ReducePhase::Shuffle, frac);

        if progressed {
            stall_rounds = 0;
            stalled_since = None;
        } else if !pending.is_empty() {
            // A reducer cannot wait forever (e.g. a partition that never
            // heals): a hard wall bounds the total stall.
            let since = *stalled_since.get_or_insert_with(Instant::now);
            if since.elapsed() > Duration::from_millis(ctx.config.shuffle_wait_cap_ms) {
                return Err(Exit::Failed(FailureKind::TaskTimeout));
            }
            let sleep_ms = if backing_off {
                stall_rounds += 1;
                backoff_with_jitter(&ctx.config, stall_rounds, &mut rng)
            } else {
                1 // mere waiting (maps still running, regen in flight) polls fast
            };
            std::thread::sleep(Duration::from_millis(sleep_ms));
        }
    }
    ctx.progress(ReducePhase::Shuffle, 1.0);
    Ok(())
}

/// The merge stage: factor-merge down to `io.sort.factor` inputs.
fn merge_phase(
    ctx: &ReduceCtx,
    buffers: ReduceBuffers,
    logger: &mut Option<AnalyticsLogger>,
) -> Result<Vec<SegmentReader>, Exit> {
    if ctx.dead_or_cancelled() {
        return Err(Exit::Silent);
    }
    if ctx.should_self_kill(ReducePhase::Merge, 0.0) {
        return Err(Exit::Failed(FailureKind::TaskOom));
    }
    let disk_before: Vec<String> = buffers.on_disk_paths().to_vec();
    if let Some(lg) = logger.as_mut() {
        let _ = lg.maybe_log_merge(ctx.now_ms(), &ctx.node.fs, 0.0, &disk_before);
    }
    let readers = match buffers.finalize(&ctx.node.fs, ctx.config.io_sort_factor) {
        Ok(r) => r,
        Err(_) => return Err(Exit::Silent),
    };
    if ctx.dead_or_cancelled() {
        return Err(Exit::Silent);
    }
    if let Some(lg) = logger.as_mut() {
        let files: Vec<String> = readers
            .iter()
            .filter_map(|r| match r.source() {
                SegmentSource::LocalFile { path } => Some(path.clone()),
                _ => None,
            })
            .collect();
        let _ = lg.maybe_log_merge(ctx.now_ms(), &ctx.node.fs, 1.0, &files);
    }
    ctx.progress(ReducePhase::Merge, 1.0);
    Ok(readers)
}

/// The reduce stage: drain the MPQ in key groups through the user reduce
/// function, skipping already-processed records on resume.
fn reduce_phase<R: SortedRun>(
    ctx: &ReduceCtx,
    mut q: MergeQueue<R>,
    skip: u64,
    streaming: bool,
    logger: &mut Option<AnalyticsLogger>,
    output: &mut PartialOutput,
) -> Result<(), Exit> {
    // Skip records a prior attempt already reduced (their output is in the
    // restored PartialOutput) — the "avoided deserialization and reduce
    // computation" of §IV/Fig. 15.
    let mut processed: u64 = 0;
    while processed < skip {
        match q.pop() {
            Ok(Some(_)) => processed += 1,
            Ok(None) => break,
            Err(_) => return Err(Exit::Silent),
        }
    }

    let initial_remaining = (q.remaining_bytes().max(1)) as f64;
    let mut groups: u64 = 0;
    loop {
        let (gk, gv) = match q.pop() {
            Ok(Some(r)) => r,
            Ok(None) => break,
            Err(_) => return Err(Exit::Silent),
        };
        let mut vals: Vec<Vec<u8>> = vec![gv.to_vec()];
        loop {
            let same = match q.peek() {
                Some((nk, _)) => ctx.job.workload.same_group(&gk, nk),
                None => false,
            };
            if !same {
                break;
            }
            match q.pop() {
                Ok(Some((_, v))) => vals.push(v.to_vec()),
                _ => break,
            }
        }
        processed += vals.len() as u64;
        ctx.job.workload.reduce(&gk, &vals, &mut |rec| {
            output.append(&rec.key, &rec.value);
        });
        groups += 1;

        if groups.is_multiple_of(32) {
            if ctx.safe_point() {
                return Err(Exit::Silent);
            }
            let frac = if streaming {
                0.0 // streaming queues cannot estimate remaining bytes
            } else {
                1.0 - q.remaining_bytes() as f64 / initial_remaining
            };
            if ctx.should_self_kill(ReducePhase::Reduce, frac) {
                return Err(Exit::Failed(FailureKind::TaskOom));
            }
            ctx.progress(ReducePhase::Reduce, frac);
            if let Some(lg) = logger.as_mut() {
                let snapshot = if streaming { Vec::new() } else { q.snapshot() };
                if lg
                    .maybe_log_reduce(ctx.now_ms(), &ctx.dfs, ctx.node.id, &snapshot, processed, output)
                    .is_err()
                {
                    return Err(Exit::Silent);
                }
            }
        }
    }
    // A kill point in the reduce stage must fire even for tiny inputs that
    // never hit the periodic check.
    if ctx.should_self_kill(ReducePhase::Reduce, 1.0) && ctx.kill_at.is_some_and(|k| k < 1.0) {
        return Err(Exit::Failed(FailureKind::TaskOom));
    }
    ctx.progress(ReducePhase::Reduce, 1.0);
    Ok(())
}

/// Commit the final output to the DFS and report success.
fn commit(ctx: &ReduceCtx, output: &mut PartialOutput) {
    if ctx.dead_or_cancelled() {
        return;
    }
    let final_path = ctx.job.output_path(ctx.partition());
    let taken = std::mem::replace(output, PartialOutput::new(&LogPaths::for_task(ctx.attempt.task)));
    match taken.commit(&ctx.dfs, ctx.node.id, ReplicationLevel::Cluster, &final_path) {
        Ok(records) => {
            let _ = ctx.events.send(TaskEvent::ReduceCompleted {
                attempt: ctx.attempt,
                node: ctx.node.id,
                output_records: records,
            });
        }
        Err(_) => {
            // DFS write failed (e.g. no live replicas): report failure.
            ctx.fail(FailureKind::TaskTimeout);
        }
    }
}
