//! Job definitions for the threaded engine.

use alm_shuffle::{Combiner, KeyCmp};
use alm_types::{AlmConfig, JobId, TaskId};
use alm_workloads::Workload;
use std::sync::Arc;

/// One job to execute on the mini-cluster.
#[derive(Clone)]
pub struct JobDef {
    pub id: JobId,
    pub workload: Arc<dyn Workload>,
    pub num_maps: u32,
    pub num_reduces: u32,
    /// Input-generation seed (re-executed maps regenerate identical input).
    pub seed: u64,
    pub alm: AlmConfig,
}

impl JobDef {
    pub fn new(
        id: JobId,
        workload: Arc<dyn Workload>,
        num_maps: u32,
        num_reduces: u32,
        seed: u64,
        alm: AlmConfig,
    ) -> JobDef {
        JobDef { id, workload, num_maps, num_reduces, seed, alm }
    }

    /// The workload's key comparator as a shareable closure.
    pub fn key_cmp(&self) -> KeyCmp {
        let w = self.workload.clone();
        Arc::new(move |a: &[u8], b: &[u8]| w.compare_keys(a, b))
    }

    /// The workload's combiner, if it has one.
    pub fn combiner(&self) -> Option<Combiner> {
        // Probe: a workload without a combiner returns None for any input.
        let w = self.workload.clone();
        w.combine(b"", &[])?;
        Some(Arc::new(move |k: &[u8], vals: &[Vec<u8>]| w.combine(k, vals)))
    }

    pub fn map_task(&self, index: u32) -> TaskId {
        TaskId::map(self.id, index)
    }

    pub fn reduce_task(&self, index: u32) -> TaskId {
        TaskId::reduce(self.id, index)
    }

    /// DFS path of a committed reduce partition output.
    pub fn output_path(&self, reduce_index: u32) -> String {
        format!("/out/{}/part-{reduce_index:05}", self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::RecoveryMode;
    use alm_workloads::{Terasort, Wordcount};
    use std::cmp::Ordering;

    fn def(w: Arc<dyn Workload>) -> JobDef {
        JobDef::new(JobId(1), w, 4, 2, 7, AlmConfig::with_mode(RecoveryMode::Baseline))
    }

    #[test]
    fn cmp_and_combiner_delegate() {
        let d = def(Arc::new(Terasort::small()));
        assert_eq!((d.key_cmp())(b"a", b"b"), Ordering::Less);
        assert!(d.combiner().is_none(), "terasort has no combiner");

        let d = def(Arc::new(Wordcount::small()));
        assert!(d.combiner().is_some(), "wordcount combines");
    }

    #[test]
    fn paths_and_ids() {
        let d = def(Arc::new(Terasort::small()));
        assert_eq!(d.map_task(3).to_string(), "task_0001_m_000003");
        assert_eq!(d.output_path(1), "/out/job_0001/part-00001");
    }
}
