//! Logical nodes and the mini-cluster.

use alm_dfs::{DfsCluster, Topology};
use alm_shuffle::MemFs;
use alm_types::{NodeId, YarnConfig};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cluster's data-plane reachability table: which node pairs currently
/// cannot exchange shuffle traffic (injected `Fault::PartitionLink`).
///
/// A severed link models a transient network partition — both endpoints
/// stay alive and keep heartbeating to the AM (the control plane is
/// unaffected), but fetches and FCM participant reads across the link
/// must *park* until the link heals instead of being treated as a dead
/// source. Links are undirected: `(a, b)` and `(b, a)` are one link.
#[derive(Default)]
pub struct LinkTable {
    severed: Mutex<BTreeSet<(NodeId, NodeId)>>,
}

impl LinkTable {
    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Sever the link between `a` and `b` (idempotent).
    pub fn sever(&self, a: NodeId, b: NodeId) {
        self.severed.lock().insert(LinkTable::key(a, b));
    }

    /// Heal the link between `a` and `b` (idempotent).
    pub fn heal(&self, a: NodeId, b: NodeId) {
        self.severed.lock().remove(&LinkTable::key(a, b));
    }

    /// Can `a` and `b` exchange data-plane traffic right now?
    pub fn is_severed(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.severed.lock().contains(&LinkTable::key(a, b))
    }

    /// Number of currently-severed links.
    pub fn severed_count(&self) -> usize {
        self.severed.lock().len()
    }
}

/// One compute node: a local store, a liveness flag, and crash bookkeeping.
pub struct NodeHandle {
    pub id: NodeId,
    pub fs: MemFs,
    alive: AtomicBool,
    /// When the node was crashed (for the AM's detection delay).
    crashed_at: Mutex<Option<Instant>>,
    /// Compute-slowdown factor as f64 bits (1.0 = healthy). Injected
    /// `Fault::SlowNode` degradations raise it; task threads throttle
    /// against it at their safe points. The node keeps heartbeating.
    slow_factor: AtomicU64,
}

impl NodeHandle {
    fn new(id: NodeId) -> NodeHandle {
        NodeHandle {
            id,
            fs: MemFs::new(),
            alive: AtomicBool::new(true),
            crashed_at: Mutex::new(None),
            slow_factor: AtomicU64::new(1.0f64.to_bits()),
        }
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Degrade (or restore, with 1.0) the node's compute speed.
    pub fn set_slow(&self, factor: f64) {
        self.slow_factor.store(factor.max(1.0).to_bits(), Ordering::Release);
    }

    pub fn slow_factor(&self) -> f64 {
        f64::from_bits(self.slow_factor.load(Ordering::Acquire))
    }

    /// Called by task threads at their record-loop safe points: on a
    /// degraded node, sleep proportionally to the slowdown factor so the
    /// node's tasks become stragglers without ever failing. Healthy nodes
    /// pay only an atomic load.
    pub fn throttle(&self) {
        let f = self.slow_factor();
        if f > 1.0 {
            let us = ((f - 1.0) * 200.0).min(5_000.0) as u64;
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    /// Crash the node: wipe its store (MOFs, spills, local logs all gone)
    /// and stop heartbeating. Running task threads notice via
    /// [`NodeHandle::is_alive`] at their next safe point and die silently.
    pub fn crash(&self) {
        if self.alive.swap(false, Ordering::AcqRel) {
            self.fs.wipe();
            *self.crashed_at.lock() = Some(Instant::now());
        }
    }

    /// How long ago the node crashed, if it did.
    pub fn crashed_for(&self) -> Option<std::time::Duration> {
        self.crashed_at.lock().map(|t| t.elapsed())
    }
}

/// The whole in-process cluster: nodes + DFS + configuration.
pub struct MiniCluster {
    pub nodes: Vec<Arc<NodeHandle>>,
    pub dfs: Arc<DfsCluster>,
    /// Data-plane link state consulted by the shuffle fetch path.
    pub links: Arc<LinkTable>,
    pub config: YarnConfig,
}

impl MiniCluster {
    /// A cluster of `n` nodes over `racks` racks with the given config.
    pub fn new(n: u32, racks: u32, config: YarnConfig) -> MiniCluster {
        let topo = Topology::even(n, racks);
        let dfs = Arc::new(DfsCluster::with_policy(
            topo,
            config.dfs_block_size,
            config.dfs_replication,
            config.dfs_verify_on_read,
            config.dfs_repair_concurrency,
        ));
        let nodes = (0..n).map(|i| Arc::new(NodeHandle::new(NodeId(i)))).collect();
        MiniCluster { nodes, dfs, links: Arc::new(LinkTable::default()), config }
    }

    /// Test-scaled cluster (fast timeouts, small buffers).
    pub fn for_tests(n: u32) -> MiniCluster {
        MiniCluster::new(n, MiniCluster::test_racks(n), YarnConfig::scaled_for_tests())
    }

    /// Rack count [`MiniCluster::for_tests`] uses for an `n`-node cluster.
    /// Single-sourced here so fault tooling that lowers rack faults (e.g.
    /// `alm-chaos`) cannot drift from the topology the cluster actually
    /// builds.
    pub fn test_racks(n: u32) -> u32 {
        2.min(n)
    }

    /// Number of distinct racks in this cluster's topology.
    pub fn racks(&self) -> u32 {
        self.dfs.topology().num_racks() as u32
    }

    pub fn node(&self, id: NodeId) -> &Arc<NodeHandle> {
        &self.nodes[id.0 as usize]
    }

    /// Crash a node everywhere: local store, DFS replicas, liveness.
    pub fn crash_node(&self, id: NodeId) {
        self.node(id).crash();
        self.dfs.set_node_alive(id, false);
    }

    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.is_alive()).map(|n| n.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_shuffle::LocalFs;
    use bytes::Bytes;

    #[test]
    fn crash_wipes_store_and_liveness() {
        let c = MiniCluster::for_tests(3);
        let n = c.node(NodeId(1));
        n.fs.write("mof/x", Bytes::from_static(b"data")).unwrap();
        assert!(n.is_alive());
        assert!(n.crashed_for().is_none());
        c.crash_node(NodeId(1));
        assert!(!n.is_alive());
        assert!(n.fs.read("mof/x").is_err());
        assert!(n.crashed_for().is_some());
        assert!(!c.dfs.is_node_alive(NodeId(1)));
        assert_eq!(c.alive_nodes(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn slow_factor_defaults_healthy_and_clamps() {
        let c = MiniCluster::for_tests(2);
        let n = c.node(NodeId(0));
        assert_eq!(n.slow_factor(), 1.0);
        n.set_slow(3.5);
        assert_eq!(n.slow_factor(), 3.5);
        n.set_slow(0.2); // cannot make a node faster than healthy
        assert_eq!(n.slow_factor(), 1.0);
    }

    #[test]
    fn test_rack_policy_matches_built_topology() {
        for n in 1..=6 {
            let c = MiniCluster::for_tests(n);
            assert_eq!(c.racks(), MiniCluster::test_racks(n), "n = {n}");
        }
    }

    #[test]
    fn link_table_is_undirected_and_idempotent() {
        let c = MiniCluster::for_tests(3);
        assert!(!c.links.is_severed(NodeId(0), NodeId(1)));
        c.links.sever(NodeId(1), NodeId(0));
        c.links.sever(NodeId(0), NodeId(1)); // same link, either order
        assert_eq!(c.links.severed_count(), 1);
        assert!(c.links.is_severed(NodeId(0), NodeId(1)));
        assert!(c.links.is_severed(NodeId(1), NodeId(0)));
        assert!(!c.links.is_severed(NodeId(0), NodeId(2)));
        // A node always reaches itself.
        assert!(!c.links.is_severed(NodeId(0), NodeId(0)));
        c.links.heal(NodeId(0), NodeId(1));
        assert!(!c.links.is_severed(NodeId(0), NodeId(1)));
        assert_eq!(c.links.severed_count(), 0);
    }

    #[test]
    fn double_crash_is_idempotent() {
        let c = MiniCluster::for_tests(2);
        c.crash_node(NodeId(0));
        let t1 = c.node(NodeId(0)).crashed_for().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        c.crash_node(NodeId(0));
        assert!(c.node(NodeId(0)).crashed_for().unwrap() >= t1, "crash time not reset");
    }
}
