//! Logical nodes and the mini-cluster.

use alm_dfs::{DfsCluster, Topology};
use alm_shuffle::MemFs;
use alm_types::{LinkDirection, NodeId, YarnConfig};

use crate::resident::ResidentCache;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cluster's data-plane reachability table: which *directed* node
/// pairs currently cannot exchange shuffle traffic (injected
/// `Fault::PartitionLink`) and which run degraded (`Fault::DegradedLink`).
///
/// A severed link models a transient network partition — both endpoints
/// stay alive and keep heartbeating to the AM (the control plane is
/// unaffected), but fetches and FCM participant reads across the cut
/// direction must *park* until the link heals instead of being treated as
/// a dead source. Entries are directed `(from, to)` pairs derived by the
/// shared [`LinkDirection::directed_keys`] helper (the simulator's severed
/// set stores the identical pairs): an asymmetric partition blocks
/// `is_severed(a, b)` while `is_severed(b, a)` stays reachable.
#[derive(Default)]
pub struct LinkTable {
    severed: Mutex<BTreeSet<(NodeId, NodeId)>>,
    /// Directed `(from, to)` → `(slowdown factor, loss probability)` for
    /// degraded-but-alive links.
    degraded: Mutex<BTreeMap<(NodeId, NodeId), (f64, f64)>>,
}

impl LinkTable {
    /// Sever the link between `a` and `b` across `direction` (idempotent).
    pub fn sever(&self, a: NodeId, b: NodeId, direction: LinkDirection) {
        let mut severed = self.severed.lock();
        for key in direction.directed_keys(a, b) {
            severed.insert(key);
        }
    }

    /// Heal the link between `a` and `b` across `direction`. Healing an
    /// already-healed (or never-severed) link is an explicit no-op — heal
    /// events from overlapping or repeated windows must not be able to
    /// corrupt state. Returns whether any directed entry was actually
    /// removed, so callers can tell a real heal from the no-op.
    pub fn heal(&self, a: NodeId, b: NodeId, direction: LinkDirection) -> bool {
        let mut severed = self.severed.lock();
        let mut removed = false;
        for key in direction.directed_keys(a, b) {
            removed |= severed.remove(&key);
        }
        removed
    }

    /// Is data-plane traffic from `from` to `to` blocked right now?
    pub fn is_severed(&self, from: NodeId, to: NodeId) -> bool {
        from != to && self.severed.lock().contains(&(from, to))
    }

    /// Number of currently-severed directed entries (a symmetric partition
    /// counts two).
    pub fn severed_count(&self) -> usize {
        self.severed.lock().len()
    }

    /// Degrade the link between `a` and `b` across `direction`: transfers
    /// run `factor`× slower and each is dropped with probability `loss`.
    pub fn degrade(&self, a: NodeId, b: NodeId, direction: LinkDirection, factor: f64, loss: f64) {
        let mut degraded = self.degraded.lock();
        for key in direction.directed_keys(a, b) {
            degraded.insert(key, (factor.max(1.0), loss.clamp(0.0, 1.0)));
        }
    }

    /// Restore the link to healthy. No-op if it was never degraded.
    pub fn clear_degrade(&self, a: NodeId, b: NodeId, direction: LinkDirection) {
        let mut degraded = self.degraded.lock();
        for key in direction.directed_keys(a, b) {
            degraded.remove(&key);
        }
    }

    /// The `(factor, loss)` degradation on `from → to` traffic, if any.
    pub fn degradation(&self, from: NodeId, to: NodeId) -> Option<(f64, f64)> {
        if from == to {
            return None;
        }
        self.degraded.lock().get(&(from, to)).copied()
    }
}

/// One compute node: a local store, a liveness flag, and crash bookkeeping.
pub struct NodeHandle {
    pub id: NodeId,
    pub fs: MemFs,
    alive: AtomicBool,
    /// When the node was crashed (for the AM's detection delay).
    crashed_at: Mutex<Option<Instant>>,
    /// Compute-slowdown factor as f64 bits (1.0 = healthy). Injected
    /// `Fault::SlowNode` degradations raise it; task threads throttle
    /// against it at their safe points. The node keeps heartbeating.
    slow_factor: AtomicU64,
}

impl NodeHandle {
    fn new(id: NodeId) -> NodeHandle {
        NodeHandle {
            id,
            fs: MemFs::new(),
            alive: AtomicBool::new(true),
            crashed_at: Mutex::new(None),
            slow_factor: AtomicU64::new(1.0f64.to_bits()),
        }
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Degrade (or restore, with 1.0) the node's compute speed.
    pub fn set_slow(&self, factor: f64) {
        self.slow_factor.store(factor.max(1.0).to_bits(), Ordering::Release);
    }

    pub fn slow_factor(&self) -> f64 {
        f64::from_bits(self.slow_factor.load(Ordering::Acquire))
    }

    /// Called by task threads at their record-loop safe points: on a
    /// degraded node, sleep proportionally to the slowdown factor so the
    /// node's tasks become stragglers without ever failing. Healthy nodes
    /// pay only an atomic load.
    pub fn throttle(&self) {
        let f = self.slow_factor();
        if f > 1.0 {
            let us = ((f - 1.0) * 200.0).min(5_000.0) as u64;
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    /// Crash the node: wipe its store (MOFs, spills, local logs all gone)
    /// and stop heartbeating. Running task threads notice via
    /// [`NodeHandle::is_alive`] at their next safe point and die silently.
    pub fn crash(&self) {
        if self.alive.swap(false, Ordering::AcqRel) {
            self.fs.wipe();
            *self.crashed_at.lock() = Some(Instant::now());
        }
    }

    /// How long ago the node crashed, if it did.
    pub fn crashed_for(&self) -> Option<std::time::Duration> {
        self.crashed_at.lock().map(|t| t.elapsed())
    }
}

/// The whole in-process cluster: nodes + DFS + configuration.
pub struct MiniCluster {
    pub nodes: Vec<Arc<NodeHandle>>,
    pub dfs: Arc<DfsCluster>,
    /// Data-plane link state consulted by the shuffle fetch path.
    pub links: Arc<LinkTable>,
    pub config: YarnConfig,
    /// Chain-layer resident MOF cache, installed by `alm-mem` when a job
    /// chain drives this cluster; [`MiniCluster::crash_node`] wipes a dead
    /// node's entries (RAM does not survive a crash).
    resident: Mutex<Option<Arc<dyn ResidentCache>>>,
}

impl MiniCluster {
    /// A cluster of `n` nodes over `racks` racks with the given config.
    pub fn new(n: u32, racks: u32, config: YarnConfig) -> MiniCluster {
        let topo = Topology::even(n, racks);
        let dfs = Arc::new(DfsCluster::with_policy(
            topo,
            config.dfs_block_size,
            config.dfs_replication,
            config.dfs_verify_on_read,
            config.dfs_repair_concurrency,
        ));
        let nodes = (0..n).map(|i| Arc::new(NodeHandle::new(NodeId(i)))).collect();
        MiniCluster { nodes, dfs, links: Arc::new(LinkTable::default()), config, resident: Mutex::new(None) }
    }

    /// Test-scaled cluster (fast timeouts, small buffers).
    pub fn for_tests(n: u32) -> MiniCluster {
        MiniCluster::new(n, MiniCluster::test_racks(n), YarnConfig::scaled_for_tests())
    }

    /// Rack count [`MiniCluster::for_tests`] uses for an `n`-node cluster.
    /// Single-sourced here so fault tooling that lowers rack faults (e.g.
    /// `alm-chaos`) cannot drift from the topology the cluster actually
    /// builds.
    pub fn test_racks(n: u32) -> u32 {
        2.min(n)
    }

    /// Number of distinct racks in this cluster's topology.
    pub fn racks(&self) -> u32 {
        self.dfs.topology().num_racks() as u32
    }

    pub fn node(&self, id: NodeId) -> &Arc<NodeHandle> {
        &self.nodes[id.0 as usize]
    }

    /// Install (or clear, with `None`) the chain layer's resident MOF
    /// cache; subsequent jobs' fetches consult it before any disk path.
    pub fn set_resident(&self, cache: Option<Arc<dyn ResidentCache>>) {
        *self.resident.lock() = cache;
    }

    /// The installed resident MOF cache, if any.
    pub fn resident(&self) -> Option<Arc<dyn ResidentCache>> {
        self.resident.lock().clone()
    }

    /// Crash a node everywhere: local store, DFS replicas, liveness, and
    /// any resident in-memory MOF copies it held.
    pub fn crash_node(&self, id: NodeId) {
        self.node(id).crash();
        self.dfs.set_node_alive(id, false);
        if let Some(cache) = self.resident() {
            cache.invalidate_node(id);
        }
    }

    pub fn alive_nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.is_alive()).map(|n| n.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_shuffle::LocalFs;
    use bytes::Bytes;

    #[test]
    fn crash_wipes_store_and_liveness() {
        let c = MiniCluster::for_tests(3);
        let n = c.node(NodeId(1));
        n.fs.write("mof/x", Bytes::from_static(b"data")).unwrap();
        assert!(n.is_alive());
        assert!(n.crashed_for().is_none());
        c.crash_node(NodeId(1));
        assert!(!n.is_alive());
        assert!(n.fs.read("mof/x").is_err());
        assert!(n.crashed_for().is_some());
        assert!(!c.dfs.is_node_alive(NodeId(1)));
        assert_eq!(c.alive_nodes(), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    fn slow_factor_defaults_healthy_and_clamps() {
        let c = MiniCluster::for_tests(2);
        let n = c.node(NodeId(0));
        assert_eq!(n.slow_factor(), 1.0);
        n.set_slow(3.5);
        assert_eq!(n.slow_factor(), 3.5);
        n.set_slow(0.2); // cannot make a node faster than healthy
        assert_eq!(n.slow_factor(), 1.0);
    }

    #[test]
    fn test_rack_policy_matches_built_topology() {
        for n in 1..=6 {
            let c = MiniCluster::for_tests(n);
            assert_eq!(c.racks(), MiniCluster::test_racks(n), "n = {n}");
        }
    }

    #[test]
    fn symmetric_sever_blocks_both_directions_and_is_idempotent() {
        let c = MiniCluster::for_tests(3);
        assert!(!c.links.is_severed(NodeId(0), NodeId(1)));
        c.links.sever(NodeId(1), NodeId(0), LinkDirection::Both);
        c.links.sever(NodeId(0), NodeId(1), LinkDirection::Both); // same link, either order
        assert_eq!(c.links.severed_count(), 2, "one directed entry per direction");
        assert!(c.links.is_severed(NodeId(0), NodeId(1)));
        assert!(c.links.is_severed(NodeId(1), NodeId(0)));
        assert!(!c.links.is_severed(NodeId(0), NodeId(2)));
        // A node always reaches itself.
        assert!(!c.links.is_severed(NodeId(0), NodeId(0)));
        assert!(c.links.heal(NodeId(0), NodeId(1), LinkDirection::Both));
        assert!(!c.links.is_severed(NodeId(0), NodeId(1)));
        assert_eq!(c.links.severed_count(), 0);
    }

    #[test]
    fn asymmetric_sever_leaves_the_reverse_direction_healthy() {
        let c = MiniCluster::for_tests(3);
        c.links.sever(NodeId(0), NodeId(2), LinkDirection::AToB);
        assert!(c.links.is_severed(NodeId(0), NodeId(2)), "cut direction blocked");
        assert!(!c.links.is_severed(NodeId(2), NodeId(0)), "reverse path must stay healthy");
        assert_eq!(c.links.severed_count(), 1);
        // Healing only the reverse direction is a no-op on the cut one.
        assert!(!c.links.heal(NodeId(0), NodeId(2), LinkDirection::BToA));
        assert!(c.links.is_severed(NodeId(0), NodeId(2)));
        assert!(c.links.heal(NodeId(0), NodeId(2), LinkDirection::AToB));
        assert_eq!(c.links.severed_count(), 0);
        // BToA on (a, b) is the same directed entry as AToB on (b, a).
        c.links.sever(NodeId(2), NodeId(0), LinkDirection::BToA);
        assert!(c.links.is_severed(NodeId(0), NodeId(2)));
        assert!(!c.links.is_severed(NodeId(2), NodeId(0)));
    }

    #[test]
    fn healing_a_healed_link_is_an_explicit_no_op() {
        let c = MiniCluster::for_tests(2);
        // Never severed: heal reports the no-op and changes nothing.
        assert!(!c.links.heal(NodeId(0), NodeId(1), LinkDirection::Both));
        assert_eq!(c.links.severed_count(), 0);
        c.links.sever(NodeId(0), NodeId(1), LinkDirection::Both);
        assert!(c.links.heal(NodeId(0), NodeId(1), LinkDirection::Both));
        // Already healed: the second heal is a no-op, not an error or a
        // re-sever — repeated heal events from flap windows are harmless.
        assert!(!c.links.heal(NodeId(0), NodeId(1), LinkDirection::Both));
        assert!(!c.links.is_severed(NodeId(0), NodeId(1)));
    }

    #[test]
    fn degraded_links_are_directed_and_clear_cleanly() {
        let c = MiniCluster::for_tests(3);
        assert_eq!(c.links.degradation(NodeId(0), NodeId(1)), None);
        c.links.degrade(NodeId(0), NodeId(1), LinkDirection::AToB, 3.0, 0.25);
        assert_eq!(c.links.degradation(NodeId(0), NodeId(1)), Some((3.0, 0.25)));
        assert_eq!(c.links.degradation(NodeId(1), NodeId(0)), None, "reverse direction healthy");
        assert_eq!(c.links.degradation(NodeId(0), NodeId(0)), None, "self-fetch never degraded");
        // Factor clamps to >= 1, loss to [0, 1].
        c.links.degrade(NodeId(1), NodeId(2), LinkDirection::Both, 0.5, 2.0);
        assert_eq!(c.links.degradation(NodeId(1), NodeId(2)), Some((1.0, 1.0)));
        assert_eq!(c.links.degradation(NodeId(2), NodeId(1)), Some((1.0, 1.0)));
        c.links.clear_degrade(NodeId(0), NodeId(1), LinkDirection::AToB);
        c.links.clear_degrade(NodeId(1), NodeId(2), LinkDirection::Both);
        assert_eq!(c.links.degradation(NodeId(0), NodeId(1)), None);
        assert_eq!(c.links.degradation(NodeId(1), NodeId(2)), None);
        // Clearing a healthy link is a no-op.
        c.links.clear_degrade(NodeId(0), NodeId(2), LinkDirection::Both);
    }

    #[test]
    fn crash_wipes_resident_entries() {
        use crate::resident::testutil::MapResident;
        use crate::resident::ResidentCache;
        use alm_types::JobId;
        let c = MiniCluster::for_tests(3);
        assert!(c.resident().is_none(), "no cache installed by default");
        let cache = Arc::new(MapResident::default());
        c.set_resident(Some(cache.clone()));
        cache.admit(NodeId(1), JobId(0), 0, 0, &Bytes::from_static(b"aa"));
        cache.admit(NodeId(2), JobId(0), 1, 0, &Bytes::from_static(b"bb"));
        c.crash_node(NodeId(1));
        assert!(cache.lookup(JobId(0), 0, 0).is_none(), "dead node's RAM is gone");
        assert!(cache.lookup(JobId(0), 1, 0).is_some(), "survivor entries stay");
        c.set_resident(None);
        assert!(c.resident().is_none());
    }

    #[test]
    fn double_crash_is_idempotent() {
        let c = MiniCluster::for_tests(2);
        c.crash_node(NodeId(0));
        let t1 = c.node(NodeId(0)).crashed_for().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
        c.crash_node(NodeId(0));
        assert!(c.node(NodeId(0)).crashed_for().unwrap() >= t1, "crash time not reset");
    }
}
