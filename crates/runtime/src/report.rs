//! Job execution reports.

use alm_core::RecoveryReport;
use alm_types::{FailureKind, TaskId};
use std::collections::BTreeMap;

/// One observed task failure.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureEvent {
    pub at_ms: u64,
    pub task: TaskId,
    pub attempt_number: u32,
    pub kind: FailureKind,
}

/// One analytics-log recovery with its truncation forensics.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecoveryEvent {
    pub task: TaskId,
    pub attempt_number: u32,
    pub report: RecoveryReport,
}

/// Everything a finished (or abandoned) job run produced.
#[derive(Debug, Clone, Default)]
pub struct JobReport {
    pub succeeded: bool,
    pub job_time_ms: u64,
    /// Every task failure the AM observed, in time order.
    pub failures: Vec<FailureEvent>,
    /// Total map / reduce attempts launched (first attempts included).
    pub map_attempts: u32,
    // alm-lint: allow(counter-parity) — reduce recovery is validated through fcm_attempts and the per-failure list, not raw attempt totals
    pub reduce_attempts: u32,
    /// Attempts launched in FCM mode.
    pub fcm_attempts: u32,
    /// Output records committed per reduce partition.
    pub output_records: BTreeMap<u32, u64>,
    /// Reduce-phase progress samples per reduce index: `(ms, progress)`.
    pub reduce_timeline: BTreeMap<u32, Vec<(u64, f64)>>,
    /// Analytics-log records written during the job (ALG activity).
    // alm-lint: allow(counter-parity) — the sim's ALG unit is snapshots taken (alg_snapshots); records vs snapshots are incommensurable, each engine asserts its own
    pub alg_records: u64,
    /// Checksum-mismatch fetches reported by reducers. Each one triggered
    /// a map regeneration + transparent re-fetch — never a fetch-failure
    /// report, never a `FetchFailureLimit` preemption.
    pub corruption_refetches: u32,
    /// Fetch transfers dropped by degraded (gray) links and transparently
    /// retried — like `corruption_refetches`, never charged to the fetch
    /// retry budget.
    pub degraded_drops: u32,
    /// Fetches served from the chain layer's resident in-memory MOF cache
    /// instead of disk (zero unless `alm-mem` installed a cache).
    pub resident_fetch_hits: u64,
    /// Every analytics-log recovery the AM observed, with forensics.
    pub log_recoveries: Vec<LogRecoveryEvent>,
}

impl JobReport {
    /// Failures beyond the first `injected` ones — the paper's
    /// "additional failures" column in Table II (amplification).
    pub fn additional_failures(&self, injected: usize) -> usize {
        self.failures.len().saturating_sub(injected)
    }

    /// Failures of *reduce* tasks other than those in `injected_tasks` —
    /// spatial amplification victims.
    pub fn infected_reduces(&self, injected_tasks: &[TaskId]) -> usize {
        let mut victims: Vec<TaskId> = self
            .failures
            .iter()
            .filter(|f| f.task.is_reduce() && !injected_tasks.contains(&f.task))
            .map(|f| f.task)
            .collect();
        victims.sort_unstable();
        victims.dedup();
        victims.len()
    }

    /// Count of failures of the *same* reduce task after its first failure
    /// — temporal amplification (repeated failed recoveries).
    pub fn repeated_failures_of(&self, task: TaskId) -> usize {
        self.failures.iter().filter(|f| f.task == task).count().saturating_sub(1)
    }

    pub fn total_output_records(&self) -> u64 {
        self.output_records.values().sum()
    }

    /// True when every observed analytics-log recovery redid at most one
    /// logging interval of work — the bounded-recovery guarantee that must
    /// hold even when log records were corrupted.
    pub fn recoveries_bounded(&self) -> bool {
        self.log_recoveries.iter().all(|e| e.report.bounded_by_one_snapshot())
    }

    /// Count of failures with the given kind (e.g. zero `NodeCrash` under
    /// a healing partition is the transient-no-node-loss invariant).
    pub fn failures_of_kind(&self, kind: FailureKind) -> usize {
        self.failures.iter().filter(|f| f.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::JobId;

    fn fe(ms: u64, task: TaskId) -> FailureEvent {
        FailureEvent { at_ms: ms, task, attempt_number: 0, kind: FailureKind::NodeCrash }
    }

    #[test]
    fn amplification_helpers() {
        let j = JobId(0);
        let r0 = TaskId::reduce(j, 0);
        let r1 = TaskId::reduce(j, 1);
        let r2 = TaskId::reduce(j, 2);
        let report = JobReport {
            failures: vec![fe(10, r0), fe(20, r1), fe(30, r1), fe(40, r2)],
            ..JobReport::default()
        };
        assert_eq!(report.additional_failures(1), 3);
        // r0 was the injected victim; r1 and r2 are infected.
        assert_eq!(report.infected_reduces(&[r0]), 2);
        assert_eq!(report.repeated_failures_of(r1), 1);
        assert_eq!(report.repeated_failures_of(r0), 0);
        assert_eq!(report.repeated_failures_of(TaskId::reduce(j, 9)), 0);
    }

    #[test]
    fn recovery_bounds_and_kind_counts() {
        let mut report = JobReport::default();
        assert!(report.recoveries_bounded());
        report.log_recoveries.push(LogRecoveryEvent {
            task: TaskId::reduce(JobId(0), 0),
            attempt_number: 1,
            report: RecoveryReport {
                resumed_seq: Some(1),
                truncated_at_seq: Some(2),
                discarded_records: 3,
                checksum_mismatches: 1,
            },
        });
        assert!(report.recoveries_bounded(), "truncating right after the resume point is bounded");
        report.log_recoveries.push(LogRecoveryEvent {
            task: TaskId::reduce(JobId(0), 1),
            attempt_number: 1,
            report: RecoveryReport { resumed_seq: Some(0), truncated_at_seq: Some(4), ..Default::default() },
        });
        assert!(!report.recoveries_bounded(), "a 4-record gap exceeds one snapshot interval");
        report.failures.push(fe(5, TaskId::reduce(JobId(0), 2)));
        assert_eq!(report.failures_of_kind(FailureKind::NodeCrash), 1);
        assert_eq!(report.failures_of_kind(FailureKind::FetchFailureLimit), 0);
    }

    #[test]
    fn output_totals() {
        let mut report = JobReport::default();
        report.output_records.insert(0, 10);
        report.output_records.insert(1, 32);
        assert_eq!(report.total_output_records(), 42);
    }
}
