//! An in-process mini-YARN that executes real MapReduce jobs on threads.
//!
//! Logical nodes (each with its own in-memory local store) host MapTask and
//! ReduceTask attempts running as real threads over real bytes: map-side
//! sort/spill, MOF commits, shuffle fetches with retry/failure semantics,
//! factor merges, MPQ reduce — plus the ALM framework's analytics logging
//! and speculative fast migration from `alm-core`.
//!
//! Failure semantics mirror YARN's (§II-A "Fault resiliency"):
//!
//! * a **task failure** (injected OOM) kills the attempt; the AM relaunches;
//! * a **node crash** wipes the node's store (spills, MOFs, local logs) and
//!   silently kills its threads; the AM only notices after the liveness
//!   timeout;
//! * a reducer that exhausts its fetch retries against a registered-but-
//!   unreachable MOF **fails itself** and reports the bad source — the
//!   mechanism that, under baseline recovery, produces the paper's temporal
//!   and spatial failure amplification.
//!
//! The per-experiment clock is real time; configs from
//! `YarnConfig::scaled_for_tests` shrink detection timeouts to milliseconds
//! so whole failure/recovery cycles finish in tens of milliseconds.

#![forbid(unsafe_code)]

pub mod am;
pub mod cluster;
pub mod events;
pub mod faults;
pub mod job;
pub mod maptask;
pub mod reducetask;
pub mod registry;
pub mod report;
pub mod resident;

pub use am::JobRunner;
pub use cluster::{LinkTable, MiniCluster, NodeHandle};
pub use events::TaskEvent;
pub use faults::{Fault, FaultPlan};
pub use job::JobDef;
pub use report::{FailureEvent, JobReport, LogRecoveryEvent};
pub use resident::ResidentCache;
