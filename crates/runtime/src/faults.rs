//! Fault injection plans — the experiment methodology of §V-A.
//!
//! The vocabulary itself lives in `alm_types::failure` so that this engine
//! and the discrete-event simulator inject from one shared plan type; this
//! module re-exports it under the runtime's historical path. The runtime
//! consumes the plan directly: `at_ms` triggers fire against the job's
//! real-time clock, progress triggers are polled by the task threads, and
//! [`Fault::SlowNode`] throttles a node's task threads at their safe
//! points.

pub use alm_types::failure::{Fault, FaultPlan};

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::{JobId, NodeId, TaskId};

    #[test]
    fn runtime_and_types_share_one_plan_type() {
        // A plan built through the runtime path is the types' plan —
        // not a parallel definition.
        let t = TaskId::reduce(JobId(0), 1);
        let plan: alm_types::FaultPlan =
            FaultPlan::kill_task(t, 0.5).and(FaultPlan::crash_node_at_ms(NodeId(2), 100));
        assert_eq!(plan.kill_point(t, 0), Some(0.5));
        assert_eq!(plan.injected_count(), 2);
    }
}
