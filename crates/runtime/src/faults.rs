//! Fault injection plans — the experiment methodology of §V-A:
//! "We inject out-of-memory exceptions to crash a task to emulate the
//! transient task failures and stop the network services on a node for
//! node failures."

use alm_types::{NodeId, TaskId};

/// One planned fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Inject an OOM into a specific attempt of `task` once it reaches
    /// `at_progress` of its own work.
    KillTask { task: TaskId, attempt_number: u32, at_progress: f64 },
    /// Crash a node at an absolute time since job start.
    CrashNodeAtMs { node: NodeId, at_ms: u64 },
    /// Crash a node once reduce `reduce_index` reaches `at_progress` of its
    /// reduce-phase work (how Figs. 9/10 and Table II place node failures
    /// "at X% of the reduce phase").
    CrashNodeAtReduceProgress { node: NodeId, reduce_index: u32, at_progress: f64 },
}

/// The set of faults to inject into one job run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn kill_task(task: TaskId, at_progress: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::KillTask { task, attempt_number: 0, at_progress }] }
    }

    pub fn crash_node_at_ms(node: NodeId, at_ms: u64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CrashNodeAtMs { node, at_ms }] }
    }

    pub fn crash_node_at_reduce_progress(node: NodeId, reduce_index: u32, at_progress: f64) -> FaultPlan {
        FaultPlan { faults: vec![Fault::CrashNodeAtReduceProgress { node, reduce_index, at_progress }] }
    }

    pub fn and(mut self, other: FaultPlan) -> FaultPlan {
        self.faults.extend(other.faults);
        self
    }

    /// The self-kill progress point for a given attempt, if planned.
    pub fn kill_point(&self, task: TaskId, attempt_number: u32) -> Option<f64> {
        self.faults.iter().find_map(|f| match f {
            Fault::KillTask { task: t, attempt_number: a, at_progress }
                if *t == task && *a == attempt_number =>
            {
                Some(*at_progress)
            }
            _ => None,
        })
    }

    /// Number of directly injected faults (for amplification accounting).
    pub fn injected_count(&self) -> usize {
        self.faults.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alm_types::JobId;

    #[test]
    fn kill_point_matches_task_and_attempt() {
        let t = TaskId::reduce(JobId(0), 1);
        let plan = FaultPlan::kill_task(t, 0.5);
        assert_eq!(plan.kill_point(t, 0), Some(0.5));
        assert_eq!(plan.kill_point(t, 1), None, "recovery attempts are not re-killed");
        assert_eq!(plan.kill_point(TaskId::reduce(JobId(0), 2), 0), None);
    }

    #[test]
    fn plans_compose() {
        let t = TaskId::map(JobId(0), 0);
        let plan = FaultPlan::kill_task(t, 0.1).and(FaultPlan::crash_node_at_ms(NodeId(2), 100));
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.injected_count(), 2);
    }
}
