//! MapTask execution.
//!
//! Regenerates its input split deterministically, runs the map function
//! through the map-side sort buffer (spilling under memory pressure) and
//! commits a MOF on its node's local store.

use crossbeam::channel::Sender;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use alm_shuffle::MapOutputBuffer;
use alm_types::{AttemptId, FailureKind, YarnConfig};

use crate::cluster::NodeHandle;
use crate::events::TaskEvent;
use crate::job::JobDef;

/// Everything a map attempt thread needs.
pub struct MapCtx {
    pub job: Arc<JobDef>,
    pub attempt: AttemptId,
    pub node: Arc<NodeHandle>,
    pub events: Sender<TaskEvent>,
    pub config: YarnConfig,
    /// Self-fail (injected OOM) at this fraction of input processed.
    pub kill_at: Option<f64>,
    /// Cooperative cancellation (task already succeeded elsewhere / job done).
    pub cancelled: Arc<AtomicBool>,
}

/// Run one map attempt on the current thread (callers usually spawn).
pub fn run_map(ctx: MapCtx) {
    let records = ctx.job.workload.gen_split(ctx.attempt.task.index, ctx.job.seed);
    let total = records.len().max(1);
    // Map-side sort buffer sized from the (scaled) map heap.
    let spill_threshold = (ctx.config.map_heap_bytes / 4).max(4096);
    let prefix = format!("map/{}/", ctx.attempt);
    let mut buffer = MapOutputBuffer::new(
        ctx.job.key_cmp(),
        ctx.job.combiner(),
        ctx.job.num_reduces,
        spill_threshold,
        prefix,
    );

    for (i, rec) in records.iter().enumerate() {
        // Safe point: die silently with the node; honour cancellation;
        // straggle if the node is degraded.
        if i % 64 == 0 {
            if !ctx.node.is_alive() {
                return;
            }
            if ctx.cancelled.load(Ordering::Relaxed) {
                return;
            }
            ctx.node.throttle();
            let progress = i as f64 / total as f64;
            if let Some(kill) = ctx.kill_at {
                if progress >= kill {
                    let _ = ctx.events.send(TaskEvent::TaskFailed {
                        attempt: ctx.attempt,
                        node: ctx.node.id,
                        kind: FailureKind::TaskOom,
                    });
                    return;
                }
            }
            if i % 1024 == 0 {
                let _ = ctx.events.send(TaskEvent::MapProgress { attempt: ctx.attempt, progress });
            }
        }
        let job = &ctx.job;
        let node_fs = &ctx.node.fs;
        let mut failed = false;
        job.workload.map(rec, &mut |out| {
            if failed {
                return;
            }
            let p = job.workload.partition(&out.key, job.num_reduces);
            if buffer.collect(node_fs, p, out.key, out.value).is_err() {
                failed = true; // node store died mid-spill
            }
        });
        if failed {
            return; // silent death with the node
        }
    }

    if !ctx.node.is_alive() {
        return;
    }
    match buffer.finish(&ctx.node.fs) {
        Ok(mof) => {
            let _ = ctx.events.send(TaskEvent::MapCompleted { attempt: ctx.attempt, node: ctx.node.id, mof });
        }
        Err(_) => {
            // Store died during commit: silent death, AM will detect.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::MiniCluster;
    use alm_types::{AlmConfig, JobId, RecoveryMode, TaskId};
    use alm_workloads::Terasort;
    use crossbeam::channel::unbounded;

    fn ctx(c: &MiniCluster, kill_at: Option<f64>) -> (MapCtx, crossbeam::channel::Receiver<TaskEvent>) {
        let (tx, rx) = unbounded();
        let job = Arc::new(JobDef::new(
            JobId(0),
            Arc::new(Terasort::new(500)),
            2,
            3,
            42,
            AlmConfig::with_mode(RecoveryMode::Baseline),
        ));
        (
            MapCtx {
                job,
                attempt: TaskId::map(JobId(0), 0).attempt(0),
                node: c.node(alm_types::NodeId(0)).clone(),
                events: tx,
                config: c.config.clone(),
                kill_at,
                cancelled: Arc::new(AtomicBool::new(false)),
            },
            rx,
        )
    }

    #[test]
    fn successful_map_commits_mof() {
        let c = MiniCluster::for_tests(2);
        let (ctx, rx) = ctx(&c, None);
        run_map(ctx);
        match rx.try_recv().unwrap() {
            TaskEvent::MapProgress { .. } => {}
            TaskEvent::MapCompleted { mof, .. } => {
                assert_eq!(mof.num_partitions(), 3);
                assert!(mof.total_bytes() > 0);
                return;
            }
            other => panic!("unexpected {other:?}"),
        }
        // Skip progress events until completion.
        loop {
            match rx.try_recv().unwrap() {
                TaskEvent::MapCompleted { mof, .. } => {
                    assert_eq!(mof.num_partitions(), 3);
                    break;
                }
                TaskEvent::MapProgress { .. } => continue,
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn injected_oom_reports_failure() {
        let c = MiniCluster::for_tests(2);
        let (ctx, rx) = ctx(&c, Some(0.5));
        run_map(ctx);
        let mut saw_failure = false;
        while let Ok(ev) = rx.try_recv() {
            match ev {
                TaskEvent::TaskFailed { kind: FailureKind::TaskOom, .. } => saw_failure = true,
                TaskEvent::MapCompleted { .. } => panic!("must not complete after injected OOM"),
                _ => {}
            }
        }
        assert!(saw_failure);
    }

    #[test]
    fn dead_node_dies_silently() {
        let c = MiniCluster::for_tests(2);
        let (ctx, rx) = ctx(&c, None);
        c.crash_node(alm_types::NodeId(0));
        run_map(ctx);
        while let Ok(ev) = rx.try_recv() {
            assert!(matches!(ev, TaskEvent::MapProgress { .. }), "no completion/failure events, got {ev:?}");
        }
    }

    #[test]
    fn cancelled_map_exits_without_commit() {
        let c = MiniCluster::for_tests(2);
        let (mut mctx, rx) = ctx(&c, None);
        mctx.cancelled = Arc::new(AtomicBool::new(true));
        run_map(mctx);
        assert!(rx.try_recv().is_err(), "no events from a cancelled task");
    }
}
