//! Events flowing from task threads to the ApplicationMaster.

use alm_core::RecoveryReport;
use alm_shuffle::MofData;
use alm_types::{AttemptId, FailureKind, NodeId, ReducePhase};

/// One message on the task → AM channel (the heartbeat/umbilical analogue).
#[derive(Debug, Clone)]
pub enum TaskEvent {
    /// A MapTask attempt committed its MOF on `node`.
    MapCompleted { attempt: AttemptId, node: NodeId, mof: MofData },
    /// A ReduceTask attempt committed its final output.
    ReduceCompleted { attempt: AttemptId, node: NodeId, output_records: u64 },
    /// An attempt died with an error it could report (injected OOM, fetch
    /// failure limit). Silent deaths (node crash) produce no event — the AM
    /// discovers them via the liveness timeout.
    TaskFailed { attempt: AttemptId, node: NodeId, kind: FailureKind },
    /// A reducer failed to fetch map `map_index`'s MOF from `source`.
    /// YARN uses these reports to eventually re-execute the map.
    FetchFailure { reducer: AttemptId, map_index: u32, source: NodeId },
    /// A reducer fetched map `map_index`'s partition from a *healthy*
    /// `source` but the bytes failed the CRC32 frame check. The AM
    /// regenerates the MOF and the reducer transparently re-fetches; this
    /// never counts toward the fetch-failure limit.
    FetchCorruption { reducer: AttemptId, map_index: u32, source: NodeId },
    /// A reducer's transfer of map `map_index`'s partition from a healthy
    /// `source` was dropped by a degraded (gray) link. The reducer backs
    /// off and transparently re-fetches; this never counts toward the
    /// fetch-failure limit and never marks the source dead.
    FetchDegraded { reducer: AttemptId, map_index: u32, source: NodeId },
    /// A reducer's fetch of map `map_index` was served from the chain
    /// layer's resident in-memory MOF cache on `source` instead of disk.
    /// Purely observational: the AM counts it so `JobReport` keeps
    /// resident-hit parity with the simulator's `SimReport`.
    FetchResident { reducer: AttemptId, map_index: u32, source: NodeId },
    /// A reduce attempt recovered from analytics logs; the report carries
    /// the truncation forensics (how much, if anything, was discarded).
    LogRecovered { attempt: AttemptId, report: RecoveryReport },
    /// Periodic progress report from a reduce attempt (drives timelines,
    /// progress-triggered fault injection, and straggler visibility).
    ReduceProgress { attempt: AttemptId, phase: ReducePhase, progress: f64 },
    /// Periodic progress report from a map attempt.
    MapProgress { attempt: AttemptId, progress: f64 },
}
