//! The resident-MOF hook the chain layer (`alm-mem`) plugs into the
//! shuffle fetch path.
//!
//! The runtime deliberately only defines the *interface*: a cache of
//! CRC-verified MOF partition bytes pinned in RAM on their home node.
//! [`crate::registry::try_fetch`] consults it before touching any disk
//! path (a hit is served at memory speed and bypasses rotten disk bytes),
//! admits freshly fetched partitions back into it, and
//! [`crate::cluster::MiniCluster::crash_node`] wipes a dead node's entries
//! — RAM does not survive a crash, which is exactly the amplification
//! hazard the chain layer exists to measure.

use alm_types::{JobId, NodeId};
use bytes::Bytes;

/// A per-node, capacity-bounded store of resident MOF partition bytes.
///
/// Implementations must be deterministic: identical admit/lookup/invalidate
/// sequences must produce identical hit patterns, or chain runs stop being
/// replayable.
pub trait ResidentCache: Send + Sync {
    /// The resident bytes for `(job, map_index, partition)` and the node
    /// holding them, if cached. Implementations only return entries whose
    /// frame checksum still verifies.
    fn lookup(&self, job: JobId, map_index: u32, partition: u32) -> Option<(NodeId, Bytes)>;

    /// Offer freshly fetched partition bytes for residency on `node` (the
    /// MOF's home). Implementations may decline or evict (capacity).
    fn admit(&self, node: NodeId, job: JobId, map_index: u32, partition: u32, data: &Bytes);

    /// Drop every entry held on `node` (node crash); returns the number of
    /// entries invalidated.
    fn invalidate_node(&self, node: NodeId) -> u64;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    type EntryKey = (u32, u32, u32);

    /// Unbounded reference implementation for runtime-internal tests (the
    /// real capacity-bounded store lives in `alm-mem`).
    #[derive(Default)]
    pub struct MapResident {
        entries: Mutex<BTreeMap<EntryKey, (NodeId, Bytes)>>,
    }

    impl ResidentCache for MapResident {
        fn lookup(&self, job: JobId, map_index: u32, partition: u32) -> Option<(NodeId, Bytes)> {
            self.entries.lock().get(&(job.0, map_index, partition)).cloned()
        }

        fn admit(&self, node: NodeId, job: JobId, map_index: u32, partition: u32, data: &Bytes) {
            self.entries.lock().insert((job.0, map_index, partition), (node, data.clone()));
        }

        fn invalidate_node(&self, node: NodeId) -> u64 {
            let mut entries = self.entries.lock();
            let before = entries.len();
            entries.retain(|_, (n, _)| *n != node);
            (before - entries.len()) as u64
        }
    }

    impl MapResident {
        pub fn len(&self) -> usize {
            self.entries.lock().len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::MapResident;
    use super::*;

    #[test]
    fn reference_cache_round_trips_and_invalidates_per_node() {
        let cache = MapResident::default();
        let job = JobId(3);
        assert!(cache.lookup(job, 0, 0).is_none());
        cache.admit(NodeId(1), job, 0, 0, &Bytes::from_static(b"aa"));
        cache.admit(NodeId(2), job, 1, 0, &Bytes::from_static(b"bb"));
        let (node, data) = cache.lookup(job, 0, 0).expect("resident");
        assert_eq!((node, data.as_ref()), (NodeId(1), b"aa".as_slice()));
        assert!(cache.lookup(JobId(4), 0, 0).is_none(), "keys are per-job");
        assert_eq!(cache.invalidate_node(NodeId(1)), 1);
        assert!(cache.lookup(job, 0, 0).is_none());
        assert!(cache.lookup(job, 1, 0).is_some(), "other nodes' entries survive");
        assert_eq!(cache.invalidate_node(NodeId(1)), 0, "idempotent");
        assert_eq!(cache.len(), 1);
    }
}
