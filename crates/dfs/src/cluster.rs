//! The DFS itself: files → blocks → per-replica checksummed copies.
//!
//! Every replica stores its *own* CRC32-framed copy of the block payload
//! (the [`alm_shuffle::frame`] format), so corruption is a per-replica
//! event: a verified read detects a rotten replica, fails over to a
//! healthy one, and queues the block for re-replication; only when every
//! live replica fails its checksum does the read surface an error — and a
//! *distinct* one ([`DfsError::AllReplicasCorrupt`]) from the
//! no-live-replica case ([`DfsError::BlockUnavailable`]). A background
//! style [`DfsCluster::repair`] pipeline restores the configured
//! replication level after node death or detected rot, rack-aware via the
//! same placement policy writes use, with per-repair byte accounting for
//! the Fig. 13 replication-cost axis.

use alm_shuffle::frame::{frame, unframe, FRAME_HEADER_LEN};
use alm_types::{NodeId, ReplicationLevel};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::placement::choose_replicas;
use crate::topology::Topology;

/// DFS operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    NotFound(String),
    /// A block of the file has no replica on any live node. For MOF-less
    /// recovery this is the "lost data" condition; for ALG it means the
    /// log's replication level was insufficient for the failure.
    BlockUnavailable {
        path: String,
        block: usize,
    },
    /// Every live replica of the block failed its checksum — the data is
    /// *present* but rotten everywhere. Distinct from
    /// [`DfsError::BlockUnavailable`]: the nodes are healthy, the bytes
    /// are not, so retrying against liveness cannot help.
    AllReplicasCorrupt {
        path: String,
        block: usize,
    },
    /// No live node satisfied the placement request at all.
    NoLiveReplicaTarget,
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs: not found: {p}"),
            DfsError::BlockUnavailable { path, block } => {
                write!(f, "dfs: block {block} of {path} has no live replica")
            }
            DfsError::AllReplicasCorrupt { path, block } => {
                write!(f, "dfs: every live replica of block {block} of {path} failed its checksum")
            }
            DfsError::NoLiveReplicaTarget => write!(f, "dfs: no live node to place replicas on"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Metadata returned by a successful write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsFileMeta {
    pub path: String,
    pub len: u64,
    pub num_blocks: usize,
    /// Replica nodes per block.
    pub replicas: Vec<Vec<NodeId>>,
}

impl DfsFileMeta {
    /// Total bytes written across all replicas — the I/O amplification a
    /// replication level costs (what Fig. 13 measures).
    pub fn replicated_bytes(&self, block_size: u64) -> u64 {
        let mut total = 0;
        let mut remaining = self.len;
        for reps in &self.replicas {
            let this_block = remaining.min(block_size);
            remaining -= this_block;
            total += this_block * reps.len() as u64;
        }
        total
    }
}

/// Repair and verified-read counters, for charging replica management to
/// a scenario's cost ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfsStats {
    /// Rotten replicas skipped over by verified reads.
    pub read_failovers: u64,
    /// Blocks the repair pipeline re-replicated.
    pub repaired_blocks: u64,
    /// Payload bytes copied to new replicas by repair (the Fig. 13 axis).
    pub repair_bytes: u64,
}

/// One replica: its host node and its own framed copy of the payload.
/// Validity is computed from the bytes, never cached — the frame is truth.
#[derive(Debug)]
struct Replica {
    node: NodeId,
    framed: Bytes,
}

impl Replica {
    fn healthy(&self) -> bool {
        unframe(&self.framed).is_ok()
    }
}

#[derive(Debug)]
struct Block {
    /// Payload length (every replica frames the same logical bytes).
    len: u64,
    /// The level the block was written at — repair restores *this* level's
    /// replica count, with the same rack-awareness.
    level: ReplicationLevel,
    replicas: Vec<Replica>,
}

#[derive(Debug)]
struct DfsFile {
    blocks: Vec<u64>,
    len: u64,
}

struct Inner {
    files: BTreeMap<String, DfsFile>,
    blocks: BTreeMap<u64, Block>,
    alive: BTreeSet<NodeId>,
    /// Blocks whose replication needs restoring: fed by verified-read
    /// corruption detection and by node death; drained by `repair`.
    repair_queue: BTreeSet<u64>,
    stats: DfsStats,
}

/// A shared, thread-safe simulated HDFS instance.
pub struct DfsCluster {
    topo: Topology,
    block_size: u64,
    replication: u16,
    verify_on_read: bool,
    repair_concurrency: u32,
    inner: Mutex<Inner>,
    next_block: AtomicU64,
}

impl DfsCluster {
    /// A cluster with the default policy: verified reads on, repair
    /// concurrency 2 (the `YarnConfig` defaults).
    pub fn new(topo: Topology, block_size: u64, replication: u16) -> DfsCluster {
        DfsCluster::with_policy(topo, block_size, replication, true, 2)
    }

    /// A cluster with explicit read-verification and repair-concurrency
    /// policy. `verify_on_read: false` is the unsafe pre-checksum
    /// behaviour (reads trust the first live replica), kept as an
    /// experiment ablation.
    pub fn with_policy(
        topo: Topology,
        block_size: u64,
        replication: u16,
        verify_on_read: bool,
        repair_concurrency: u32,
    ) -> DfsCluster {
        let alive = topo.nodes().collect();
        DfsCluster {
            topo,
            block_size: block_size.max(1),
            replication,
            verify_on_read,
            repair_concurrency: repair_concurrency.max(1),
            inner: Mutex::new(Inner {
                files: BTreeMap::new(),
                blocks: BTreeMap::new(),
                alive,
                repair_queue: BTreeSet::new(),
                stats: DfsStats::default(),
            }),
            next_block: AtomicU64::new(0),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Mark a node dead (crash) or alive (replacement). Death enqueues
    /// every block with a replica on the node for repair; the replicas
    /// themselves stay until repair decides, so a node that returns
    /// before repair runs serves its copies again.
    pub fn set_node_alive(&self, node: NodeId, alive: bool) {
        let mut inner = self.inner.lock();
        if alive {
            inner.alive.insert(node);
        } else {
            inner.alive.remove(&node);
            let hosted: Vec<u64> = inner
                .blocks
                .iter()
                .filter(|(_, b)| b.replicas.iter().any(|r| r.node == node))
                .map(|(id, _)| *id)
                .collect();
            inner.repair_queue.extend(hosted);
        }
    }

    pub fn is_node_alive(&self, node: NodeId) -> bool {
        self.inner.lock().alive.contains(&node)
    }

    /// Write (or overwrite) a file from `writer` at the given replication
    /// level. Data is split into blocks; each block gets its own replica
    /// set per the placement policy, and each replica its own framed copy.
    ///
    /// The overwrite is atomic: every block is staged and placed first,
    /// and the previous version is swapped out only after the whole new
    /// version is placeable. A placement failure leaves the old version
    /// readable and leaks no blocks.
    pub fn write(
        &self,
        path: &str,
        data: Bytes,
        writer: NodeId,
        level: ReplicationLevel,
    ) -> Result<DfsFileMeta, DfsError> {
        let mut inner = self.inner.lock();
        if inner.alive.is_empty() {
            return Err(DfsError::NoLiveReplicaTarget);
        }
        let len = data.len() as u64;
        let nblocks = (len.div_ceil(self.block_size)).max(1) as usize;
        let mut staged: Vec<(u64, Block)> = Vec::with_capacity(nblocks);
        let mut replicas_meta = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            let start = (i as u64 * self.block_size) as usize;
            let end = (((i + 1) as u64 * self.block_size) as usize).min(data.len());
            let chunk = data.slice(start..end);
            let id = self.next_block.fetch_add(1, Ordering::Relaxed);
            let nodes = choose_replicas(&self.topo, writer, level, self.replication, &inner.alive, id);
            if nodes.is_empty() {
                // Nothing committed yet: the old version (if any) is intact.
                return Err(DfsError::NoLiveReplicaTarget);
            }
            let framed = Bytes::from(frame(&chunk));
            let replicas = nodes.iter().map(|&node| Replica { node, framed: framed.clone() }).collect();
            replicas_meta.push(nodes);
            staged.push((id, Block { len: chunk.len() as u64, level, replicas }));
        }
        // Every block placed — now swap: drop the previous version's blocks
        // and commit the staged ones.
        if let Some(old) = inner.files.remove(path) {
            for b in old.blocks {
                inner.blocks.remove(&b);
                inner.repair_queue.remove(&b);
            }
        }
        let mut blocks = Vec::with_capacity(nblocks);
        for (id, block) in staged {
            inner.blocks.insert(id, block);
            blocks.push(id);
        }
        inner.files.insert(path.to_string(), DfsFile { blocks, len });
        Ok(DfsFileMeta { path: path.to_string(), len, num_blocks: nblocks, replicas: replicas_meta })
    }

    /// Read a whole file, verifying each block replica's checksum (unless
    /// verification is off). A rotten replica is skipped — counted as a
    /// read failover and queued for repair — and the next live replica
    /// serves the block. Fails with [`DfsError::AllReplicasCorrupt`] only
    /// when every live replica of a block is rotten, and with
    /// [`DfsError::BlockUnavailable`] when a block has no live replica.
    pub fn read(&self, path: &str) -> Result<Bytes, DfsError> {
        let mut inner = self.inner.lock();
        let file = inner.files.get(path).ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let block_ids = file.blocks.clone();
        let mut out = Vec::with_capacity(file.len as usize);
        for (i, bid) in block_ids.iter().enumerate() {
            let block = inner.blocks.get(bid).expect("file block must exist");
            let mut chosen: Option<Bytes> = None;
            let mut rotten_live = 0u64;
            let mut any_live = false;
            for r in &block.replicas {
                if !inner.alive.contains(&r.node) {
                    continue;
                }
                any_live = true;
                if self.verify_on_read {
                    // Verify every live replica, not just until one passes:
                    // serving from the first clean copy while skipping the
                    // scan would let rot on a later-ordered replica survive
                    // unreported until the healthy copies die. The framed
                    // bytes are already in memory, so the full scan is a
                    // free read-triggered scrub.
                    match unframe(&r.framed) {
                        Ok(payload) => {
                            if chosen.is_none() {
                                chosen = Some(payload);
                            }
                        }
                        Err(_) => rotten_live += 1,
                    }
                } else {
                    // Ablation mode: trust the first live replica blindly.
                    chosen = Some(if r.framed.len() >= FRAME_HEADER_LEN {
                        r.framed.slice(FRAME_HEADER_LEN..)
                    } else {
                        Bytes::new()
                    });
                    break;
                }
            }
            if rotten_live > 0 {
                inner.stats.read_failovers += rotten_live;
                inner.repair_queue.insert(*bid);
            }
            match chosen {
                Some(payload) => out.extend_from_slice(&payload),
                None if any_live => {
                    return Err(DfsError::AllReplicasCorrupt { path: path.to_string(), block: i });
                }
                None => {
                    return Err(DfsError::BlockUnavailable { path: path.to_string(), block: i });
                }
            }
        }
        Ok(Bytes::from(out))
    }

    /// Whether every block of `path` is currently readable.
    pub fn is_available(&self, path: &str) -> bool {
        self.read(path).is_ok()
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    pub fn delete(&self, path: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.files.remove(path) {
            None => false,
            Some(f) => {
                for b in f.blocks {
                    inner.blocks.remove(&b);
                    inner.repair_queue.remove(&b);
                }
                true
            }
        }
    }

    /// Paths starting with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .lock()
            .files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of blocks with no live *healthy* replica — per-replica
    /// truth: a block whose only live copies are rotten is lost for
    /// reading even though the bytes exist.
    pub fn lost_block_count(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .blocks
            .values()
            .filter(|b| !b.replicas.iter().any(|r| inner.alive.contains(&r.node) && r.healthy()))
            .count()
    }

    /// Total payload bytes stored across live, checksum-valid replicas
    /// (capacity accounting). A corrupt replica is repair-pending, not
    /// stored-healthy, so it does not count.
    pub fn stored_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .blocks
            .values()
            .map(|b| {
                let healthy =
                    b.replicas.iter().filter(|r| inner.alive.contains(&r.node) && r.healthy()).count();
                b.len * healthy as u64
            })
            .sum()
    }

    /// Stored replicas (on any node, live or dead) whose framed bytes fail
    /// verification — what the `dfs-verified-read` invariant checks is
    /// driven back to zero by repair.
    pub fn corrupt_replica_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.blocks.values().map(|b| b.replicas.iter().filter(|r| !r.healthy()).count()).sum()
    }

    /// Blocks currently queued for re-replication.
    pub fn repair_queue_len(&self) -> usize {
        self.inner.lock().repair_queue.len()
    }

    /// Verified-read and repair counters.
    pub fn stats(&self) -> DfsStats {
        self.inner.lock().stats
    }

    /// Flip a payload byte in one stored replica of `path`'s block
    /// `block_index` — the fault-injection hook behind
    /// `CorruptTarget::DfsBlock`. Prefers the replica hosted on
    /// `prefer_node` when one lives there, the first replica otherwise.
    /// An out-of-range block index clamps to the last block so a sampled
    /// fault always lands once the file exists. Returns false when the
    /// file does not exist yet (the fault stays pending until commit).
    pub fn corrupt_replica(&self, path: &str, block_index: usize, prefer_node: Option<NodeId>) -> bool {
        let mut inner = self.inner.lock();
        let Some(file) = inner.files.get(path) else { return false };
        let Some(&bid) = file.blocks.get(block_index.min(file.blocks.len().saturating_sub(1))) else {
            return false;
        };
        let Some(block) = inner.blocks.get_mut(&bid) else { return false };
        if block.replicas.is_empty() {
            return false;
        }
        let idx = prefer_node.and_then(|n| block.replicas.iter().position(|r| r.node == n)).unwrap_or(0);
        let mut bytes = block.replicas[idx].framed.to_vec();
        if bytes.len() > FRAME_HEADER_LEN {
            // Rot a payload byte: detected as a checksum mismatch, and the
            // unverified-read ablation really does return rotten bytes.
            bytes[FRAME_HEADER_LEN] ^= 0x40;
        } else if bytes.len() >= FRAME_HEADER_LEN {
            // Empty payload: rot the stored CRC instead.
            bytes[4] ^= 0x40;
        } else {
            return false;
        }
        block.replicas[idx].framed = Bytes::from(bytes);
        true
    }

    /// One repair pass: re-replicate up to `repair_concurrency` queued
    /// blocks. Returns the number of queue entries processed (including
    /// currently-unrepairable ones, which are dropped — a block whose
    /// every replica is dead or rotten has no healthy source to copy
    /// from). Call from a maintenance tick for background-style repair.
    pub fn repair_step(&self) -> usize {
        let mut inner = self.inner.lock();
        let take: Vec<u64> =
            inner.repair_queue.iter().copied().take(self.repair_concurrency as usize).collect();
        for id in &take {
            inner.repair_queue.remove(id);
        }
        let processed = take.len();
        for id in take {
            self.repair_block(&mut inner, id);
        }
        processed
    }

    /// Drain the repair queue, restoring each block's replication level.
    /// Returns the payload bytes copied to new replicas by this call.
    pub fn repair(&self) -> u64 {
        let before = self.stats().repair_bytes;
        while self.repair_step() > 0 {}
        self.stats().repair_bytes - before
    }

    /// Restore one block's replication: drop dead-node and rotten
    /// replicas, then copy from a healthy live replica onto fresh nodes —
    /// rack-aware relative to the source via the placement policy.
    fn repair_block(&self, inner: &mut Inner, id: u64) {
        let Inner { blocks, alive, stats, .. } = inner;
        let Some(block) = blocks.get_mut(&id) else { return };
        if !block.replicas.iter().any(|r| alive.contains(&r.node) && r.healthy()) {
            return; // no healthy live source — unrepairable for now
        }
        block.replicas.retain(|r| alive.contains(&r.node) && r.healthy());
        let want = block.level.replica_count(self.replication) as usize;
        if block.replicas.len() >= want {
            return;
        }
        let src = block.replicas[0].node;
        let src_framed = block.replicas[0].framed.clone();
        let holders: BTreeSet<NodeId> = block.replicas.iter().map(|r| r.node).collect();
        let fresh: BTreeSet<NodeId> = alive.difference(&holders).copied().collect();
        let targets = choose_replicas(&self.topo, src, block.level, self.replication, &fresh, id);
        let mut copied = 0u64;
        for node in targets {
            if block.replicas.len() >= want {
                break;
            }
            block.replicas.push(Replica { node, framed: src_framed.clone() });
            copied += block.len;
        }
        if copied > 0 {
            stats.repaired_blocks += 1;
            stats.repair_bytes += copied;
        }
    }

    /// Live, checksum-valid replica count of every block of `path`, in
    /// block order — what "replication restored" means concretely.
    pub fn healthy_replica_counts(&self, path: &str) -> Option<Vec<usize>> {
        let inner = self.inner.lock();
        let file = inner.files.get(path)?;
        Some(
            file.blocks
                .iter()
                .map(|bid| {
                    let block = inner.blocks.get(bid).expect("file block must exist");
                    block.replicas.iter().filter(|r| inner.alive.contains(&r.node) && r.healthy()).count()
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs(nodes: u32, racks: u32, block: u64) -> DfsCluster {
        DfsCluster::new(Topology::even(nodes, racks), block, 2)
    }

    #[test]
    fn write_read_round_trip_multi_block() {
        let d = dfs(6, 2, 10);
        let data = Bytes::from((0..35u8).collect::<Vec<u8>>());
        let meta = d.write("/out/part-0", data.clone(), NodeId(0), ReplicationLevel::Rack).unwrap();
        assert_eq!(meta.num_blocks, 4);
        assert_eq!(d.read("/out/part-0").unwrap(), data);
        assert!(d.exists("/out/part-0"));
        assert!(!d.exists("/nope"));
    }

    #[test]
    fn empty_file_round_trips() {
        let d = dfs(3, 1, 10);
        d.write("/e", Bytes::new(), NodeId(1), ReplicationLevel::Node).unwrap();
        assert_eq!(d.read("/e").unwrap().len(), 0);
    }

    #[test]
    fn node_level_file_dies_with_writer() {
        let d = dfs(4, 2, 1024);
        d.write("/log", Bytes::from_static(b"progress"), NodeId(1), ReplicationLevel::Node).unwrap();
        assert!(d.is_available("/log"));
        d.set_node_alive(NodeId(1), false);
        assert!(!d.is_available("/log"));
        assert_eq!(d.lost_block_count(), 1);
        assert!(matches!(d.read("/log"), Err(DfsError::BlockUnavailable { .. })));
    }

    #[test]
    fn rack_level_survives_writer_crash() {
        let d = dfs(6, 2, 1024);
        d.write("/log", Bytes::from_static(b"progress"), NodeId(0), ReplicationLevel::Rack).unwrap();
        d.set_node_alive(NodeId(0), false);
        assert!(d.is_available("/log"), "rack replica keeps the log readable");
    }

    #[test]
    fn cluster_level_survives_whole_rack() {
        let d = dfs(6, 2, 1024);
        d.write("/log", Bytes::from_static(b"progress"), NodeId(0), ReplicationLevel::Cluster).unwrap();
        // Kill all of rack 0 (nodes 0, 2, 4).
        for n in [0u32, 2, 4] {
            d.set_node_alive(NodeId(n), false);
        }
        assert!(d.is_available("/log"));
        // Rack-level placement would NOT survive this.
        let d2 = dfs(6, 2, 1024);
        d2.write("/log", Bytes::from_static(b"progress"), NodeId(0), ReplicationLevel::Rack).unwrap();
        for n in [0u32, 2, 4] {
            d2.set_node_alive(NodeId(n), false);
        }
        assert!(!d2.is_available("/log"));
    }

    #[test]
    fn overwrite_replaces_content_and_frees_blocks() {
        let d = dfs(3, 1, 4);
        d.write("/f", Bytes::from_static(b"aaaaaaaa"), NodeId(0), ReplicationLevel::Node).unwrap();
        let before = d.stored_bytes();
        d.write("/f", Bytes::from_static(b"bb"), NodeId(0), ReplicationLevel::Node).unwrap();
        assert_eq!(&d.read("/f").unwrap()[..], b"bb");
        assert!(d.stored_bytes() < before);
    }

    #[test]
    fn delete_frees_space() {
        let d = dfs(3, 1, 4);
        d.write("/f", Bytes::from_static(b"xxxx"), NodeId(0), ReplicationLevel::Node).unwrap();
        assert!(d.delete("/f"));
        assert!(!d.delete("/f"));
        assert_eq!(d.stored_bytes(), 0);
        assert!(matches!(d.read("/f"), Err(DfsError::NotFound(_))));
    }

    #[test]
    fn list_prefix() {
        let d = dfs(3, 1, 1024);
        for p in ["/logs/r1/0", "/logs/r1/1", "/logs/r2/0", "/out/x"] {
            d.write(p, Bytes::new(), NodeId(0), ReplicationLevel::Node).unwrap();
        }
        assert_eq!(d.list("/logs/r1/"), vec!["/logs/r1/0", "/logs/r1/1"]);
        assert_eq!(d.list("/logs/").len(), 3);
    }

    #[test]
    fn replicated_bytes_accounting() {
        let d = dfs(6, 2, 10);
        let meta = d.write("/f", Bytes::from(vec![0u8; 25]), NodeId(0), ReplicationLevel::Rack).unwrap();
        // 3 blocks (10+10+5), 2 replicas each.
        assert_eq!(meta.replicated_bytes(10), 2 * 25);
        assert_eq!(d.stored_bytes(), 50);
    }

    #[test]
    fn all_nodes_dead_rejects_writes() {
        let d = dfs(2, 1, 1024);
        d.set_node_alive(NodeId(0), false);
        d.set_node_alive(NodeId(1), false);
        assert_eq!(
            d.write("/f", Bytes::from_static(b"x"), NodeId(0), ReplicationLevel::Node),
            Err(DfsError::NoLiveReplicaTarget)
        );
    }

    #[test]
    fn verified_read_fails_over_and_repair_restores_replication() {
        let d = dfs(6, 2, 10);
        let data = Bytes::from((0..25u8).collect::<Vec<u8>>());
        d.write("/f", data.clone(), NodeId(0), ReplicationLevel::Rack).unwrap();
        assert!(d.corrupt_replica("/f", 1, Some(NodeId(0))));
        assert_eq!(d.corrupt_replica_count(), 1);

        // The read never surfaces rotten bytes: it fails over past the
        // corrupt replica and queues the block for repair.
        assert_eq!(d.read("/f").unwrap(), data);
        assert_eq!(d.stats().read_failovers, 1);
        assert_eq!(d.repair_queue_len(), 1);
        // Per-replica accounting: the rotten copy is repair-pending, not
        // stored-healthy (3 blocks x 2 replicas x payload, minus block 1's
        // rotten 10-byte copy).
        assert_eq!(d.stored_bytes(), 50 - 10);

        let copied = d.repair();
        assert_eq!(copied, 10, "one 10-byte block re-replicated once");
        assert_eq!(d.corrupt_replica_count(), 0);
        assert_eq!(d.stats().repaired_blocks, 1);
        assert_eq!(d.healthy_replica_counts("/f").unwrap(), vec![2, 2, 2]);
        assert_eq!(d.stored_bytes(), 50);
        assert_eq!(d.read("/f").unwrap(), data);
    }

    #[test]
    fn corrupting_every_replica_is_a_checksum_failure_not_unavailable() {
        let d = dfs(6, 2, 1024);
        let meta = d.write("/f", Bytes::from_static(b"payload"), NodeId(0), ReplicationLevel::Rack).unwrap();
        assert_eq!(d.healthy_replica_counts("/f").unwrap(), vec![2]);
        for &n in &meta.replicas[0] {
            assert!(d.corrupt_replica("/f", 0, Some(n)));
        }
        assert_eq!(d.corrupt_replica_count(), 2, "both replicas rotten");
        assert!(matches!(d.read("/f"), Err(DfsError::AllReplicasCorrupt { block: 0, .. })));
        assert_eq!(d.lost_block_count(), 1, "no healthy live replica left");
    }

    #[test]
    fn repair_restores_replication_after_node_death() {
        let d = dfs(6, 2, 1024);
        let data = Bytes::from_static(b"progress");
        let meta = d.write("/log", data.clone(), NodeId(0), ReplicationLevel::Rack).unwrap();
        let holders = meta.replicas[0].clone();
        d.set_node_alive(holders[1], false);
        assert_eq!(d.repair_queue_len(), 1, "node death queues hosted blocks");

        let copied = d.repair();
        assert_eq!(copied, data.len() as u64);
        assert_eq!(d.healthy_replica_counts("/log").unwrap(), vec![2]);
        // The new replica is real: kill the surviving original holder and
        // the file must still be readable from the repaired copy.
        d.set_node_alive(holders[0], false);
        d.repair();
        assert_eq!(d.read("/log").unwrap(), data);
    }

    #[test]
    fn repair_skips_unrepairable_blocks() {
        let d = dfs(4, 2, 1024);
        d.write("/log", Bytes::from_static(b"x"), NodeId(1), ReplicationLevel::Node).unwrap();
        d.set_node_alive(NodeId(1), false);
        assert_eq!(d.repair(), 0, "no healthy live source to copy from");
        assert_eq!(d.repair_queue_len(), 0, "unrepairable entries are dropped, not spun on");
        assert_eq!(d.lost_block_count(), 1);
        // The dead node's replica was not discarded: the node returning
        // makes the block readable again.
        d.set_node_alive(NodeId(1), true);
        assert!(d.is_available("/log"));
    }

    #[test]
    fn failed_overwrite_keeps_old_version_and_leaks_nothing() {
        let d = dfs(6, 2, 10);
        let data = Bytes::from((0..25u8).collect::<Vec<u8>>());
        d.write("/f", data.clone(), NodeId(1), ReplicationLevel::Rack).unwrap();
        let before = d.stored_bytes();

        // Node-level overwrite from a dead writer: placement fails.
        d.set_node_alive(NodeId(0), false);
        assert_eq!(
            d.write("/f", Bytes::from_static(b"new"), NodeId(0), ReplicationLevel::Node),
            Err(DfsError::NoLiveReplicaTarget)
        );

        // The old version is untouched and nothing leaked.
        assert_eq!(d.read("/f").unwrap(), data);
        assert_eq!(d.stored_bytes(), before, "failed overwrite must not change stored bytes");
    }

    #[test]
    fn unverified_reads_return_rotten_bytes() {
        // The ablation: with verification off, corruption flows straight
        // through to the reader — the bug this module exists to fix.
        let d = DfsCluster::with_policy(Topology::even(6, 2), 1024, 2, false, 2);
        let data = Bytes::from_static(b"precious output bytes");
        d.write("/f", data.clone(), NodeId(0), ReplicationLevel::Rack).unwrap();
        d.corrupt_replica("/f", 0, Some(NodeId(0)));
        let got = d.read("/f").unwrap();
        assert_ne!(got, data, "unverified read serves the rotten replica");
        assert_eq!(d.stats().read_failovers, 0);
    }

    #[test]
    fn repair_is_rack_aware_for_cluster_level_blocks() {
        let d = DfsCluster::new(Topology::even(8, 2), 1024, 2);
        let meta = d.write("/f", Bytes::from_static(b"data"), NodeId(0), ReplicationLevel::Cluster).unwrap();
        let holders = meta.replicas[0].clone();
        assert!(!d.topology().same_rack(holders[0], holders[1]), "cluster level crosses racks");
        // Kill the off-rack holder; repair must pick a fresh off-rack node
        // relative to the surviving source.
        d.set_node_alive(holders[1], false);
        d.repair();
        let counts = d.healthy_replica_counts("/f").unwrap();
        assert_eq!(counts, vec![2]);
        // Read back fine even after the whole source rack dies: the
        // repaired replica must have landed off-rack.
        let src_rack_peers: Vec<NodeId> =
            d.topology().rack_peers(holders[0]).into_iter().chain([holders[0]]).collect();
        for n in src_rack_peers {
            d.set_node_alive(n, false);
        }
        assert!(d.is_available("/f"), "repair preserved cross-rack durability");
    }
}
