//! The DFS itself: files → blocks → replicas, with liveness semantics.

use alm_types::{NodeId, ReplicationLevel};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::placement::choose_replicas;
use crate::topology::Topology;

/// DFS operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    NotFound(String),
    /// A block of the file has no replica on any live node. For MOF-less
    /// recovery this is the "lost data" condition; for ALG it means the
    /// log's replication level was insufficient for the failure.
    BlockUnavailable {
        path: String,
        block: usize,
    },
    /// No live node satisfied the placement request at all.
    NoLiveReplicaTarget,
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "dfs: not found: {p}"),
            DfsError::BlockUnavailable { path, block } => {
                write!(f, "dfs: block {block} of {path} has no live replica")
            }
            DfsError::NoLiveReplicaTarget => write!(f, "dfs: no live node to place replicas on"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Metadata returned by a successful write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsFileMeta {
    pub path: String,
    pub len: u64,
    pub num_blocks: usize,
    /// Replica nodes per block.
    pub replicas: Vec<Vec<NodeId>>,
}

impl DfsFileMeta {
    /// Total bytes written across all replicas — the I/O amplification a
    /// replication level costs (what Fig. 13 measures).
    pub fn replicated_bytes(&self, block_size: u64) -> u64 {
        let mut total = 0;
        let mut remaining = self.len;
        for reps in &self.replicas {
            let this_block = remaining.min(block_size);
            remaining -= this_block;
            total += this_block * reps.len() as u64;
        }
        total
    }
}

#[derive(Debug)]
struct Block {
    data: Bytes,
    replicas: Vec<NodeId>,
}

#[derive(Debug)]
struct DfsFile {
    blocks: Vec<u64>,
    len: u64,
}

struct Inner {
    files: BTreeMap<String, DfsFile>,
    blocks: BTreeMap<u64, Block>,
    alive: BTreeSet<NodeId>,
}

/// A shared, thread-safe simulated HDFS instance.
pub struct DfsCluster {
    topo: Topology,
    block_size: u64,
    replication: u16,
    inner: Mutex<Inner>,
    next_block: AtomicU64,
}

impl DfsCluster {
    pub fn new(topo: Topology, block_size: u64, replication: u16) -> DfsCluster {
        let alive = topo.nodes().collect();
        DfsCluster {
            topo,
            block_size: block_size.max(1),
            replication,
            inner: Mutex::new(Inner { files: BTreeMap::new(), blocks: BTreeMap::new(), alive }),
            next_block: AtomicU64::new(0),
        }
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Mark a node dead (crash) or alive (replacement).
    pub fn set_node_alive(&self, node: NodeId, alive: bool) {
        let mut inner = self.inner.lock();
        if alive {
            inner.alive.insert(node);
        } else {
            inner.alive.remove(&node);
        }
    }

    pub fn is_node_alive(&self, node: NodeId) -> bool {
        self.inner.lock().alive.contains(&node)
    }

    /// Write (or overwrite) a file from `writer` at the given replication
    /// level. Data is split into blocks; each block gets its own replica
    /// set per the placement policy.
    pub fn write(
        &self,
        path: &str,
        data: Bytes,
        writer: NodeId,
        level: ReplicationLevel,
    ) -> Result<DfsFileMeta, DfsError> {
        let mut inner = self.inner.lock();
        if inner.alive.is_empty() {
            return Err(DfsError::NoLiveReplicaTarget);
        }
        // Drop any previous version's blocks.
        if let Some(old) = inner.files.remove(path) {
            for b in old.blocks {
                inner.blocks.remove(&b);
            }
        }
        let len = data.len() as u64;
        let nblocks = (len.div_ceil(self.block_size)).max(1) as usize;
        let mut blocks = Vec::with_capacity(nblocks);
        let mut replicas_meta = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            let start = (i as u64 * self.block_size) as usize;
            let end = (((i + 1) as u64 * self.block_size) as usize).min(data.len());
            let chunk = data.slice(start..end);
            let id = self.next_block.fetch_add(1, Ordering::Relaxed);
            let replicas = choose_replicas(&self.topo, writer, level, self.replication, &inner.alive, id);
            if replicas.is_empty() {
                return Err(DfsError::NoLiveReplicaTarget);
            }
            replicas_meta.push(replicas.clone());
            inner.blocks.insert(id, Block { data: chunk, replicas });
            blocks.push(id);
        }
        inner.files.insert(path.to_string(), DfsFile { blocks, len });
        Ok(DfsFileMeta { path: path.to_string(), len, num_blocks: nblocks, replicas: replicas_meta })
    }

    /// Read a whole file; fails if any block lost all live replicas.
    pub fn read(&self, path: &str) -> Result<Bytes, DfsError> {
        let inner = self.inner.lock();
        let file = inner.files.get(path).ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let mut out = Vec::with_capacity(file.len as usize);
        for (i, bid) in file.blocks.iter().enumerate() {
            let block = inner.blocks.get(bid).expect("file block must exist");
            if !block.replicas.iter().any(|n| inner.alive.contains(n)) {
                return Err(DfsError::BlockUnavailable { path: path.to_string(), block: i });
            }
            out.extend_from_slice(&block.data);
        }
        Ok(Bytes::from(out))
    }

    /// Whether every block of `path` is currently readable.
    pub fn is_available(&self, path: &str) -> bool {
        self.read(path).is_ok()
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.lock().files.contains_key(path)
    }

    pub fn delete(&self, path: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.files.remove(path) {
            None => false,
            Some(f) => {
                for b in f.blocks {
                    inner.blocks.remove(&b);
                }
                true
            }
        }
    }

    /// Paths starting with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner
            .lock()
            .files
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Number of blocks that currently have no live replica.
    pub fn lost_block_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.blocks.values().filter(|b| !b.replicas.iter().any(|n| inner.alive.contains(n))).count()
    }

    /// Total bytes stored across all replicas (capacity accounting).
    pub fn stored_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner.blocks.values().map(|b| b.data.len() as u64 * b.replicas.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs(nodes: u32, racks: u32, block: u64) -> DfsCluster {
        DfsCluster::new(Topology::even(nodes, racks), block, 2)
    }

    #[test]
    fn write_read_round_trip_multi_block() {
        let d = dfs(6, 2, 10);
        let data = Bytes::from((0..35u8).collect::<Vec<u8>>());
        let meta = d.write("/out/part-0", data.clone(), NodeId(0), ReplicationLevel::Rack).unwrap();
        assert_eq!(meta.num_blocks, 4);
        assert_eq!(d.read("/out/part-0").unwrap(), data);
        assert!(d.exists("/out/part-0"));
        assert!(!d.exists("/nope"));
    }

    #[test]
    fn empty_file_round_trips() {
        let d = dfs(3, 1, 10);
        d.write("/e", Bytes::new(), NodeId(1), ReplicationLevel::Node).unwrap();
        assert_eq!(d.read("/e").unwrap().len(), 0);
    }

    #[test]
    fn node_level_file_dies_with_writer() {
        let d = dfs(4, 2, 1024);
        d.write("/log", Bytes::from_static(b"progress"), NodeId(1), ReplicationLevel::Node).unwrap();
        assert!(d.is_available("/log"));
        d.set_node_alive(NodeId(1), false);
        assert!(!d.is_available("/log"));
        assert_eq!(d.lost_block_count(), 1);
        assert!(matches!(d.read("/log"), Err(DfsError::BlockUnavailable { .. })));
    }

    #[test]
    fn rack_level_survives_writer_crash() {
        let d = dfs(6, 2, 1024);
        d.write("/log", Bytes::from_static(b"progress"), NodeId(0), ReplicationLevel::Rack).unwrap();
        d.set_node_alive(NodeId(0), false);
        assert!(d.is_available("/log"), "rack replica keeps the log readable");
    }

    #[test]
    fn cluster_level_survives_whole_rack() {
        let d = dfs(6, 2, 1024);
        d.write("/log", Bytes::from_static(b"progress"), NodeId(0), ReplicationLevel::Cluster).unwrap();
        // Kill all of rack 0 (nodes 0, 2, 4).
        for n in [0u32, 2, 4] {
            d.set_node_alive(NodeId(n), false);
        }
        assert!(d.is_available("/log"));
        // Rack-level placement would NOT survive this.
        let d2 = dfs(6, 2, 1024);
        d2.write("/log", Bytes::from_static(b"progress"), NodeId(0), ReplicationLevel::Rack).unwrap();
        for n in [0u32, 2, 4] {
            d2.set_node_alive(NodeId(n), false);
        }
        assert!(!d2.is_available("/log"));
    }

    #[test]
    fn overwrite_replaces_content_and_frees_blocks() {
        let d = dfs(3, 1, 4);
        d.write("/f", Bytes::from_static(b"aaaaaaaa"), NodeId(0), ReplicationLevel::Node).unwrap();
        let before = d.stored_bytes();
        d.write("/f", Bytes::from_static(b"bb"), NodeId(0), ReplicationLevel::Node).unwrap();
        assert_eq!(&d.read("/f").unwrap()[..], b"bb");
        assert!(d.stored_bytes() < before);
    }

    #[test]
    fn delete_frees_space() {
        let d = dfs(3, 1, 4);
        d.write("/f", Bytes::from_static(b"xxxx"), NodeId(0), ReplicationLevel::Node).unwrap();
        assert!(d.delete("/f"));
        assert!(!d.delete("/f"));
        assert_eq!(d.stored_bytes(), 0);
        assert!(matches!(d.read("/f"), Err(DfsError::NotFound(_))));
    }

    #[test]
    fn list_prefix() {
        let d = dfs(3, 1, 1024);
        for p in ["/logs/r1/0", "/logs/r1/1", "/logs/r2/0", "/out/x"] {
            d.write(p, Bytes::new(), NodeId(0), ReplicationLevel::Node).unwrap();
        }
        assert_eq!(d.list("/logs/r1/"), vec!["/logs/r1/0", "/logs/r1/1"]);
        assert_eq!(d.list("/logs/").len(), 3);
    }

    #[test]
    fn replicated_bytes_accounting() {
        let d = dfs(6, 2, 10);
        let meta = d.write("/f", Bytes::from(vec![0u8; 25]), NodeId(0), ReplicationLevel::Rack).unwrap();
        // 3 blocks (10+10+5), 2 replicas each.
        assert_eq!(meta.replicated_bytes(10), 2 * 25);
        assert_eq!(d.stored_bytes(), 50);
    }

    #[test]
    fn all_nodes_dead_rejects_writes() {
        let d = dfs(2, 1, 1024);
        d.set_node_alive(NodeId(0), false);
        d.set_node_alive(NodeId(1), false);
        assert_eq!(
            d.write("/f", Bytes::from_static(b"x"), NodeId(0), ReplicationLevel::Node),
            Err(DfsError::NoLiveReplicaTarget)
        );
    }
}
