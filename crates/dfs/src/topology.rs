//! Cluster rack topology.

use alm_types::{NodeId, RackId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Node ⟷ rack mapping.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    node_rack: BTreeMap<NodeId, RackId>,
}

impl Topology {
    /// `nodes` spread round-robin over `racks` racks (the common
    /// even-racks layout; the paper's testbed is one or two racks of
    /// identical machines).
    pub fn even(nodes: u32, racks: u32) -> Topology {
        let racks = racks.max(1);
        let node_rack = (0..nodes).map(|n| (NodeId(n), RackId(n % racks))).collect();
        Topology { node_rack }
    }

    /// Explicit placement.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (NodeId, RackId)>) -> Topology {
        Topology { node_rack: pairs.into_iter().collect() }
    }

    pub fn rack_of(&self, node: NodeId) -> Option<RackId> {
        self.node_rack.get(&node).copied()
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_rack.keys().copied()
    }

    pub fn num_nodes(&self) -> usize {
        self.node_rack.len()
    }

    pub fn num_racks(&self) -> usize {
        let mut racks: Vec<RackId> = self.node_rack.values().copied().collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }

    /// Nodes in the same rack as `node`, excluding `node` itself.
    pub fn rack_peers(&self, node: NodeId) -> Vec<NodeId> {
        match self.rack_of(node) {
            None => Vec::new(),
            Some(rack) => {
                self.node_rack.iter().filter(|(n, r)| **r == rack && **n != node).map(|(n, _)| *n).collect()
            }
        }
    }

    /// Nodes in a different rack than `node`.
    pub fn off_rack_nodes(&self, node: NodeId) -> Vec<NodeId> {
        match self.rack_of(node) {
            None => self.nodes().collect(),
            Some(rack) => self.node_rack.iter().filter(|(_, r)| **r != rack).map(|(n, _)| *n).collect(),
        }
    }

    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        match (self.rack_of(a), self.rack_of(b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_layout() {
        let t = Topology::even(6, 2);
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_racks(), 2);
        assert_eq!(t.rack_of(NodeId(0)), Some(RackId(0)));
        assert_eq!(t.rack_of(NodeId(1)), Some(RackId(1)));
        assert!(t.same_rack(NodeId(0), NodeId(2)));
        assert!(!t.same_rack(NodeId(0), NodeId(1)));
        assert_eq!(t.rack_of(NodeId(99)), None);
    }

    #[test]
    fn peers_exclude_self_and_off_rack_disjoint() {
        let t = Topology::even(7, 2);
        let peers = t.rack_peers(NodeId(0));
        assert!(!peers.contains(&NodeId(0)));
        let off = t.off_rack_nodes(NodeId(0));
        for p in &peers {
            assert!(!off.contains(p));
        }
        assert_eq!(peers.len() + off.len() + 1, 7);
    }

    #[test]
    fn single_rack_has_no_off_rack() {
        let t = Topology::even(4, 1);
        assert!(t.off_rack_nodes(NodeId(0)).is_empty());
        assert_eq!(t.rack_peers(NodeId(0)).len(), 3);
    }
}
