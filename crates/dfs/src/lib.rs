//! A simulated HDFS.
//!
//! The paper's framework leans on HDFS in three places: job input splits,
//! committed reduce output, and — new in ALG — reduce-stage analytics logs,
//! whose durability/overhead trade-off is governed by the *replication
//! level* (node / rack / cluster, §III-B and Fig. 13). This crate provides
//! a block-based DFS with:
//!
//! * a rack [`topology::Topology`],
//! * a rack-aware [`placement`] policy implementing the three levels,
//! * a [`cluster::DfsCluster`] storing real bytes per block — each replica
//!   holding its *own* CRC32-framed copy — with node-liveness-dependent
//!   readability: crash a node and every block whose only replicas lived
//!   there becomes unreadable — the condition a recovering ReduceTask
//!   (and ALG's HDFS log lookup) runs into,
//! * a verified read path that detects a rotten replica, fails over to a
//!   healthy one, and queues re-replication, plus a [`DfsCluster::repair`]
//!   pipeline restoring the configured replication level after node death
//!   or corruption, with per-repair byte accounting ([`DfsStats`]).

#![forbid(unsafe_code)]

pub mod cluster;
pub mod placement;
pub mod topology;

pub use cluster::{DfsCluster, DfsError, DfsFileMeta, DfsStats};
pub use placement::choose_replicas;
pub use topology::Topology;
