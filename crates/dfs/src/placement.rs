//! Replica placement.
//!
//! ALG "constrains the replication level within a single rack rather than
//! replicating across an HDFS cluster" (§III-B). The three levels:
//!
//! * **Node** — one replica, on the writer.
//! * **Rack** — writer-local replica plus replicas on rack peers (ALG's
//!   default for reduce-stage logs: "local and rack replicas").
//! * **Cluster** — writer-local replica plus off-rack replicas (standard
//!   HDFS: durability against a whole-rack failure, at cross-rack network
//!   cost — the overhead Fig. 13 quantifies).

use alm_types::{NodeId, ReplicationLevel};
use std::collections::BTreeSet;

use crate::topology::Topology;

/// Choose replica nodes for one block.
///
/// `salt` decorrelates the non-local replica choice across blocks so load
/// spreads (deterministically). Only `alive` nodes are eligible. The writer
/// is always first if alive; if the topology cannot satisfy the level's
/// placement constraint (e.g. Cluster level on a single rack), placement
/// degrades gracefully to the nearest satisfiable option, as HDFS does.
pub fn choose_replicas(
    topo: &Topology,
    writer: NodeId,
    level: ReplicationLevel,
    replication: u16,
    alive: &BTreeSet<NodeId>,
    salt: u64,
) -> Vec<NodeId> {
    let want = level.replica_count(replication) as usize;
    let mut chosen: Vec<NodeId> = Vec::with_capacity(want);
    if alive.contains(&writer) {
        chosen.push(writer);
    }

    let pick_from = |pool: Vec<NodeId>, chosen: &mut Vec<NodeId>, want: usize, salt: u64| {
        let mut pool: Vec<NodeId> =
            pool.into_iter().filter(|n| alive.contains(n) && !chosen.contains(n)).collect();
        pool.sort_unstable();
        if pool.is_empty() {
            return;
        }
        // Deterministic rotation by salt so consecutive blocks spread.
        let start = (salt as usize) % pool.len();
        pool.rotate_left(start);
        for n in pool {
            if chosen.len() >= want {
                break;
            }
            chosen.push(n);
        }
    };

    match level {
        ReplicationLevel::Node => {}
        ReplicationLevel::Rack => {
            pick_from(topo.rack_peers(writer), &mut chosen, want, salt);
            // Rack too small: degrade to any node rather than under-replicate.
            if chosen.len() < want {
                pick_from(topo.off_rack_nodes(writer), &mut chosen, want, salt);
            }
        }
        ReplicationLevel::Cluster => {
            pick_from(topo.off_rack_nodes(writer), &mut chosen, want, salt);
            // Single-rack cluster: degrade to rack peers.
            if chosen.len() < want {
                pick_from(topo.rack_peers(writer), &mut chosen, want, salt);
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_alive(n: u32) -> BTreeSet<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn node_level_is_writer_only() {
        let topo = Topology::even(6, 2);
        let r = choose_replicas(&topo, NodeId(2), ReplicationLevel::Node, 3, &all_alive(6), 0);
        assert_eq!(r, vec![NodeId(2)]);
    }

    #[test]
    fn rack_level_stays_in_rack() {
        let topo = Topology::even(6, 2); // rack0: 0,2,4; rack1: 1,3,5
        let r = choose_replicas(&topo, NodeId(0), ReplicationLevel::Rack, 2, &all_alive(6), 0);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], NodeId(0));
        assert!(topo.same_rack(r[0], r[1]));
    }

    #[test]
    fn cluster_level_crosses_racks() {
        let topo = Topology::even(6, 2);
        let r = choose_replicas(&topo, NodeId(0), ReplicationLevel::Cluster, 2, &all_alive(6), 0);
        assert_eq!(r.len(), 2);
        assert!(!topo.same_rack(r[0], r[1]));
    }

    #[test]
    fn dead_writer_excluded() {
        let topo = Topology::even(4, 2);
        let mut alive = all_alive(4);
        alive.remove(&NodeId(0));
        let r = choose_replicas(&topo, NodeId(0), ReplicationLevel::Rack, 2, &alive, 0);
        assert!(!r.contains(&NodeId(0)));
        assert!(!r.is_empty());
    }

    #[test]
    fn degrades_when_rack_too_small() {
        // Rack 1 holds only node 1; rack-level rep=2 from node 1 must
        // degrade off-rack rather than under-replicate.
        let topo = Topology::from_pairs([
            (NodeId(0), alm_types::RackId(0)),
            (NodeId(1), alm_types::RackId(1)),
            (NodeId(2), alm_types::RackId(0)),
        ]);
        let alive: BTreeSet<NodeId> = [NodeId(0), NodeId(1), NodeId(2)].into();
        let r = choose_replicas(&topo, NodeId(1), ReplicationLevel::Rack, 2, &alive, 0);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], NodeId(1));
    }

    #[test]
    fn salt_spreads_choices() {
        let topo = Topology::even(8, 2);
        let a = choose_replicas(&topo, NodeId(0), ReplicationLevel::Rack, 2, &all_alive(8), 0);
        let b = choose_replicas(&topo, NodeId(0), ReplicationLevel::Rack, 2, &all_alive(8), 1);
        assert_ne!(a[1], b[1], "different salts pick different peers");
    }

    proptest! {
        /// Replicas are distinct, alive, at most the requested count, and
        /// writer-first when the writer lives.
        #[test]
        fn placement_invariants(
            nodes in 1u32..30,
            racks in 1u32..5,
            writer in 0u32..30,
            level_i in 0usize..3,
            rep in 1u16..4,
            salt in proptest::num::u64::ANY,
            dead_mask in proptest::num::u32::ANY,
        ) {
            let writer = NodeId(writer % nodes);
            let level = [ReplicationLevel::Node, ReplicationLevel::Rack, ReplicationLevel::Cluster][level_i];
            let topo = Topology::even(nodes, racks);
            let alive: BTreeSet<NodeId> = (0..nodes).filter(|n| dead_mask & (1 << (n % 32)) == 0).map(NodeId).collect();
            let r = choose_replicas(&topo, writer, level, rep, &alive, salt);
            prop_assert!(r.len() <= level.replica_count(rep) as usize);
            let set: BTreeSet<NodeId> = r.iter().copied().collect();
            prop_assert_eq!(set.len(), r.len(), "replicas must be distinct");
            for n in &r {
                prop_assert!(alive.contains(n), "replicas must be alive");
            }
            if alive.contains(&writer) {
                prop_assert_eq!(r[0], writer, "writer-local replica first");
            }
        }
    }
}
