//! Shared plumbing for the per-figure benchmark binaries.
//!
//! Every binary reproduces one figure/table of the paper: it runs the
//! corresponding `alm_sim::experiment` function, renders the report to
//! stdout, and writes the JSON twin to `target/experiments/<id>.json` so
//! EXPERIMENTS.md bookkeeping has a machine-readable source.

#![forbid(unsafe_code)]

use alm_metrics::ExperimentReport;
use std::path::PathBuf;

/// Parsed common CLI options: `--seed N`, `--quick`, plus free flags.
#[derive(Debug, Clone)]
pub struct Cli {
    pub seed: u64,
    pub quick: bool,
    pub flags: Vec<String>,
}

impl Cli {
    pub fn parse() -> Cli {
        let mut seed = 42;
        let mut quick = false;
        let mut flags = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--seed" => {
                    seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed);
                }
                "--quick" => quick = true,
                other => flags.push(other.to_string()),
            }
        }
        Cli { seed, quick, flags }
    }

    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Input-size sweep for the scaling figures (11 and 13).
    pub fn sizes_gb(&self) -> Vec<u64> {
        if self.quick {
            vec![10, 40, 160]
        } else {
            vec![10, 20, 40, 80, 160, 320]
        }
    }
}

/// Print the report and persist its JSON twin.
pub fn emit(report: &ExperimentReport) {
    println!("{}", report.render_text());
    let dir = PathBuf::from("target/experiments");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", report.id));
        if std::fs::write(&path, report.to_json()).is_ok() {
            eprintln!("(json written to {})", path.display());
        }
    }
}
