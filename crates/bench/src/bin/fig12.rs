//! Fig. 12 — ALG performance at different logging frequencies.
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig12(cli.seed));
}
