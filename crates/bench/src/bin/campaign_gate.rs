//! Golden-report regression gate over a fixed-seed simulator campaign.
//!
//! Runs [`alm_chaos::SimCampaign::golden_gate`] — 20 scenarios sampled
//! from the §V-shaped fault space at seed 42, each under all four
//! recovery modes at paper scale — canonicalizes the resulting
//! [`alm_chaos::CampaignReport`] (wall-clock-sensitive fields stripped,
//! fixed key order) and diffs it against the checked-in golden file.
//!
//! ```sh
//! cargo run --release -p alm-bench --bin campaign_gate            # check
//! cargo run --release -p alm-bench --bin campaign_gate -- --bless # regenerate
//! ```
//!
//! Any recovery-policy change that shifts success, failure counts,
//! spatial/temporal amplification or FCM attempts on any of the 80 runs
//! fails the gate with a line-level diff; re-bless deliberately and
//! review the golden diff in the PR.
//!
//! Every run also writes the ranked root-cause triage of the same 80
//! outcomes to `triage_report.md` (override with `TRIAGE_REPORT_PATH`);
//! CI uploads it as an artifact so a drifting gate comes with its own
//! failure taxonomy attached.

use alm_chaos::{CampaignReport, SimCampaign};

const SEED: u64 = 42;
const SCENARIOS: usize = 20;

/// The checked-in golden report, resolved relative to the crate so the
/// gate works from any working directory.
fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/campaign_gate.json")
}

/// Canonical JSON for the golden diff plus the triage markdown derived
/// from the same outcomes.
fn run_campaign() -> (String, String) {
    let (campaign, scenarios) = SimCampaign::golden_gate(SEED, SCENARIOS);
    let mut report = CampaignReport::new("campaign-gate", SEED);
    report.extend(campaign.run(&scenarios));
    let mut json = report.canonical_json();
    json.push('\n');
    (json, report.triage().render_markdown())
}

/// Where the triage artifact lands: `TRIAGE_REPORT_PATH` if set, else
/// `triage_report.md` in the working directory (what CI uploads).
fn triage_path() -> std::path::PathBuf {
    std::env::var_os("TRIAGE_REPORT_PATH")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("triage_report.md"))
}

/// First differing line between expected and actual, for a focused diff.
fn first_divergence(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}:\n  golden: {e}\n  actual: {a}", i + 1);
        }
    }
    format!("line count differs: golden {} vs actual {}", expected.lines().count(), actual.lines().count())
}

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");
    let path = golden_path();
    let (actual, triage) = run_campaign();

    let triage_to = triage_path();
    match std::fs::write(&triage_to, &triage) {
        Ok(()) => println!("campaign_gate: triage report written to {}", triage_to.display()),
        Err(e) => eprintln!("campaign_gate: cannot write triage report {} ({e})", triage_to.display()),
    }

    if bless {
        std::fs::create_dir_all(path.parent().expect("golden path has a parent")).expect("create golden dir");
        std::fs::write(&path, &actual).expect("write golden file");
        println!("campaign_gate: blessed {} ({} bytes)", path.display(), actual.len());
        return;
    }

    let expected = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "campaign_gate: cannot read golden file {} ({e});\nrun with --bless to generate it",
                path.display()
            );
            std::process::exit(2);
        }
    };

    if actual == expected {
        println!(
            "campaign_gate: OK — {SCENARIOS} scenarios x 4 modes at seed {SEED} match {}",
            path.display()
        );
    } else {
        eprintln!(
            "campaign_gate: DRIFT against {} — a recovery-policy change shifted campaign outcomes.\n{}\n\
             If the change is intentional, regenerate with --bless and commit the golden diff.",
            path.display(),
            first_divergence(&expected, &actual)
        );
        std::process::exit(1);
    }
}
