//! Fig. 15 — benefits of enabling both ALG and SFM: recovery with vs
//! without logged analytics, per workload.
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig15(cli.seed));
}
