//! Fig. 14 — SFM vs YARN recovery under 1/5/10 concurrent failures with
//! 1–32 GB of data per reducer. Pass `--fcm-cap N` to ablate the FCM cap.
fn main() {
    let cli = alm_bench::Cli::parse();
    let cap = cli
        .flags
        .iter()
        .position(|f| f == "--fcm-cap")
        .and_then(|i| cli.flags.get(i + 1))
        .and_then(|v| v.parse().ok());
    alm_bench::emit(&alm_sim::experiment::fig14(cli.seed, cap));
}
