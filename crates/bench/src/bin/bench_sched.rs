//! Warehouse-scheduler perf baseline: wall-clock per simulated job.
//!
//! Runs the fixed-seed 1000-node / 3-tenant / 24-job fair-policy campaign
//! (with a mid-campaign rack crash so the recovery paths are on the
//! measured path), once as warmup and then [`MEASURED_RUNS`] times
//! measured, and reports the **median** of:
//!
//! * `wall_clock_per_simulated_job_us` — the headline metric: host
//!   microseconds spent per simulated job;
//! * `events_per_sec` — DES kernel throughput over the same runs.
//!
//! ```sh
//! cargo run --release -p alm-bench --bin bench_sched            # gate
//! cargo run --release -p alm-bench --bin bench_sched -- --bless # re-baseline
//! ```
//!
//! The gate compares against the committed `BENCH_sched.json` at the repo
//! root and fails (exit 1) when the per-job wall clock regresses by more
//! than [`REGRESSION_PCT`]%. Faster-than-baseline runs pass but print a
//! hint to re-bless so the bar ratchets down. The simulated results
//! themselves are covered by the determinism tests and the golden gate —
//! this binary only guards the kernel's speed.

use alm_chaos::{CampaignReport, WarehouseChaosCampaign};
use alm_sched::{SchedPolicyKind, WarehouseCampaign, WarehouseFault};
use alm_types::RecoveryMode;

const SEED: u64 = 42;
const NODES: u32 = 1000;
const TENANTS: u32 = 3;
const JOBS_PER_TENANT: u32 = 8;
const MEASURED_RUNS: usize = 3;
const REGRESSION_PCT: f64 = 25.0;

fn baseline_path() -> std::path::PathBuf {
    // crates/bench -> repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sched.json")
}

fn campaign() -> WarehouseCampaign {
    WarehouseCampaign::synthetic(
        NODES,
        TENANTS,
        JOBS_PER_TENANT,
        SchedPolicyKind::Fair,
        RecoveryMode::SfmAlg,
        SEED,
    )
    .with_fault(WarehouseFault::CrashRack { rack: 3, at_secs: 120.0 })
}

/// One timed run: (elapsed microseconds, simulated events, jobs).
fn timed_run() -> (u64, u64, u64) {
    let c = campaign();
    let jobs = c.jobs.len() as u64;
    let start = std::time::Instant::now(); // alm-lint: allow(wall-clock) — perf harness measures host time by design
    let report = c.run().expect("bench campaign must run");
    let elapsed_us = start.elapsed().as_micros() as u64;
    assert!(report.succeeded(), "bench campaign must finish all jobs");
    (elapsed_us, report.events, jobs)
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

struct Measurement {
    wall_clock_per_simulated_job_us: u64,
    events_per_sec: u64,
    events: u64,
    jobs: u64,
}

fn measure() -> Measurement {
    let _ = timed_run(); // warmup: page in code, warm the allocator
    let runs: Vec<(u64, u64, u64)> = (0..MEASURED_RUNS).map(|_| timed_run()).collect();
    let med_us = median(runs.iter().map(|(us, _, _)| *us).collect());
    let (_, events, jobs) = runs[0];
    Measurement {
        wall_clock_per_simulated_job_us: (med_us / jobs).max(1),
        events_per_sec: events * 1_000_000 / med_us.max(1),
        events,
        jobs,
    }
}

fn render(m: &Measurement) -> String {
    use serde_json::Value;
    let root = Value::Object(vec![
        ("bench".to_string(), Value::Str("bench_sched".to_string())),
        ("seed".to_string(), Value::U64(SEED)),
        ("nodes".to_string(), Value::U64(NODES as u64)),
        ("tenants".to_string(), Value::U64(TENANTS as u64)),
        ("jobs".to_string(), Value::U64(m.jobs)),
        ("events".to_string(), Value::U64(m.events)),
        ("measured_runs".to_string(), Value::U64(MEASURED_RUNS as u64)),
        ("wall_clock_per_simulated_job_us".to_string(), Value::U64(m.wall_clock_per_simulated_job_us)),
        ("events_per_sec".to_string(), Value::U64(m.events_per_sec)),
    ]);
    let mut s = serde_json::to_string_pretty(&root).expect("bench json");
    s.push('\n');
    s
}

/// Extract `"key": <u64>` from the committed baseline without needing the
/// full report type — the file is flat by construction.
fn field_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let digits: String = line.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");
    // Keep the sanity path warm: the same campaign also renders through the
    // chaos report (exercises per-tenant rows end to end at bench scale).
    let mut sanity = CampaignReport::new("bench-sched-sanity", SEED);
    let chaos = WarehouseChaosCampaign {
        nodes: 100,
        tenants: TENANTS,
        jobs_per_tenant: 2,
        policy: SchedPolicyKind::Fair,
        modes: vec![RecoveryMode::SfmAlg],
        seed: SEED,
    };
    let scenario = alm_chaos::ChaosScenario::new("bench-rack")
        .with(alm_chaos::ChaosFault::CrashRack { rack: 1, at_secs: 60.0 });
    let (_, rows) = chaos.run_scenario(&scenario, RecoveryMode::SfmAlg).expect("sanity campaign");
    sanity.extend_tenants(rows);
    assert!(sanity.tenant_table().is_some(), "tenant rows must render");

    let m = measure();
    let actual = render(&m);
    let path = baseline_path();

    if bless {
        std::fs::write(&path, &actual).expect("write bench baseline");
        println!("bench_sched: blessed {} ({} us/job)", path.display(), m.wall_clock_per_simulated_job_us);
        return;
    }

    print!("{actual}");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "bench_sched: cannot read baseline {} ({e}); run with --bless to create it",
                path.display()
            );
            std::process::exit(2);
        }
    };
    let base_us = field_u64(&baseline, "wall_clock_per_simulated_job_us")
        .expect("baseline has wall_clock_per_simulated_job_us");
    let limit = base_us as f64 * (1.0 + REGRESSION_PCT / 100.0);
    if (m.wall_clock_per_simulated_job_us as f64) > limit {
        eprintln!(
            "bench_sched: REGRESSION — {} us/job vs baseline {} us/job (limit {:.0}); \
             investigate, or re-bless with rationale if the slowdown is intentional",
            m.wall_clock_per_simulated_job_us, base_us, limit
        );
        std::process::exit(1);
    }
    println!(
        "bench_sched: OK — {} us/job within {REGRESSION_PCT}% of baseline {} us/job{}",
        m.wall_clock_per_simulated_job_us,
        base_us,
        if (m.wall_clock_per_simulated_job_us as f64) < base_us as f64 * 0.75 {
            " (much faster: consider --bless to ratchet the bar down)"
        } else {
            ""
        }
    );
}
