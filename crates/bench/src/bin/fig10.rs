//! Fig. 10 — SFM eliminates temporal amplification (timeline).
//! Pass `--no-proactive` for the ablation that disables proactive MapTask
//! regeneration and brings the amplification back.
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig10(cli.seed, !cli.has("--no-proactive")));
}
