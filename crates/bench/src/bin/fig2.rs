//! Fig. 2 — delayed job execution under single task failures at varying
//! injection progress (baseline; Terasort and Wordcount).
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig2(cli.seed));
}
