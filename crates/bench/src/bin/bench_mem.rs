//! In-memory chain perf baseline: wall-clock per chain iteration.
//!
//! Runs the fixed-seed iterative pagerank chain on the simulator chain
//! engine (8 iterations at paper scale, with a mid-chain node crash under
//! ALG+FCM so the recovery paths are on the measured path), once as
//! warmup and then [`MEASURED_RUNS`] times measured, and reports the
//! **median** of:
//!
//! * `wall_clock_per_iteration_us` — the headline metric: host
//!   microseconds spent per chain iteration;
//! * `resident_hits` — state stripes and MOFs served from RAM over one
//!   run (a determinism canary: this must never vary between runs).
//!
//! ```sh
//! cargo run --release -p alm-bench --bin bench_mem            # gate
//! cargo run --release -p alm-bench --bin bench_mem -- --bless # re-baseline
//! ```
//!
//! The gate compares against the committed `BENCH_mem.json` at the repo
//! root and fails (exit 1) when the per-iteration wall clock regresses by
//! more than [`REGRESSION_PCT`]%. Faster-than-baseline runs pass but
//! print a hint to re-bless so the bar ratchets down. The chain *results*
//! are covered by the alm-mem determinism tests and the chain campaign —
//! this binary only guards the chain layer's speed.

use alm_mem::{run_chain, ChainReport, CrashPlan, IterativeSpec, SimChainEngine};
use alm_types::{MemConfig, MemMode};
use alm_workloads::{Pagerank, WorkloadKind};
use std::sync::Arc;

const SEED: u64 = 42;
const ITERATIONS: u32 = 8;
const NUM_REDUCES: u32 = 20;
const MEASURED_RUNS: usize = 3;
const REGRESSION_PCT: f64 = 25.0;

fn baseline_path() -> std::path::PathBuf {
    // crates/bench -> repo root.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mem.json")
}

fn spec() -> IterativeSpec {
    let mut mem = MemConfig::scaled_for_tests();
    mem.mem_mode = MemMode::AlgFcm;
    mem.mem_max_chain_iterations = ITERATIONS;
    // Never converge early: the bench wants a fixed amount of work.
    mem.mem_convergence_epsilon_micro = 1;
    IterativeSpec { workload: Arc::new(Pagerank::small()), num_reduces: NUM_REDUCES, seed: SEED, mem }
}

fn run_once() -> ChainReport {
    let s = spec();
    let mut engine = SimChainEngine::paper(WorkloadKind::Pagerank, &s);
    run_chain(&mut engine, &s, Some(CrashPlan { node: 1, iteration: 3 }))
}

/// One timed run: (elapsed microseconds, resident hits, iterations).
fn timed_run() -> (u64, u64, u64) {
    let start = std::time::Instant::now(); // alm-lint: allow(wall-clock) — perf harness measures host time by design
    let report = run_once();
    let elapsed_us = start.elapsed().as_micros() as u64;
    assert!(report.runs.iter().all(|r| r.succeeded), "bench chain must complete every job");
    assert_eq!(report.iterations_lost, 0, "ALG+FCM chain must lose nothing");
    (elapsed_us, report.store.hits, u64::from(report.iterations_completed))
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

struct Measurement {
    wall_clock_per_iteration_us: u64,
    resident_hits: u64,
    iterations: u64,
}

fn measure() -> Measurement {
    let _ = timed_run(); // warmup: page in code, warm the allocator
    let runs: Vec<(u64, u64, u64)> = (0..MEASURED_RUNS).map(|_| timed_run()).collect();
    let med_us = median(runs.iter().map(|(us, _, _)| *us).collect());
    let (_, hits, iterations) = runs[0];
    assert!(runs.iter().all(|&(_, h, _)| h == hits), "resident-hit counts must be identical across runs");
    Measurement { wall_clock_per_iteration_us: (med_us / iterations).max(1), resident_hits: hits, iterations }
}

fn render(m: &Measurement) -> String {
    use serde_json::Value;
    let root = Value::Object(vec![
        ("bench".to_string(), Value::Str("bench_mem".to_string())),
        ("seed".to_string(), Value::U64(SEED)),
        ("num_reduces".to_string(), Value::U64(NUM_REDUCES as u64)),
        ("iterations".to_string(), Value::U64(m.iterations)),
        ("resident_hits".to_string(), Value::U64(m.resident_hits)),
        ("measured_runs".to_string(), Value::U64(MEASURED_RUNS as u64)),
        ("wall_clock_per_iteration_us".to_string(), Value::U64(m.wall_clock_per_iteration_us)),
    ]);
    let mut s = serde_json::to_string_pretty(&root).expect("bench json");
    s.push('\n');
    s
}

/// Extract `"key": <u64>` from the committed baseline without needing the
/// full report type — the file is flat by construction.
fn field_u64(json: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let digits: String = line.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() {
    let bless = std::env::args().any(|a| a == "--bless");

    let m = measure();
    let actual = render(&m);
    let path = baseline_path();

    if bless {
        std::fs::write(&path, &actual).expect("write bench baseline");
        println!("bench_mem: blessed {} ({} us/iteration)", path.display(), m.wall_clock_per_iteration_us);
        return;
    }

    print!("{actual}");
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "bench_mem: cannot read baseline {} ({e}); run with --bless to create it",
                path.display()
            );
            std::process::exit(2);
        }
    };
    let base_us = field_u64(&baseline, "wall_clock_per_iteration_us")
        .expect("baseline has wall_clock_per_iteration_us");
    let limit = base_us as f64 * (1.0 + REGRESSION_PCT / 100.0);
    if (m.wall_clock_per_iteration_us as f64) > limit {
        eprintln!(
            "bench_mem: REGRESSION — {} us/iteration vs baseline {} us/iteration (limit {:.0}); \
             investigate, or re-bless with rationale if the slowdown is intentional",
            m.wall_clock_per_iteration_us, base_us, limit
        );
        std::process::exit(1);
    }
    println!(
        "bench_mem: OK — {} us/iteration within {REGRESSION_PCT}% of baseline {} us/iteration{}",
        m.wall_clock_per_iteration_us,
        base_us,
        if (m.wall_clock_per_iteration_us as f64) < base_us as f64 * 0.75 {
            " (much faster: consider --bless to ratchet the bar down)"
        } else {
            ""
        }
    );
}
