//! Fig. 8 — ALG vs YARN under single ReduceTask failures injected at
//! 10–90% progress, all three workloads.
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig8(cli.seed));
}
