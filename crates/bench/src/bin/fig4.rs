//! Fig. 4 — spatial failure amplification: one node crash infects healthy
//! ReduceTasks (baseline Terasort, 20 reducers).
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig4(cli.seed));
}
