//! Table II — speculative recovery scheduling curbs the infectious impact
//! of node failures (YARN vs SFM; additional failures + execution time).
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::table2(cli.seed));
}
