//! Run every figure/table reproduction in sequence (the full evaluation
//! of §V plus the motivation figures of §II).
use alm_sim::experiment as ex;
fn main() {
    let cli = alm_bench::Cli::parse();
    let seed = cli.seed;
    let sizes = cli.sizes_gb();
    for rep in [
        ex::fig1(seed),
        ex::fig2(seed),
        ex::fig3(seed),
        ex::fig4(seed),
        ex::fig8(seed),
        ex::fig9(seed),
        ex::fig10(seed, true),
        ex::fig10(seed + 1000, false),
        ex::table2(seed),
        ex::fig11(seed, &sizes),
        ex::fig12(seed),
        ex::fig13(seed, &sizes),
        ex::fig14(seed, None),
        ex::fig15(seed),
    ] {
        alm_bench::emit(&rep);
    }
}
