//! Fig. 13 — impact of the log/output replication level (node / rack /
//! cluster) on the reduce stage.
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig13(cli.seed, &cli.sizes_gb()));
}
