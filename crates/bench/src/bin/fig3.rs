//! Fig. 3 — temporal failure amplification timeline (baseline Wordcount,
//! single reducer, crash of its host node).
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig3(cli.seed));
}
