//! Fig. 11 — ALG overhead in failure-free runs, Terasort 10–320 GB.
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig11(cli.seed, &cli.sizes_gb()));
}
