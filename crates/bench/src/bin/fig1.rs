//! Fig. 1 — recovery time for one ReduceTask failure vs many MapTask
//! failures (baseline YARN, 100 GB Terasort).
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig1(cli.seed));
}
