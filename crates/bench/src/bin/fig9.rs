//! Fig. 9 — SFM vs YARN under node failures at varying reduce progress.
fn main() {
    let cli = alm_bench::Cli::parse();
    alm_bench::emit(&alm_sim::experiment::fig9(cli.seed));
}
